//! Umbrella crate for the Lightyear reproduction workspace.
//!
//! Re-exports the member crates and hosts the workspace-level integration
//! tests (`tests/`) and runnable examples (`examples/`). See the README
//! for the architecture overview and DESIGN.md for the system inventory.

pub use bgp_config;
pub use bgp_model;
pub use lightyear;
pub use minesweeper;
pub use netgen;
pub use smt;

/// A prelude pulling in the names most programs need.
pub mod prelude {
    pub use bgp_config::{lower, parse_config, print_config, Network};
    pub use bgp_model::{Community, Ipv4Prefix, Policy, PrefixRange, Route, Topology};
    pub use lightyear::engine::{RunMode, Verifier};
    pub use lightyear::ghost::{GhostAttr, GhostUpdate};
    pub use lightyear::invariants::{Location, NetworkInvariants};
    pub use lightyear::liveness::LivenessSpec;
    pub use lightyear::pred::RoutePred;
    pub use lightyear::safety::SafetyProperty;
}
