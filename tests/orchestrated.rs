//! Orchestrator soundness: dedup/caching must be invisible in results.
//!
//! The dedup argument (see `lightyear::fingerprint`) is that equal
//! fingerprints mean bit-identical solver queries; these tests check the
//! consequence end-to-end: for randomly generated WAN topologies, the
//! orchestrated verifier's per-check outcomes — and the rendered
//! reports, byte for byte — equal the naive sequential engine's, while
//! executing strictly fewer solver calls whenever templates repeat, and
//! a second identical run answers from the cache.

use lightyear::engine::{CheckCache, RunMode, Verifier};
use lightyear::Report;
use netgen::wan::{self, WanParams};
use proptest::prelude::*;
use std::sync::Arc;

fn assert_reports_identical(topo: &bgp_model::Topology, seq: &Report, orch: &Report) {
    assert_eq!(seq.num_checks(), orch.num_checks());
    for (a, b) in seq.outcomes.iter().zip(orch.outcomes.iter()) {
        assert_eq!(a.check.id, b.check.id);
        assert_eq!(a.check.kind, b.check.kind);
        assert_eq!(
            a.result.passed(),
            b.result.passed(),
            "check #{}",
            a.check.id
        );
    }
    // Byte-identical rendering (the Report Display contract).
    assert_eq!(seq.to_string(), orch.to_string());
    assert_eq!(seq.format_failures(topo), orch.format_failures(topo));
}

/// One full scenario comparison; returns (generated, executed, warm hits).
fn compare_on(params: WanParams) -> (usize, usize, usize) {
    let s = wan::build(&params);
    let topo = &s.network.topology;
    let (_, q) = s.peering_predicates().into_iter().next().unwrap();
    let (props, inv) = s.peering_property_inputs(&q);

    let seq = Verifier::new(topo, &s.network.policy)
        .with_ghost(s.from_peer_ghost())
        .verify_safety_multi(&props, &inv);

    let cache = Arc::new(CheckCache::new());
    let orch_verifier = Verifier::new(topo, &s.network.policy)
        .with_ghost(s.from_peer_ghost())
        .with_mode(RunMode::Parallel)
        .with_cache(cache.clone());
    let cold = orch_verifier.verify_safety_multi(&props, &inv);
    assert_reports_identical(topo, &seq, &cold);
    assert_eq!(cold.exec.cache_hits, 0, "cold run must not hit the cache");

    let warm = orch_verifier.verify_safety_multi(&props, &inv);
    assert_reports_identical(topo, &seq, &warm);
    assert!(
        warm.exec.cache_hits > 0,
        "identical second run must hit the cache"
    );
    assert_eq!(warm.exec.executed, 0, "warm run must not invoke the solver");
    // Work counters are attributed only to fresh solver invocations:
    // a fully warm run reports zero solving time, while formula-size
    // stats (Figure 3b) survive replication.
    assert_eq!(
        warm.solve_time(),
        std::time::Duration::ZERO,
        "cached answers must not claim solver time"
    );
    assert_eq!(warm.max_vars(), seq.max_vars());
    // Absolute slack absorbs scheduler noise: these solves are
    // sub-millisecond, so under a loaded machine (parallel test
    // binaries) wall-clock jitter would otherwise dominate the ratio.
    assert!(
        cold.solve_time() <= seq.solve_time() * 2 + std::time::Duration::from_millis(50),
        "deduped run must not multiply solver time across replicas \
         (cold {:?} vs sequential {:?})",
        cold.solve_time(),
        seq.solve_time()
    );

    (
        cold.exec.generated,
        cold.exec.executed,
        warm.exec.cache_hits,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn dedup_is_sound_on_random_wans(
        regions in 1usize..3,
        routers_per_region in 1usize..3,
        edge_routers in 1usize..4,
        peers_per_edge in 1usize..3,
        seed in 0u64..1000,
    ) {
        let (generated, executed, warm_hits) = compare_on(WanParams {
            regions,
            routers_per_region,
            edge_routers,
            peers_per_edge,
            seed,
        });
        prop_assert!(executed <= generated);
        prop_assert!(warm_hits > 0);
        // Multiple peers per edge share the FROM-PEER template, so dedup
        // must find repeats whenever there is more than one peering.
        if edge_routers * peers_per_edge > 1 {
            prop_assert!(executed < generated, "{executed} of {generated} executed");
        }
    }
}

/// The acceptance scenario: a WAN with >= 50 routers sharing route-map
/// templates dedups (ratio < 1.0), warm-caches, and stays report-
/// identical to the sequential engine.
#[test]
fn wan_at_scale_dedups_and_caches() {
    let params = WanParams {
        regions: 6,
        routers_per_region: 6,
        edge_routers: 14,
        peers_per_edge: 1,
        seed: 42,
    };
    assert!(
        params.num_routers() >= 50,
        "scenario must cover >= 50 routers"
    );
    let (generated, executed, warm_hits) = compare_on(params);
    assert!(
        executed < generated,
        "dedup ratio must be < 1.0: {executed}/{generated}"
    );
    assert!(warm_hits > 0);
}

/// Fingerprints are renaming-invariant: two WANs differing only in
/// seed-driven naming detail (peer AS numbers) collapse to the same
/// number of unique check structures.
#[test]
fn unique_structures_are_stable_across_seeds() {
    let run = |seed: u64| {
        let s = wan::build(&WanParams {
            regions: 2,
            routers_per_region: 2,
            edge_routers: 3,
            peers_per_edge: 2,
            seed,
        });
        let (_, q) = s.peering_predicates().into_iter().next().unwrap();
        let (props, inv) = s.peering_property_inputs(&q);
        let report = Verifier::new(&s.network.topology, &s.network.policy)
            .with_ghost(s.from_peer_ghost())
            .with_mode(RunMode::Parallel)
            .verify_safety_multi(&props, &inv);
        (report.exec.generated, report.exec.unique)
    };
    let (gen1, uniq1) = run(1);
    let (gen2, uniq2) = run(99);
    assert_eq!(gen1, gen2);
    assert_eq!(
        uniq1, uniq2,
        "seed-level renaming must not change structure counts"
    );
    assert!(uniq1 < gen1);
}
