//! End-to-end contracts for the `obs` observability layer.
//!
//! * Counter exactness under real contention: a property test spins N
//!   threads each adding M times and demands the sharded registry's
//!   merged total is exactly N*M*delta — no lost updates, no
//!   double-counts.
//! * The Chrome trace export of a REAL verification: an 8-router WAN
//!   verified on the orchestrator with the sink installed must produce
//!   a `trace_event` JSON that round-trips through serde_json, carries
//!   at least one span per worker thread, and is strictly nested within
//!   every thread (a child span never outlives its parent — the
//!   invariant that makes the trace readable in Perfetto).

use lightyear::engine::{RunMode, Verifier};
use netgen::wan::{self, WanParams};
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn n_workers_times_m_events_merge_exactly(
        threads in 1usize..8,
        events in 1usize..300,
        delta in 1u64..5,
    ) {
        // A private registry, not the global sink: the test must be
        // safe to run concurrently with the trace test below.
        let reg = obs::Registry::new();
        std::thread::scope(|s| {
            for _ in 0..threads {
                let reg = &reg;
                s.spawn(move || {
                    for _ in 0..events {
                        reg.counter("prop.merge").add(delta);
                    }
                });
            }
        });
        prop_assert_eq!(
            reg.counter("prop.merge").value(),
            (threads * events) as u64 * delta
        );
    }
}

fn eight_router_scenario() -> wan::Scenario {
    let params = WanParams {
        regions: 2,
        routers_per_region: 2,
        edge_routers: 4,
        peers_per_edge: 2,
        ..WanParams::default()
    };
    let s = wan::build(&params);
    assert_eq!(s.params.num_routers(), 8);
    s
}

/// `(ts, dur, name)` per event, grouped by thread id.
fn events_by_tid(trace: &serde_json::Value) -> BTreeMap<u64, Vec<(f64, f64, String)>> {
    let top = trace.as_object().expect("trace is an object");
    let (_, events) = top
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .expect("traceEvents key");
    let mut by_tid: BTreeMap<u64, Vec<(f64, f64, String)>> = BTreeMap::new();
    for e in events.as_array().expect("traceEvents is an array") {
        let obj = e.as_object().expect("event is an object");
        let field = |name: &str| obj.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        assert_eq!(field("ph").and_then(|v| v.as_str()), Some("X"));
        assert!(field("pid").and_then(|v| v.as_u64()).is_some());
        let tid = field("tid").and_then(|v| v.as_u64()).expect("tid");
        let ts = field("ts").and_then(|v| v.as_f64()).expect("ts");
        let dur = field("dur").and_then(|v| v.as_f64()).expect("dur");
        let name = field("name")
            .and_then(|v| v.as_str())
            .expect("name")
            .to_string();
        assert!(dur > 0.0, "complete events carry a positive duration");
        by_tid.entry(tid).or_default().push((ts, dur, name));
    }
    by_tid
}

#[test]
fn chrome_trace_of_a_real_verify_round_trips_and_nests() {
    let s = eight_router_scenario();
    let (_, q) = s.peering_predicates().into_iter().next().unwrap();
    let (props, inv) = s.peering_property_inputs(&q);

    let reg = obs::install();
    let verifier = Verifier::new(&s.network.topology, &s.network.policy)
        .with_ghost(s.from_peer_ghost())
        .with_mode(RunMode::Parallel)
        .with_jobs(2);
    assert!(verifier.verify_safety_multi(&props, &inv).all_passed());
    let trace = reg.chrome_trace();
    obs::uninstall();

    // Round-trip: the export serializes and re-parses through
    // serde_json without loss of the fields a trace viewer needs.
    let text = serde_json::to_string(&trace).expect("trace serializes");
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("trace re-parses");
    let by_tid = events_by_tid(&parsed);

    // >= 1 span per worker thread, and exactly one "worker" span on
    // each thread that has one.
    let mut worker_tids = Vec::new();
    for (tid, spans) in &by_tid {
        let workers = spans.iter().filter(|(_, _, n)| n == "worker").count();
        if workers > 0 {
            assert_eq!(workers, 1, "one worker span per worker thread (tid {tid})");
            worker_tids.push(*tid);
        }
    }
    assert_eq!(worker_tids.len(), 2, "a --jobs 2 run shows both workers");

    // Strict nesting per thread: sort by (start, -duration) and sweep
    // with an end-time stack; every span must close inside its parent.
    // The exporter floors durations at 1ns-as-µs, so allow that much
    // slack at the boundary.
    const EPS: f64 = 0.01;
    for (tid, spans) in by_tid {
        let mut spans = spans;
        spans.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap()
                .then(b.1.partial_cmp(&a.1).unwrap())
        });
        let mut stack: Vec<f64> = Vec::new();
        for (ts, dur, name) in spans {
            while let Some(&end) = stack.last() {
                if ts >= end - EPS {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&end) = stack.last() {
                assert!(
                    ts + dur <= end + EPS,
                    "span {name:?} on tid {tid} escapes its parent ({} > {end})",
                    ts + dur
                );
            }
            stack.push(ts + dur);
        }
    }

    // The spans a profile reader keys on are all present.
    let all: Vec<String> = parsed
        .as_object()
        .unwrap()
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .and_then(|(_, v)| v.as_array())
        .unwrap()
        .iter()
        .filter_map(|e| {
            e.as_object()
                .unwrap()
                .iter()
                .find(|(k, _)| k == "name")
                .and_then(|(_, v)| v.as_str())
                .map(str::to_string)
        })
        .collect();
    for expected in ["run_checks", "solve_group", "worker"] {
        assert!(
            all.iter().any(|n| n == expected),
            "trace lacks a {expected:?} span"
        );
    }
}
