//! Cross-property shared-encoding verification and unsat-core soundness.
//!
//! `Verifier::verify_safety_batch` runs several property suites as one
//! batch over a union attribute universe, sharing each edge's transfer
//! encoding across all of them. These tests pin the two halves of its
//! soundness contract over randomly generated WANs:
//!
//! * **(a) byte-identity** — every per-suite report of a batch renders
//!   byte-identically to a standalone *fresh* (one instance per check)
//!   run of that suite, passing and failing networks alike: the union
//!   universe's extra atoms never leak into counterexamples, and batch
//!   failures re-derive on fresh instances;
//! * **(b) core soundness** — every unsat core a passing check reports
//!   re-proves the check with *only* the named conjuncts assumed.

use lightyear::engine::{RunMode, Verifier};
use lightyear::invariants::NetworkInvariants;
use lightyear::safety::SafetyProperty;
use netgen::mutate;
use netgen::wan::{self, WanParams};
use proptest::prelude::*;

fn suites_of(s: &wan::Scenario, n: usize) -> Vec<(Vec<SafetyProperty>, NetworkInvariants)> {
    s.peering_predicates()
        .into_iter()
        .take(n)
        .map(|(_, q)| s.peering_property_inputs(&q))
        .collect()
}

fn as_refs(
    owned: &[(Vec<SafetyProperty>, NetworkInvariants)],
) -> Vec<(&[SafetyProperty], &NetworkInvariants)> {
    owned.iter().map(|(p, i)| (p.as_slice(), i)).collect()
}

/// Batch-verify `n` suites over `s` in the given mode and check the
/// contract against standalone fresh runs.
fn check_batch(s: &wan::Scenario, nprops: usize, mode: RunMode) {
    let topo = &s.network.topology;
    let owned = suites_of(s, nprops);
    let refs = as_refs(&owned);
    let v = Verifier::new(topo, &s.network.policy)
        .with_ghost(s.from_peer_ghost())
        .with_mode(mode);
    let multi = v.verify_safety_batch(&refs);
    assert_eq!(multi.reports.len(), owned.len());
    for ((props, inv), got) in owned.iter().zip(&multi.reports) {
        // (a) Byte-identical to a standalone fresh run of the suite.
        let fresh = Verifier::new(topo, &s.network.policy)
            .with_ghost(s.from_peer_ghost())
            .with_incremental(false)
            .verify_safety_multi(props, inv);
        assert_eq!(fresh.num_checks(), got.num_checks());
        assert_eq!(fresh.to_string(), got.to_string());
        assert_eq!(fresh.format_failures(topo), got.format_failures(topo));
        // (b) Re-solving with only the reported core conjuncts still
        // yields UNSAT (i.e. the reduced check still passes).
        for (check, core) in got.cores() {
            assert_eq!(
                v.check_passes_with_conjuncts(props, inv, check.id, core),
                Some(true),
                "core {core:?} of check #{} does not re-prove it",
                check.id
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]
    #[test]
    fn batch_matches_per_property_fresh_runs(
        regions in 1usize..3,
        routers_per_region in 1usize..3,
        edge_routers in 1usize..4,
        peers_per_edge in 1usize..3,
        seed in 0u64..1000,
        nprops in 2usize..5,
    ) {
        let s = wan::build(&WanParams {
            regions,
            routers_per_region,
            edge_routers,
            peers_per_edge,
            seed,
        });
        check_batch(&s, nprops, RunMode::Sequential);
    }

    #[test]
    fn orchestrated_batch_matches_too(
        edge_routers in 1usize..4,
        seed in 0u64..1000,
        nprops in 2usize..4,
    ) {
        let s = wan::build(&WanParams {
            regions: 2,
            routers_per_region: 2,
            edge_routers,
            peers_per_edge: 2,
            seed,
        });
        check_batch(&s, nprops, RunMode::Parallel);
    }
}

/// The contract holds on a network with a real violation: the failing
/// suite's counterexamples match the fresh run byte-for-byte while the
/// other suites still pass with sound cores.
#[test]
fn batch_with_seeded_bug_localizes_and_matches_fresh() {
    let params = WanParams {
        regions: 2,
        routers_per_region: 2,
        edge_routers: 2,
        peers_per_edge: 2,
        seed: 7,
    };
    let mut configs = wan::configs(&params);
    mutate::drop_aspath_filters(&mut configs, "EDGE1", "FROM-PEER1").unwrap();
    let s = wan::build_from_configs(&params, configs);
    // no-private-asn fails under the mutation; the other suites pass.
    check_batch(&s, 7, RunMode::Sequential);
    let owned = suites_of(&s, 7);
    let refs = as_refs(&owned);
    let v = Verifier::new(&s.network.topology, &s.network.policy).with_ghost(s.from_peer_ghost());
    let multi = v.verify_safety_batch(&refs);
    assert!(!multi.all_passed(), "mutation must introduce a violation");
    assert!(
        multi.reports.iter().any(|r| r.all_passed()),
        "other suites keep passing"
    );
}
