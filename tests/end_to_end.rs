//! End-to-end integration tests: configuration text through parsing,
//! lowering, verification (Lightyear and Minesweeper) and localization.

use lightyear::check::CheckKind;
use lightyear::engine::{RunMode, Verifier};
use lightyear::invariants::Location;
use minesweeper::{Minesweeper, MsOutcome};
use netgen::{figure1, fullmesh, mutate};

#[test]
fn figure1_safety_and_liveness_verify() {
    let s = figure1::build();
    let v = Verifier::new(&s.network.topology, &s.network.policy).with_ghost(s.ghost.clone());

    let safety = v.verify_safety(&s.no_transit, &s.no_transit_inv);
    assert!(
        safety.all_passed(),
        "{}",
        safety.format_failures(&s.network.topology)
    );

    let liveness = v.verify_liveness(&s.customer_liveness).unwrap();
    assert!(
        liveness.all_passed(),
        "{}",
        liveness.format_failures(&s.network.topology)
    );
}

#[test]
fn lightyear_and_minesweeper_agree_on_correct_network() {
    let s = figure1::build();
    let ly = Verifier::new(&s.network.topology, &s.network.policy)
        .with_ghost(s.ghost.clone())
        .verify_safety(&s.no_transit, &s.no_transit_inv);
    let ms = Minesweeper::new(&s.network.topology, &s.network.policy)
        .with_ghost(s.ghost.clone())
        .verify(s.no_transit.location, &s.no_transit.pred);
    assert!(ly.all_passed());
    assert!(ms.verified());
}

#[test]
fn lightyear_and_minesweeper_agree_on_broken_network() {
    let mut configs = figure1::configs();
    mutate::drop_community_sets(&mut configs, "R1", "FROM-ISP1").unwrap();
    let s = figure1::build_from_configs(configs);

    let ly = Verifier::new(&s.network.topology, &s.network.policy)
        .with_ghost(s.ghost.clone())
        .verify_safety(&s.no_transit, &s.no_transit_inv);
    assert!(!ly.all_passed());

    let ms = Minesweeper::new(&s.network.topology, &s.network.policy)
        .with_ghost(s.ghost.clone())
        .verify(s.no_transit.location, &s.no_transit.pred);
    match ms.outcome {
        MsOutcome::Violated(cex) => {
            // The monolithic counterexample is a route from ISP1 reaching
            // ISP2 — global, not localized.
            assert!(cex.ghosts["FromISP1"]);
        }
        MsOutcome::Verified => panic!("Minesweeper must also find the violation"),
    }
}

#[test]
fn localization_points_at_injected_filter() {
    // Lightyear's failed check names the exact route map; Minesweeper's
    // counterexample (previous test) only gives a global route.
    let mut configs = figure1::configs();
    mutate::drop_community_sets(&mut configs, "R1", "FROM-ISP1").unwrap();
    let s = figure1::build_from_configs(configs);
    let report = Verifier::new(&s.network.topology, &s.network.policy)
        .with_ghost(s.ghost.clone())
        .verify_safety(&s.no_transit, &s.no_transit_inv);
    let failures = report.failures();
    assert_eq!(failures.len(), 1);
    let f = failures[0];
    assert_eq!(f.check.kind, CheckKind::Import);
    assert_eq!(f.check.map_name.as_deref(), Some("FROM-ISP1"));
    let edge = f.check.edge.unwrap();
    assert_eq!(s.network.topology.edge_name(edge), "ISP1 -> R1");
}

#[test]
fn fullmesh_verifies_and_counts_checks_linearly() {
    let mut last_checks = 0;
    for n in [3, 6, 9] {
        let s = fullmesh::build(n);
        let report = Verifier::new(&s.network.topology, &s.network.policy)
            .with_ghost(s.ghost.clone())
            .verify_safety(&s.property, &s.invariants);
        assert!(report.all_passed());
        // Checks grow with edges (quadratic in N for a mesh) but each
        // check's size is constant.
        assert!(report.num_checks() > last_checks);
        last_checks = report.num_checks();
        assert!(report.max_vars() < 2_000, "per-check size must stay small");
    }
}

#[test]
fn parallel_and_sequential_reports_match_on_fullmesh() {
    let s = fullmesh::build(5);
    let seq = Verifier::new(&s.network.topology, &s.network.policy)
        .with_ghost(s.ghost.clone())
        .with_mode(RunMode::Sequential)
        .verify_safety(&s.property, &s.invariants);
    let par = Verifier::new(&s.network.topology, &s.network.policy)
        .with_ghost(s.ghost.clone())
        .with_mode(RunMode::Parallel)
        .verify_safety(&s.property, &s.invariants);
    assert_eq!(seq.num_checks(), par.num_checks());
    for (a, b) in seq.outcomes.iter().zip(par.outcomes.iter()) {
        assert_eq!(a.check.id, b.check.id);
        assert_eq!(a.result.passed(), b.result.passed());
    }
}

#[test]
fn incremental_is_a_subset_and_consistent() {
    let s = fullmesh::build(6);
    let v = Verifier::new(&s.network.topology, &s.network.policy).with_ghost(s.ghost.clone());
    let full = v.verify_safety(&s.property, &s.invariants);
    let r0 = s.network.topology.node_by_name("R0").unwrap();
    let inc = v.verify_safety_incremental(&s.property, &s.invariants, &[r0]);
    assert!(inc.num_checks() < full.num_checks());
    assert!(inc.all_passed());
    // Every incremental check's edge touches R0 (except subsumption).
    for o in &inc.outcomes {
        if let Some(e) = o.check.edge {
            let edge = s.network.topology.edge(e);
            assert!(edge.src == r0 || edge.dst == r0);
        }
    }
}

#[test]
fn figure1_subsumption_check_lists_property_edge() {
    let s = figure1::build();
    let report = Verifier::new(&s.network.topology, &s.network.policy)
        .with_ghost(s.ghost.clone())
        .verify_safety(&s.no_transit, &s.no_transit_inv);
    let sub: Vec<_> = report
        .outcomes
        .iter()
        .filter(|o| o.check.kind == CheckKind::Subsumption)
        .collect();
    assert_eq!(sub.len(), 1);
    assert_eq!(
        sub[0].check.location,
        Location::Edge(match s.no_transit.location {
            Location::Edge(e) => e,
            _ => unreachable!(),
        })
    );
}
