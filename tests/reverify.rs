//! Delta re-verification must be invisible in results.
//!
//! The contract under test: for any configuration edit — semantic,
//! property-violating, topology-changing, or purely cosmetic — a
//! [`lightyear::ReverifyEngine`] round over the edited network produces
//! a report **byte-identical** to a fresh full verification of the same
//! network, while re-solving only the dirty neighborhood:
//!
//! * cosmetic edits (classified by `delta::diff_configs`) produce an
//!   **empty** dirty set;
//! * semantic single-router edits keep `dirty <= candidates < total`
//!   (the impact-analysis locality guarantee) unless the attribute
//!   universe itself changed shape, which forces a declared full round;
//! * verdicts and counterexamples never depend on warm-session history.

use delta::diff_configs;
use lightyear::engine::Verifier;
use lightyear::reverify::ReverifyEngine;
use lightyear::Report;
use netgen::wan::{self, WanParams};
use netgen::{edits, mutate};
use proptest::prelude::*;

fn assert_reports_byte_identical(topo: &bgp_model::Topology, a: &Report, b: &Report) {
    assert_eq!(a.to_string(), b.to_string());
    assert_eq!(a.format_failures(topo), b.format_failures(topo));
}

/// The first peering suite (no-bogons) of a scenario.
fn suite(s: &wan::Scenario) -> (Vec<lightyear::SafetyProperty>, lightyear::NetworkInvariants) {
    let (_, q) = s.peering_predicates().into_iter().next().unwrap();
    s.peering_property_inputs(&q)
}

/// One base-then-edit round trip compared against a fresh run.
fn check_edit_roundtrip(params: &WanParams, edit_seed: u64) {
    let base_configs = wan::configs(params);
    let base = wan::build_from_configs(params, base_configs.clone());
    let mut engine = ReverifyEngine::new();
    {
        let (props, inv) = suite(&base);
        let v = Verifier::new(&base.network.topology, &base.network.policy)
            .with_ghost(base.from_peer_ghost());
        let (report, stats) = engine.reverify(&v, &props, &inv, None);
        assert!(report.all_passed(), "base WAN must verify");
        assert_eq!(stats.dirty, stats.total, "first round is full");
    }

    // Apply a seeded edit (retrying neighboring seeds that do not apply).
    let mut edited_configs = base_configs.clone();
    let mut applied = None;
    for s in edit_seed..edit_seed + 12 {
        applied = edits::random_edit(&mut edited_configs, s);
        if applied.is_some() {
            break;
        }
    }
    let Some(applied) = applied else {
        return; // no edit applies to this tiny network: nothing to test
    };
    let delta = diff_configs(&base_configs, &edited_configs);
    assert!(!delta.is_empty(), "an applied edit must diff: {applied:?}");
    assert_eq!(
        applied.cosmetic,
        delta.is_cosmetic(),
        "differ must agree with the generator: {applied:?} vs {delta}"
    );

    let edited = wan::build_from_configs(params, edited_configs.clone());
    let topo = &edited.network.topology;
    let (props, inv) = suite(&edited);
    let changed = delta.changed_routers();
    let v = Verifier::new(topo, &edited.network.policy).with_ghost(edited.from_peer_ghost());
    let (warm, stats) = engine.reverify(&v, &props, &inv, Some(&changed));

    // Ground truth: a fresh full verification of the edited network.
    let fresh = v.verify_safety_multi(&props, &inv);
    assert_reports_byte_identical(topo, &fresh, &warm);

    if delta.is_cosmetic() {
        assert_eq!(
            stats.dirty, 0,
            "cosmetic edit must have an empty dirty set: {applied:?} {stats:?}"
        );
        assert!(!stats.universe_reset);
    } else if !stats.universe_reset {
        assert!(
            stats.dirty <= stats.candidates,
            "dirty set must stay within the delta neighborhood: {applied:?} {stats:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn reverify_matches_fresh_on_random_wans_and_edits(
        regions in 1usize..3,
        routers_per_region in 1usize..3,
        edge_routers in 1usize..3,
        peers_per_edge in 1usize..3,
        seed in 0u64..1000,
        edit_seed in 0u64..1000,
    ) {
        let params = WanParams {
            regions,
            routers_per_region,
            edge_routers,
            peers_per_edge,
            seed,
        };
        check_edit_roundtrip(&params, edit_seed);
    }
}

/// A property-violating edit: the warm round must report the violation
/// with exactly the counterexamples a fresh run prints.
#[test]
fn reverify_reports_failures_byte_identical_to_fresh() {
    let params = WanParams {
        regions: 2,
        routers_per_region: 2,
        edge_routers: 2,
        peers_per_edge: 2,
        seed: 7,
    };
    let base_configs = wan::configs(&params);
    let base = wan::build_from_configs(&params, base_configs.clone());
    let pick = |s: &wan::Scenario| {
        let (_, q) = s
            .peering_predicates()
            .into_iter()
            .find(|(n, _)| n == "no-private-asn")
            .unwrap();
        s.peering_property_inputs(&q)
    };
    let mut engine = ReverifyEngine::new();
    {
        let (props, inv) = pick(&base);
        let v = Verifier::new(&base.network.topology, &base.network.policy)
            .with_ghost(base.from_peer_ghost());
        let (report, _) = engine.reverify(&v, &props, &inv, None);
        assert!(report.all_passed());
    }

    let mut edited_configs = base_configs.clone();
    mutate::drop_aspath_filters(&mut edited_configs, "EDGE1", "FROM-PEER1").unwrap();
    let delta = diff_configs(&base_configs, &edited_configs);
    assert_eq!(delta.changed_routers(), vec!["EDGE1".to_string()]);

    let edited = wan::build_from_configs(&params, edited_configs);
    let topo = &edited.network.topology;
    let (props, inv) = pick(&edited);
    let changed = delta.changed_routers();
    let v = Verifier::new(topo, &edited.network.policy).with_ghost(edited.from_peer_ghost());
    let (warm, stats) = engine.reverify(&v, &props, &inv, Some(&changed));
    assert!(
        !warm.all_passed(),
        "the bug must be caught on the warm path"
    );
    assert!(
        stats.dirty > 0 && stats.dirty <= stats.candidates,
        "{stats:?}"
    );
    assert!(stats.candidates < stats.total, "{stats:?}");

    let fresh = v.verify_safety_multi(&props, &inv);
    assert_reports_byte_identical(topo, &fresh, &warm);
}

/// A multi-round daemon lifetime: edit, revert, edit elsewhere — warm
/// sessions are reused, dirty sets stay local, the carried cache never
/// grows stale verdicts (reverts re-prove).
#[test]
fn daemon_rounds_reuse_sessions_and_stay_local() {
    let params = WanParams {
        regions: 2,
        routers_per_region: 2,
        edge_routers: 3,
        peers_per_edge: 2,
        seed: 3,
    };
    let base_configs = wan::configs(&params);
    let mut engine = ReverifyEngine::new();
    let run = |engine: &mut ReverifyEngine,
               configs: &[bgp_config::ConfigAst],
               changed: Option<&[String]>| {
        let scen = wan::build_from_configs(&params, configs.to_vec());
        let (props, inv) = suite(&scen);
        let v = Verifier::new(&scen.network.topology, &scen.network.policy)
            .with_ghost(scen.from_peer_ghost());
        let (report, stats) = engine.reverify(&v, &props, &inv, changed);
        let fresh = v.verify_safety_multi(&props, &inv);
        assert_eq!(fresh.to_string(), report.to_string());
        (report, stats)
    };

    run(&mut engine, &base_configs, None);

    // Round 1: tweak EDGE0.
    let mut c1 = base_configs.clone();
    edits::set_local_pref(&mut c1, "EDGE0", "FROM-PEER0", 110).unwrap();
    let changed = diff_configs(&base_configs, &c1).changed_routers();
    let (_, s1) = run(&mut engine, &c1, Some(&changed));
    assert!(s1.dirty > 0 && s1.dirty <= s1.candidates, "{s1:?}");
    assert!(s1.candidates < s1.total, "{s1:?}");

    // Round 2: revert. The restored map's template still exists on the
    // other edge routers, so its fingerprint is *live* — the revert is
    // answered entirely from the carried cache (rename-invariant dedup
    // across routers), while round 1's superseded fingerprint is
    // invalidated so the cache cannot grow stale entries.
    let changed = diff_configs(&c1, &base_configs).changed_routers();
    let (_, s2) = run(&mut engine, &base_configs, Some(&changed));
    assert_eq!(s2.dirty, 0, "template dedup answers the revert: {s2:?}");
    assert!(s2.invalidated > 0, "the lp-110 fingerprint is gone: {s2:?}");

    // Round 3: tweak a different router; its neighborhood only.
    let mut c3 = base_configs.clone();
    edits::set_local_pref(&mut c3, "EDGE1", "FROM-PEER1", 120).unwrap();
    let changed = diff_configs(&base_configs, &c3).changed_routers();
    let (_, s3) = run(&mut engine, &c3, Some(&changed));
    assert!(s3.dirty > 0 && s3.dirty <= s3.candidates, "{s3:?}");

    // Round 4: re-edit the round-1 router with a new value — the
    // persistent session for that edge answers without re-encoding the
    // shared route structure. The diff must be taken against the
    // *previous accepted round* (c3), so it names both the re-edited
    // EDGE0 and the reverted EDGE1.
    let mut c4 = base_configs.clone();
    edits::set_local_pref(&mut c4, "EDGE0", "FROM-PEER0", 130).unwrap();
    let changed = diff_configs(&c3, &c4).changed_routers();
    let (_, s4) = run(&mut engine, &c4, Some(&changed));
    assert!(s4.dirty > 0, "{s4:?}");
    assert!(
        s4.sessions_reused > 0,
        "warm session must be reused: {s4:?}"
    );
    assert_eq!(s4.sessions_created, 0, "{s4:?}");
}
