//! Incremental assumption-based solving must be invisible in results.
//!
//! The engine's default execution path groups checks that share an
//! encoding base and solves each group on one persistent SMT session
//! (assumption queries + carried learnt clauses). These tests pin the
//! soundness contract end-to-end: for randomly generated WANs — passing
//! and failing alike — the incremental engine's outcomes, rendered
//! reports and failure listings are byte-identical to fresh per-check
//! solving, in sequential and orchestrated mode. They also cover the
//! failure-result disk cache: spilled failures answer warm runs without
//! re-proving, and tampered/stale entries are rejected by re-validation
//! and re-proved instead of replayed.

use lightyear::engine::{CheckCache, RunMode, Verifier};
use lightyear::symbolic::ConcreteRoute;
use lightyear::Report;
use netgen::mutate;
use netgen::wan::{self, WanParams};
use proptest::prelude::*;
use std::sync::Arc;

/// Re-wrap a forged payload as a valid v3 spill entry: recompute the
/// integrity sum exactly as an attacker who knows the (non-cryptographic)
/// format would, so the entry decodes on reload and the *semantic*
/// re-validation layer is what has to reject it. Corruption-level
/// tampering (bad sums, truncation) is pinned separately in
/// `orchestrator::cache` tests and the CLI poisoned-spill test.
fn wrap_spill_entry(fp_hex: &str, payload: &serde_json::Value) -> serde_json::Value {
    let payload = serde_json::to_string(payload).unwrap();
    let sum = orchestrator::cache::spill_entry_sum(fp_hex, &payload);
    serde_json::Value::Object(vec![
        ("sum".to_string(), serde_json::Value::Str(sum)),
        ("payload".to_string(), serde_json::Value::Str(payload)),
    ])
}

fn assert_reports_byte_identical(topo: &bgp_model::Topology, a: &Report, b: &Report) {
    assert_eq!(a.num_checks(), b.num_checks());
    for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
        assert_eq!(x.check.id, y.check.id);
        assert_eq!(x.check.kind, y.check.kind);
        assert_eq!(
            x.result.passed(),
            y.result.passed(),
            "check #{}",
            x.check.id
        );
    }
    assert_eq!(a.to_string(), b.to_string());
    assert_eq!(a.format_failures(topo), b.format_failures(topo));
}

/// Verify one scenario three ways — fresh per-check, incremental
/// sequential, incremental orchestrated — and demand byte-identical
/// reports.
fn compare_modes(s: &wan::Scenario) {
    let topo = &s.network.topology;
    let (_, q) = s.peering_predicates().into_iter().next().unwrap();
    let (props, inv) = s.peering_property_inputs(&q);

    let fresh = Verifier::new(topo, &s.network.policy)
        .with_ghost(s.from_peer_ghost())
        .with_incremental(false)
        .verify_safety_multi(&props, &inv);
    let incremental = Verifier::new(topo, &s.network.policy)
        .with_ghost(s.from_peer_ghost())
        .verify_safety_multi(&props, &inv);
    assert_reports_byte_identical(topo, &fresh, &incremental);

    let orchestrated = Verifier::new(topo, &s.network.policy)
        .with_ghost(s.from_peer_ghost())
        .with_mode(RunMode::Parallel)
        .verify_safety_multi(&props, &inv);
    assert_reports_byte_identical(topo, &fresh, &orchestrated);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn incremental_matches_fresh_on_random_wans(
        regions in 1usize..3,
        routers_per_region in 1usize..3,
        edge_routers in 1usize..4,
        peers_per_edge in 1usize..3,
        seed in 0u64..1000,
    ) {
        let s = wan::build(&WanParams {
            regions,
            routers_per_region,
            edge_routers,
            peers_per_edge,
            seed,
        });
        compare_modes(&s);
    }
}

/// Failing outcomes must agree too: inject the ad-hoc AS-path bug and
/// compare the three engines on a network with a real violation.
#[test]
fn incremental_matches_fresh_on_failing_wan() {
    let params = WanParams {
        regions: 2,
        routers_per_region: 2,
        edge_routers: 2,
        peers_per_edge: 2,
        seed: 7,
    };
    let mut configs = wan::configs(&params);
    mutate::drop_aspath_filters(&mut configs, "EDGE1", "FROM-PEER1").unwrap();
    let s = wan::build_from_configs(&params, configs);
    let topo = &s.network.topology;
    let (_, q) = s
        .peering_predicates()
        .into_iter()
        .find(|(n, _)| n == "no-private-asn")
        .unwrap();
    let (props, inv) = s.peering_property_inputs(&q);

    let fresh = Verifier::new(topo, &s.network.policy)
        .with_ghost(s.from_peer_ghost())
        .with_incremental(false)
        .verify_safety_multi(&props, &inv);
    assert!(!fresh.all_passed(), "mutation must introduce a violation");

    let incremental = Verifier::new(topo, &s.network.policy)
        .with_ghost(s.from_peer_ghost())
        .verify_safety_multi(&props, &inv);
    assert_reports_byte_identical(topo, &fresh, &incremental);

    let orchestrated = Verifier::new(topo, &s.network.policy)
        .with_ghost(s.from_peer_ghost())
        .with_mode(RunMode::Parallel)
        .verify_safety_multi(&props, &inv);
    assert_reports_byte_identical(topo, &fresh, &orchestrated);
}

/// Failures spill to the cache and answer warm runs without re-proving
/// (the ROADMAP follow-up this PR closes): the warm run executes zero
/// solver calls yet still reports the violation.
#[test]
fn spilled_failures_answer_warm_runs() {
    let params = WanParams {
        regions: 1,
        routers_per_region: 1,
        edge_routers: 2,
        peers_per_edge: 2,
        seed: 3,
    };
    let mut configs = wan::configs(&params);
    mutate::drop_aspath_filters(&mut configs, "EDGE1", "FROM-PEER1").unwrap();
    let s = wan::build_from_configs(&params, configs);
    let topo = &s.network.topology;
    let (_, q) = s
        .peering_predicates()
        .into_iter()
        .find(|(n, _)| n == "no-private-asn")
        .unwrap();
    let (props, inv) = s.peering_property_inputs(&q);

    let dir = std::env::temp_dir().join(format!("ly-failspill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cache = Arc::new(CheckCache::new());
    let verifier = Verifier::new(topo, &s.network.policy)
        .with_ghost(s.from_peer_ghost())
        .with_mode(RunMode::Parallel)
        .with_cache(cache.clone());
    let cold = verifier.verify_safety_multi(&props, &inv);
    assert!(!cold.all_passed());
    let written = lightyear::save_check_cache(&cache, &dir).unwrap();
    assert!(written > 0);

    // Reload from disk into a brand-new cache: failures are durable now.
    let (reloaded, loaded) = lightyear::load_check_cache(&dir).unwrap();
    assert_eq!(loaded, written, "every spilled entry must reload");
    let warm_verifier = Verifier::new(topo, &s.network.policy)
        .with_ghost(s.from_peer_ghost())
        .with_mode(RunMode::Parallel)
        .with_cache(reloaded);
    let warm = warm_verifier.verify_safety_multi(&props, &inv);
    assert_reports_byte_identical(topo, &cold, &warm);
    assert_eq!(
        warm.exec.executed, 0,
        "valid spilled failures must answer the warm run"
    );
    assert_eq!(warm.exec.invalidated, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A forged entry whose *input* genuinely violates but whose verdict
/// details (rejected flag, output route) were tampered with must also be
/// rejected: re-validation checks the whole counterexample against what
/// the live transfer actually does, not just that the input still fails.
#[test]
fn forged_verdict_details_are_revalidated_not_replayed() {
    let params = WanParams {
        regions: 1,
        routers_per_region: 1,
        edge_routers: 2,
        peers_per_edge: 2,
        seed: 3,
    };
    let mut configs = wan::configs(&params);
    mutate::drop_aspath_filters(&mut configs, "EDGE1", "FROM-PEER1").unwrap();
    let s = wan::build_from_configs(&params, configs);
    let topo = &s.network.topology;
    let (_, q) = s
        .peering_predicates()
        .into_iter()
        .find(|(n, _)| n == "no-private-asn")
        .unwrap();
    let (props, inv) = s.peering_property_inputs(&q);

    let dir = std::env::temp_dir().join(format!("ly-forgedspill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = Arc::new(CheckCache::new());
    let verifier = Verifier::new(topo, &s.network.policy)
        .with_ghost(s.from_peer_ghost())
        .with_mode(RunMode::Parallel)
        .with_cache(cache.clone());
    let cold = verifier.verify_safety_multi(&props, &inv);
    assert!(!cold.all_passed());
    lightyear::save_check_cache(&cache, &dir).unwrap();

    // Tamper: keep each failure's input but flip it to a rejection with
    // no output — a fabricated verdict over a genuinely-failing input.
    let path = dir.join("cache.json");
    let doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let mut forged_any = false;
    let tampered = match doc {
        serde_json::Value::Object(fields) => serde_json::Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| {
                    if k != "entries" {
                        return (k, v);
                    }
                    let serde_json::Value::Object(entries) = v else {
                        panic!("entries must be an object");
                    };
                    let out: Vec<(String, serde_json::Value)> = entries
                        .into_iter()
                        .map(|(fp, entry)| {
                            let inner: serde_json::Value =
                                serde_json::from_str(entry["payload"].as_str().unwrap()).unwrap();
                            if inner["pass"].as_bool() == Some(false) {
                                forged_any = true;
                                let input = inner["input"].clone();
                                let forged = serde_json::json!({
                                    "pass": false,
                                    "vars": 1,
                                    "clauses": 1,
                                    "rejected": true,
                                    "input": input,
                                    "output": serde_json::Value::Null,
                                });
                                let wrapped = wrap_spill_entry(&fp, &forged);
                                (fp, wrapped)
                            } else {
                                (fp, entry)
                            }
                        })
                        .collect();
                    (k, serde_json::Value::Object(out))
                })
                .collect(),
        ),
        other => other,
    };
    assert!(forged_any, "the cold run must have spilled a failure");
    std::fs::write(&path, serde_json::to_string_pretty(&tampered).unwrap()).unwrap();

    let (reloaded, _) = lightyear::load_check_cache(&dir).unwrap();
    let warm = Verifier::new(topo, &s.network.policy)
        .with_ghost(s.from_peer_ghost())
        .with_mode(RunMode::Parallel)
        .with_cache(reloaded)
        .verify_safety_multi(&props, &inv);
    // The forged verdict is discarded and the check re-proved: the warm
    // report matches the cold one byte-for-byte (true output route, not
    // the fabricated rejection).
    assert_reports_byte_identical(topo, &cold, &warm);
    assert!(warm.exec.invalidated > 0, "{:?}", warm.exec);
    assert!(warm.exec.executed > 0, "{:?}", warm.exec);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tampered or stale failure entries must not be replayed: re-validation
/// pins the spilled counterexample against the live encoding, rejects it,
/// and re-proves the check.
#[test]
fn stale_cached_failures_are_revalidated_not_replayed() {
    let s = wan::build(&WanParams {
        regions: 1,
        routers_per_region: 1,
        edge_routers: 2,
        peers_per_edge: 2,
        seed: 11,
    });
    let topo = &s.network.topology;
    let (_, q) = s.peering_predicates().into_iter().next().unwrap();
    let (props, inv) = s.peering_property_inputs(&q);

    let dir = std::env::temp_dir().join(format!("ly-stalespill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = Arc::new(CheckCache::new());
    let verifier = Verifier::new(topo, &s.network.policy)
        .with_ghost(s.from_peer_ghost())
        .with_mode(RunMode::Parallel)
        .with_cache(cache.clone());
    let cold = verifier.verify_safety_multi(&props, &inv);
    assert!(cold.all_passed());
    lightyear::save_check_cache(&cache, &dir).unwrap();

    // Tamper with the spill: rewrite every passing entry as a failure
    // carrying a fabricated counterexample.
    let bogus = ConcreteRoute {
        route: bgp_model::Route::new("203.0.113.0/24".parse().unwrap()),
        comm_other: false,
        aspath_matches: Default::default(),
        ghosts: Default::default(),
    };
    let path = dir.join("cache.json");
    let doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let tampered = match doc {
        serde_json::Value::Object(fields) => serde_json::Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| {
                    if k != "entries" {
                        return (k, v);
                    }
                    let serde_json::Value::Object(entries) = v else {
                        panic!("entries must be an object");
                    };
                    let forged: Vec<(String, serde_json::Value)> = entries
                        .into_iter()
                        .map(|(fp, _)| {
                            let payload = serde_json::json!({
                                "pass": false,
                                "vars": 1,
                                "clauses": 1,
                                "rejected": false,
                                "input": serde_json::to_value(&bogus),
                                "output": serde_json::Value::Null,
                            });
                            let wrapped = wrap_spill_entry(&fp, &payload);
                            (fp, wrapped)
                        })
                        .collect();
                    (k, serde_json::Value::Object(forged))
                })
                .collect(),
        ),
        other => other,
    };
    std::fs::write(&path, serde_json::to_string_pretty(&tampered).unwrap()).unwrap();

    let (reloaded, loaded) = lightyear::load_check_cache(&dir).unwrap();
    assert!(loaded > 0, "forged entries must decode");
    let warm_verifier = Verifier::new(topo, &s.network.policy)
        .with_ghost(s.from_peer_ghost())
        .with_mode(RunMode::Parallel)
        .with_cache(reloaded);
    let warm = warm_verifier.verify_safety_multi(&props, &inv);
    // Every forged failure is rejected by re-validation and re-proved.
    assert_reports_byte_identical(topo, &cold, &warm);
    assert!(warm.all_passed(), "forged failures must not be replayed");
    assert!(
        warm.exec.invalidated > 0,
        "re-validation must fire: {:?}",
        warm.exec
    );
    assert!(warm.exec.executed > 0, "rejected entries must be re-proved");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The incremental engine actually shares work: whenever more checks run
/// than there are encoding bases (sequential mode, or orchestrated with
/// dedup disabled), warm assumption solves must be reported.
#[test]
fn grouping_reports_warm_assumption_solves() {
    let s = wan::build(&WanParams {
        regions: 2,
        routers_per_region: 2,
        edge_routers: 3,
        peers_per_edge: 2,
        seed: 5,
    });
    let topo = &s.network.topology;
    let (_, q) = s.peering_predicates().into_iter().next().unwrap();
    let (props, inv) = s.peering_property_inputs(&q);

    // Sequential incremental: every check is an assumption solve on its
    // base group's session.
    let seq = Verifier::new(topo, &s.network.policy)
        .with_ghost(s.from_peer_ghost())
        .verify_safety_multi(&props, &inv);
    assert!(seq.all_passed());
    assert!(seq.exec.groups > 0, "{:?}", seq.exec);
    assert!(
        seq.exec.assumption_solves > 0,
        "template-sharing WAN checks must share sessions: {:?}",
        seq.exec
    );

    // Orchestrated without structural dedup: the duplicates become warm
    // assumption solves instead of fresh instances.
    let par = Verifier::new(topo, &s.network.policy)
        .with_ghost(s.from_peer_ghost())
        .with_mode(RunMode::Parallel)
        .with_dedup(false)
        .verify_safety_multi(&props, &inv);
    assert!(par.all_passed());
    assert!(par.exec.groups > 0, "{:?}", par.exec);
    assert!(par.exec.assumption_solves > 0, "{:?}", par.exec);
    assert!(par.exec.groups <= par.exec.executed, "{:?}", par.exec);
    let summary = par.exec.summary();
    assert!(summary.contains("incremental:"), "{summary}");
}
