//! End-to-end tests of the differential fuzzing subsystem: campaign
//! greenness across the topology zoo, injected-bug detection, and the
//! minimize → repro → replay loop (the ISSUE-5 acceptance criteria at
//! test scale; the CI smoke step runs the release binary at 25 cases).

use fuzz::{
    bug_oracle, edit_oracle, injection_sample, minimize, read_repro, replay, rerun, write_repro,
    CampaignConfig, FailingCase, FamilyId, FamilyParams, OracleId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn campaign_is_green_across_the_whole_zoo() {
    let cfg = CampaignConfig {
        seed: 0xf00d,
        cases: FamilyId::all().len(),
        edit_steps: 2,
        sim_rounds: 1,
        inject: true,
        ..CampaignConfig::default()
    };
    let out = fuzz::run_campaign(&cfg);
    assert!(
        out.failure.is_none(),
        "discrepancy: {}",
        out.failure
            .as_ref()
            .map(|(_, d)| d.to_string())
            .unwrap_or_default()
    );
    assert_eq!(
        out.per_family.len(),
        FamilyId::all().len(),
        "all families covered"
    );
    assert!(out.injections > 0);
    assert_eq!(
        out.injections_caught, out.injections,
        "every curated injected bug must be caught by an oracle"
    );
}

/// Every `netgen::mutate`-injected bug in the seeded sample is caught by
/// at least one oracle, for every family.
#[test]
fn injected_bugs_are_caught_in_every_family() {
    for (fi, family) in FamilyId::all().iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(0xabcd + fi as u64);
        let params = FamilyParams::random(*family, &mut rng);
        let sample = injection_sample(&params);
        assert!(!sample.is_empty(), "{family}: empty injection sample");
        for (desc, inject) in sample {
            let mut configs = params.configs();
            assert!(inject(&mut configs), "{desc}: mutation must apply");
            let case = params.build_from(configs);
            assert!(
                bug_oracle(&case, 7).is_ok(),
                "{desc}: injected bug was not caught"
            );
        }
    }
}

/// The edit-sequence oracle holds on the three new families.
#[test]
fn edit_sequences_stay_byte_identical_on_new_families() {
    for family in [FamilyId::Rr, FamilyId::Stub, FamilyId::HubSpoke] {
        let mut rng = StdRng::seed_from_u64(0x5eed);
        let case = FamilyParams::random(family, &mut rng).build();
        let (seeds, result) = edit_oracle(&case, 0x11, 3);
        assert!(
            result.is_ok(),
            "{family}: {:?} (after edits {seeds:?})",
            result.err()
        );
    }
}

/// A known failing case (injected bug, failing-verification oracle)
/// minimizes to a strictly smaller configuration set, and the written
/// repro directory replays to the same failure.
#[test]
fn minimizer_produces_strictly_smaller_replayable_repros() {
    let params = FamilyParams::Wan(netgen::wan::WanParams {
        regions: 2,
        routers_per_region: 2,
        edge_routers: 2,
        peers_per_edge: 2,
        seed: 0,
    });
    let mut configs = params.configs();
    assert!(
        netgen::mutate::drop_prefix_deny(&mut configs, "EDGE0", "FROM-PEER0", "BOGONS").is_some()
    );
    let fc = FailingCase {
        params,
        configs,
        edit_seeds: Vec::new(),
        oracle: OracleId::Verify,
        sim_seed: 3,
        sim_rounds: 4,
        detail: "wan bogon filter dropped".into(),
    };
    assert!(
        rerun(&fc).is_some(),
        "the injected bug must fail verification"
    );

    let before = fuzz::case_size(&fc.configs);
    let min = minimize(&fc);
    let after = fuzz::case_size(&min.configs);
    assert!(after < before, "no reduction: {before} -> {after}");
    assert!(rerun(&min).is_some(), "reduced case must still fail");

    let dir = std::env::temp_dir().join(format!("lightyear-fuzz-itest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    write_repro(&min, &dir).unwrap();
    // The repro round-trips: same params, same oracle, still failing.
    let back = read_repro(&dir).unwrap();
    assert_eq!(back.params.encode(), min.params.encode());
    assert_eq!(back.oracle, OracleId::Verify);
    assert!(replay(&dir).unwrap().is_some(), "repro must reproduce");
    let _ = std::fs::remove_dir_all(&dir);
}
