//! Integration tests over the synthetic cloud WAN: the full §6.1 property
//! suites, invariant inference, and the Minesweeper cross-check on a
//! WAN-shaped (rather than mesh-shaped) topology.

use lightyear::engine::{RunMode, Verifier};
use lightyear::infer::InferResult;
use lightyear::invariants::Location;
use lightyear::pred::RoutePred;
use lightyear::safety::SafetyProperty;
use netgen::wan::{self, WanParams};

fn small() -> wan::Scenario {
    wan::build(&WanParams {
        regions: 2,
        routers_per_region: 2,
        edge_routers: 2,
        peers_per_edge: 2,
        ..WanParams::default()
    })
}

#[test]
fn all_three_suites_verify_in_parallel_mode() {
    let s = small();
    let topo = &s.network.topology;

    // 4a in parallel mode.
    let v = Verifier::new(topo, &s.network.policy)
        .with_ghost(s.from_peer_ghost())
        .with_mode(RunMode::Parallel);
    for (name, q) in s.peering_predicates() {
        let (props, inv) = s.peering_property_inputs(&q);
        let report = v.verify_safety_multi(&props, &inv);
        assert!(
            report.all_passed(),
            "{name}: {}",
            report.format_failures(topo)
        );
    }

    // 4b + 4c.
    for k in 0..s.params.regions {
        let v = Verifier::new(topo, &s.network.policy)
            .with_ghost(s.from_region_ghost(k))
            .with_mode(RunMode::Parallel);
        let (props, inv) = s.reuse_safety_inputs(k);
        assert!(v.verify_safety_multi(&props, &inv).all_passed());
        let spec = s.reuse_liveness_spec(k).unwrap();
        assert!(v.verify_liveness(&spec).unwrap().all_passed());
    }
}

#[test]
fn check_count_scales_linearly_with_edges() {
    let sizes = [
        WanParams {
            regions: 2,
            routers_per_region: 2,
            edge_routers: 2,
            peers_per_edge: 2,
            ..WanParams::default()
        },
        WanParams {
            regions: 2,
            routers_per_region: 2,
            edge_routers: 2,
            peers_per_edge: 8,
            ..WanParams::default()
        },
    ];
    let mut per_edge = Vec::new();
    for p in sizes {
        let s = wan::build(&p);
        let v =
            Verifier::new(&s.network.topology, &s.network.policy).with_ghost(s.from_peer_ghost());
        let (props, inv) = s.peering_property_inputs(&s.peering_predicates()[0].1);
        let report = v.verify_safety_multi(&props, &inv);
        assert!(report.all_passed());
        per_edge.push(report.num_checks() as f64 / s.network.topology.num_edges() as f64);
    }
    // The check count is linearly bounded by the edge count at every
    // size (at most import+export per edge plus one subsumption per
    // property); the exact ratio varies with the external/internal edge
    // mix.
    for &r in &per_edge {
        assert!(r <= 2.0, "checks/edge out of linear bound: {per_edge:?}");
    }
}

#[test]
fn region_community_invariant_is_inferable() {
    // The §8 future-work feature on the WAN: infer the region community
    // that keeps reused prefixes region-local.
    let s = small();
    let topo = &s.network.topology;
    let k = 0;
    let ghost = s.from_region_ghost(k);

    // Property at the gateway of the *other* region: no reused-prefix
    // routes from region 0. The inferred key invariant FromRegion0 =>
    // 100:10 cannot itself prove prefix-exclusion, so inference must
    // reject all candidates for that property...
    let other_gw = topo.node_by_name("R1-0").unwrap();
    let reused = RoutePred::prefix_in(vec![bgp_model::PrefixRange::orlonger(wan::reused_prefix())]);
    let hard_prop = SafetyProperty::new(
        Location::Node(other_gw),
        RoutePred::ghost("FromRegion0").implies(reused.not()),
    );
    let v = Verifier::new(topo, &s.network.policy).with_ghost(ghost.clone());
    let hard = v.infer_safety_invariants(&hard_prop, &ghost);
    assert!(
        !hard.proved(),
        "community template alone cannot prove prefix exclusion"
    );

    // ...and on a network whose tagging imports add the community
    // unconditionally (the full-mesh workload), inference finds the
    // load-bearing community automatically.
    let mesh = netgen::fullmesh::build(4);
    let mt = &mesh.network.topology;
    let r1 = mt.node_by_name("R1").unwrap();
    let e1 = mt.node_by_name("E1").unwrap();
    let loc = Location::Edge(mt.edge_between(r1, e1).unwrap());
    let prop = SafetyProperty::new(loc, RoutePred::ghost("FromE0").not());
    let mv = Verifier::new(mt, &mesh.network.policy).with_ghost(mesh.ghost.clone());
    match mv.infer_safety_invariants(&prop, &mesh.ghost) {
        InferResult::Proved { community, .. } => {
            assert_eq!(community, netgen::fullmesh::tag());
        }
        InferResult::NoCandidate(fails) => {
            panic!("expected proof; {} candidates failed", fails.len());
        }
    }
}

#[test]
fn minesweeper_cross_check_on_wan() {
    // Monolithic verification of one peering property at one edge router
    // agrees with Lightyear (smaller WAN to keep the monolithic query
    // tractable).
    let s = wan::build(&WanParams {
        regions: 1,
        routers_per_region: 1,
        edge_routers: 1,
        peers_per_edge: 2,
        ..WanParams::default()
    });
    let topo = &s.network.topology;
    let edge_router = topo.node_by_name("EDGE0").unwrap();
    let (_, q) = s
        .peering_predicates()
        .into_iter()
        .find(|(n, _)| n == "no-bogons")
        .unwrap();
    let pred = RoutePred::ghost("FromPeer").implies(q);

    let ms = minesweeper::Minesweeper::new(topo, &s.network.policy)
        .with_ghost(s.from_peer_ghost())
        .verify(Location::Node(edge_router), &pred);
    assert!(ms.verified(), "{:?}", ms.outcome);

    let (props, inv) =
        s.peering_property_inputs(&s.peering_predicates().into_iter().next().unwrap().1);
    let ly = Verifier::new(topo, &s.network.policy)
        .with_ghost(s.from_peer_ghost())
        .verify_safety_multi(&props, &inv);
    assert!(ly.all_passed());
}

#[test]
fn metadata_matches_generated_policy() {
    let s = small();
    // Every region community in the metadata is actually used by the
    // corresponding DC import map (the consistency the paper's
    // "undocumented community" bug violated).
    for (k, region) in s.metadata.regions.iter().enumerate() {
        assert_eq!(region.community, wan::region_comm(k));
        let topo = &s.network.topology;
        let dc = topo.node_by_name(&format!("DC{k}")).unwrap();
        let attach_edge = topo.out_edges(dc)[0];
        let map = s
            .network
            .policy
            .import_map(attach_edge)
            .expect("DC import map");
        let uses: bool = map.entries.iter().any(|e| {
            e.sets.iter().any(|set| {
                matches!(set, bgp_model::routemap::SetAction::Community { comms, .. }
                    if comms.contains(&region.community))
            })
        });
        assert!(uses, "region {k}: metadata community not used in FROM-DC");
    }
}
