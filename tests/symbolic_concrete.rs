//! The core soundness property of the whole system, tested with proptest:
//! Lightyear's symbolic route-map encoding agrees with the concrete
//! interpreter on randomly generated route maps and routes.
//!
//! For every generated `(map, route)`:
//! * the symbolic transfer rejects iff the interpreter rejects, and
//! * on acceptance, every attribute of the symbolic output (pinned to the
//!   input route) equals the interpreter's output.

use bgp_model::prefix::{Ipv4Prefix, PrefixRange};
use bgp_model::routemap::{Action, MatchCond, RouteMap, RouteMapEntry, SetAction};
use bgp_model::{apply_route_map, Community, Route};
use lightyear::encode::Encoder;
use lightyear::symbolic::SymRoute;
use lightyear::universe::Universe;
use proptest::prelude::*;
use smt::{solve, SatResult, TermPool};
use std::collections::BTreeMap;

/// A small pool of communities so collisions between map and route are
/// likely (the interesting cases).
fn arb_community() -> impl Strategy<Value = Community> {
    (0u16..4, 0u16..4).prop_map(|(h, l)| Community::new(h, l))
}

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    // A few base networks with varying lengths.
    (0u32..4, 0u8..25).prop_map(|(net, extra)| {
        let addr = (10 + net) << 24;
        Ipv4Prefix::new(addr, 8 + extra % 17)
    })
}

fn arb_range() -> impl Strategy<Value = PrefixRange> {
    (arb_prefix(), 0u8..8, 0u8..8).prop_map(|(p, ge_extra, le_extra)| {
        let min = (p.len + ge_extra % 4).min(32);
        let max = (min + le_extra).min(32);
        PrefixRange::with_bounds(p, min, max)
    })
}

fn arb_match() -> impl Strategy<Value = MatchCond> {
    prop_oneof![
        prop::collection::vec((any::<bool>(), arb_range()), 1..4).prop_map(MatchCond::PrefixList),
        (prop::collection::vec(arb_community(), 1..3), any::<bool>()).prop_map(|(comms, all)| {
            MatchCond::Community {
                comms,
                match_all: all,
            }
        }),
        (
            prop::collection::vec(
                (any::<bool>(), prop::collection::vec(arb_community(), 1..3)),
                1..3
            ),
            any::<bool>()
        )
            .prop_map(|(entries, exact)| MatchCond::CommunityList { entries, exact }),
        (0u32..50).prop_map(MatchCond::Med),
        (50u32..250).prop_map(MatchCond::LocalPref),
        Just(MatchCond::Always),
    ]
}

fn arb_set() -> impl Strategy<Value = SetAction> {
    prop_oneof![
        (0u32..300).prop_map(SetAction::LocalPref),
        (0u32..50).prop_map(SetAction::Med),
        (prop::collection::vec(arb_community(), 1..3), any::<bool>())
            .prop_map(|(comms, additive)| SetAction::Community { comms, additive }),
        prop::collection::vec(arb_community(), 1..3).prop_map(SetAction::DeleteCommunities),
        Just(SetAction::ClearCommunities),
        (0u32..1000).prop_map(SetAction::NextHop),
        prop_oneof![
            Just(bgp_model::route::Origin::Igp),
            Just(bgp_model::route::Origin::Egp),
            Just(bgp_model::route::Origin::Incomplete),
        ]
        .prop_map(SetAction::Origin),
    ]
}

fn arb_entry(seq: u32) -> impl Strategy<Value = RouteMapEntry> {
    (
        any::<bool>(),
        prop::collection::vec(arb_match(), 0..3),
        prop::collection::vec(arb_set(), 0..3),
        prop_oneof![Just(None), Just(Some(None))],
    )
        .prop_map(move |(permit, matches, sets, continue_to)| RouteMapEntry {
            seq,
            action: if permit { Action::Permit } else { Action::Deny },
            matches,
            sets: if permit { sets } else { Vec::new() },
            continue_to: if permit { continue_to } else { None },
        })
}

fn arb_route_map() -> impl Strategy<Value = RouteMap> {
    prop::collection::vec(arb_entry(0), 0..5).prop_map(|mut entries| {
        let mut m = RouteMap::new("GEN");
        for (i, e) in entries.drain(..).enumerate() {
            let mut e = e;
            e.seq = (i as u32 + 1) * 10;
            m.push(e);
        }
        m
    })
}

fn arb_route() -> impl Strategy<Value = Route> {
    (
        arb_prefix(),
        prop::collection::btree_set(arb_community(), 0..4),
        0u32..300,
        0u32..50,
        0u32..1000,
    )
        .prop_map(|(prefix, communities, lp, med, nh)| {
            let mut r = Route::new(prefix)
                .with_local_pref(lp)
                .with_med(med)
                .with_next_hop(nh);
            r.communities = communities;
            r
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn symbolic_transfer_agrees_with_interpreter(
        map in arb_route_map(),
        route in arb_route(),
    ) {
        let mut u = Universe::new();
        u.scan_route_map(&map);
        for c in &route.communities {
            u.add_community(*c);
        }
        let mut pool = TermPool::new();
        let sym = SymRoute::fresh(&mut pool, &u, "in");
        let pin = sym.equals_concrete(&mut pool, &u, &route, &BTreeMap::new());
        let mut enc = Encoder::new(&mut pool, &u, "t");
        let tr = enc.encode_route_map(&map, &sym);

        match apply_route_map(&map, &route) {
            None => {
                let acc = pool.not(tr.reject);
                prop_assert!(
                    !solve(&pool, &[pin, acc]).is_sat(),
                    "interpreter rejects but encoding may accept:\n{map}\n{route}"
                );
            }
            Some(out) => {
                prop_assert!(
                    !solve(&pool, &[pin, tr.reject]).is_sat(),
                    "interpreter accepts but encoding may reject:\n{map}\n{route}"
                );
                let model = match solve(&pool, &[pin]) {
                    SatResult::Sat(m) => m,
                    SatResult::Unsat => unreachable!("pin is satisfiable"),
                };
                let got = tr.out.concretize(&pool, &u, &model);
                prop_assert_eq!(got.route.prefix, out.prefix);
                prop_assert_eq!(got.route.local_pref, out.local_pref);
                prop_assert_eq!(got.route.med, out.med);
                prop_assert_eq!(got.route.next_hop, out.next_hop);
                prop_assert_eq!(got.route.origin, out.origin);
                for (i, c) in u.communities().iter().enumerate() {
                    let sym_has = model
                        .eval_bool(&pool, tr.out.comm_bits[i])
                        .unwrap_or(false);
                    prop_assert_eq!(
                        sym_has,
                        out.has_community(*c),
                        "community {} differs:\n{}\n{}",
                        c, map, route
                    );
                }
            }
        }
    }
}
