//! End-to-end contract for the live telemetry endpoint: the `/metrics`
//! server must stay coherent while a parallel verification is actively
//! mutating the registry underneath it.
//!
//! * N scraper threads hammer `GET /metrics` while an 8-router WAN is
//!   verified with `--jobs 2` across several rounds; every response
//!   must be well-formed JSON, and within each scraper's time-ordered
//!   sequence both the round count and every counter must be monotone
//!   (the sharded registry never loses or un-counts an update).
//! * After the last round, one final scrape must equal the
//!   `--metrics-json` status file byte for byte — the regression
//!   contract that the endpoint and the file render the same state
//!   through the same code path.
//! * `/healthz` and `/trace` stay serviceable on the same listener.

use lightyear::engine::{RunMode, Verifier};
use netgen::wan::{self, WanParams};
use obs::http::{self, Status};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Raw-socket GET against the live server: `(status code, body)`.
fn get(addr: &str, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut buf = String::new();
    s.read_to_string(&mut buf).expect("read response");
    let code = buf
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status code");
    let body = buf.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (code, body)
}

/// All `"counters"` entries of a scraped `/metrics` body, plus the
/// round count, for the monotonicity sweep.
fn counters_of(body: &str) -> (u64, Vec<(String, u64)>) {
    let v: serde_json::Value = serde_json::from_str(body).expect("scrape is well-formed JSON");
    let top = v.as_object().expect("scrape is an object");
    let field = |obj: &serde_json::Value, name: &str| obj.get(name).cloned();
    let rounds = field(&v, "rounds")
        .and_then(|r| r.as_u64())
        .expect("rounds");
    assert!(top.iter().any(|(k, _)| k == "ok"), "scrape carries ok");
    let metrics = field(&v, "metrics").expect("metrics key");
    let counters = field(&metrics, "counters").expect("counters key");
    let pairs = counters
        .as_object()
        .expect("counters is an object")
        .iter()
        .map(|(k, v)| (k.clone(), v.as_u64().expect("counter is a u64")))
        .collect();
    (rounds, pairs)
}

#[test]
fn concurrent_scrapes_stay_coherent_during_a_parallel_verify() {
    let s = wan::build(&WanParams {
        regions: 2,
        routers_per_region: 2,
        edge_routers: 4,
        peers_per_edge: 2,
        ..WanParams::default()
    });
    let (_, q) = s.peering_predicates().into_iter().next().unwrap();
    let (props, inv) = s.peering_property_inputs(&q);

    let reg = obs::install();
    let status = Status::new(None);
    let server = http::serve("127.0.0.1:0", reg.clone(), status.clone()).expect("bind");
    let addr = server.addr().to_string();

    const SCRAPERS: usize = 4;
    const ROUNDS: usize = 3;
    let scraped: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SCRAPERS)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut bodies = Vec::new();
                    let deadline = Instant::now() + Duration::from_secs(30);
                    // Keep scraping until the main thread reports all
                    // rounds done, so scrapes overlap live mutation.
                    loop {
                        let (code, body) = get(&addr, "/metrics");
                        assert_eq!(code, 200);
                        let done = counters_of(&body).0 >= ROUNDS as u64;
                        bodies.push(body);
                        if done || Instant::now() > deadline {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    bodies
                })
            })
            .collect();

        let mut prev = reg.snapshot();
        for _ in 0..ROUNDS {
            let t = Instant::now();
            let v = Verifier::new(&s.network.topology, &s.network.policy)
                .with_ghost(s.from_peer_ghost())
                .with_mode(RunMode::Parallel)
                .with_jobs(2);
            let passed = v.verify_safety_multi(&props, &inv).all_passed();
            assert!(passed);
            let snap = reg.snapshot();
            status.note_round(passed, t.elapsed(), Some(snap.delta_since(&prev)));
            prev = snap;
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every scraper saw a monotone history: rounds never step back, and
    // no counter ever shrinks between consecutive scrapes.
    for bodies in &scraped {
        assert!(!bodies.is_empty());
        let mut last_rounds = 0u64;
        let mut last: Vec<(String, u64)> = Vec::new();
        for body in bodies {
            let (rounds, counters) = counters_of(body);
            assert!(rounds >= last_rounds, "round count went backwards");
            last_rounds = rounds;
            for (name, value) in &counters {
                if let Some((_, before)) = last.iter().find(|(n, _)| n == name) {
                    assert!(
                        value >= before,
                        "counter {name} shrank between scrapes: {before} -> {value}"
                    );
                }
            }
            last = counters;
        }
        assert_eq!(last_rounds, ROUNDS as u64, "scraper saw the final round");
    }

    // With the registry quiescent, one final scrape and the status file
    // must agree byte for byte — both render through `status_body`.
    let (code, final_scrape) = get(&addr, "/metrics");
    assert_eq!(code, 200);
    let path =
        std::env::temp_dir().join(format!("lightyear-telemetry-{}.json", std::process::id()));
    http::write_status_file(&path, &status, &reg).expect("write status file");
    let file = std::fs::read_to_string(&path).expect("read status file");
    std::fs::remove_file(&path).ok();
    assert_eq!(
        final_scrape, file,
        "/metrics scrape and --metrics-json file disagree"
    );

    // The same listener keeps /healthz and /trace serviceable.
    let (code, health) = get(&addr, "/healthz");
    assert_eq!(code, 200, "healthy after {ROUNDS} passing rounds");
    let health: serde_json::Value = serde_json::from_str(&health).expect("healthz JSON");
    assert_eq!(
        health.get("rounds").and_then(|v| v.as_u64()),
        Some(ROUNDS as u64)
    );
    let (code, trace) = get(&addr, "/trace?last=64");
    assert_eq!(code, 200);
    let trace: serde_json::Value = serde_json::from_str(&trace).expect("trace JSON");
    let events = trace.get("traceEvents").expect("traceEvents key");
    assert!(
        !events.as_array().expect("traceEvents array").is_empty(),
        "a parallel verify leaves spans in the trace ring"
    );

    drop(server);
    obs::uninstall();
}
