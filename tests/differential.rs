//! Differential tests: the verifier's guarantees hold on every trace the
//! concrete BGP simulator produces.
//!
//! The paper's correctness theorem (§4.3) quantifies over all valid
//! traces; the simulator generates concrete valid traces. If Lightyear
//! verifies an invariant assignment, every simulated event must satisfy
//! the invariant at its location — under randomized external
//! announcements, across the **full 2³ `SimOptions` grid** (loop
//! prevention × iBGP non-readvertisement × split horizon): the theorem
//! holds for every valid trace, so it must hold under every semantic
//! switch the simulator offers, not just the defaults.

use bgp_model::sim::simulate;
use bgp_model::trace::{check_liveness_axioms, check_safety_axioms, Event};
use bgp_model::{Community, Route};
use fuzz::sim_options_grid;
use lightyear::engine::Verifier;
use lightyear::invariants::Location;
use netgen::{figure1, fullmesh};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Random route announcement targeting one of a few prefixes.
fn random_route(rng: &mut StdRng, origin_asn: u32) -> Route {
    let prefixes = [
        "8.0.0.0/8",
        "9.9.0.0/16",
        "203.0.113.0/24",
        "100.100.0.0/16",
    ];
    let p = prefixes[rng.random_range(0..prefixes.len())];
    let mut r = Route::new(p.parse().unwrap())
        .with_as_path(vec![origin_asn])
        .with_med(rng.random_range(0..50))
        .with_next_hop(rng.random_range(1..1000));
    // Random (possibly adversarial) communities, including the transit tag.
    for _ in 0..rng.random_range(0..3) {
        r = r.with_community(Community::new(
            rng.random_range(0..3) * 100,
            rng.random_range(0..4),
        ));
    }
    if rng.random_bool(0.3) {
        r = r.with_community(figure1::transit_comm());
    }
    r
}

#[test]
fn figure1_invariants_hold_on_random_simulations() {
    let s = figure1::build();
    let topo = &s.network.topology;
    let policy = &s.network.policy;

    // Prove the invariants once.
    let report = Verifier::new(topo, policy)
        .with_ghost(s.ghost.clone())
        .verify_safety(&s.no_transit, &s.no_transit_inv);
    assert!(report.all_passed());

    let isp1 = topo.node_by_name("ISP1").unwrap();
    let isp2 = topo.node_by_name("ISP2").unwrap();
    let cust = topo.node_by_name("Customer").unwrap();
    let r1 = topo.node_by_name("R1").unwrap();
    let r2 = topo.node_by_name("R2").unwrap();
    let r3 = topo.node_by_name("R3").unwrap();
    let isp1_r1 = topo.edge_between(isp1, r1).unwrap();
    let isp2_r2 = topo.edge_between(isp2, r2).unwrap();
    let cust_r3 = topo.edge_between(cust, r3).unwrap();

    for (oi, opts) in sim_options_grid().into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(0xbeef + oi as u64);
        for round in 0..10 {
            // Distinct prefixes per external so provenance (the ghost
            // value) is decidable from the prefix in this differential
            // test.
            let isp1_route = Route::new("8.0.0.0/8".parse().unwrap())
                .with_as_path(vec![100])
                .with_med(rng.random_range(0..50));
            let mut announcements = vec![(isp1_r1, isp1_route)];
            if rng.random_bool(0.7) {
                let mut r = random_route(&mut rng, 200);
                r.prefix = "9.9.0.0/16".parse().unwrap();
                announcements.push((isp2_r2, r));
            }
            if rng.random_bool(0.7) {
                let mut r = random_route(&mut rng, 300);
                r.prefix = "203.0.113.0/24".parse().unwrap();
                announcements.push((cust_r3, r));
            }

            let result = simulate(topo, policy, &announcements, opts);
            assert!(result.converged, "options #{oi} round {round}");
            check_safety_axioms(&result.trace, topo, policy)
                .unwrap_or_else(|e| panic!("options #{oi} round {round}: {e}"));
            check_liveness_axioms(&result.trace, topo, policy)
                .unwrap_or_else(|e| panic!("options #{oi} round {round} (liveness): {e}"));

            for (i, ev) in result.trace.events.iter().enumerate() {
                let (loc, route) = match ev {
                    Event::Recv { edge, route } => (Location::Edge(*edge), route),
                    Event::Frwd { edge, route } => (Location::Edge(*edge), route),
                    Event::Slct { node, route } => (Location::Node(*node), route),
                };
                let from_isp1 = route.prefix == "8.0.0.0/8".parse().unwrap();
                let mut ghosts = BTreeMap::new();
                ghosts.insert("FromISP1".to_string(), from_isp1);
                let inv = s.no_transit_inv.at(topo, loc);
                assert!(
                    inv.eval(route, &ghosts),
                    "options #{oi} round {round} event #{i}: invariant {inv} violated at {} by {route}",
                    loc.display(topo)
                );
            }

            // The end-to-end property: ISP1's prefix never delivered to
            // ISP2.
            let r2_isp2 = topo.edge_between(r2, isp2).unwrap();
            if let Some(routes) = result.external_rib.get(&r2_isp2) {
                for r in routes {
                    assert_ne!(
                        r.prefix,
                        "8.0.0.0/8".parse().unwrap(),
                        "options #{oi} round {round}: transit violation in simulation"
                    );
                }
            }
        }
    }
}

#[test]
fn fullmesh_invariants_hold_on_random_simulations() {
    let n = 5;
    let s = fullmesh::build(n);
    let topo = &s.network.topology;
    let policy = &s.network.policy;
    let report = Verifier::new(topo, policy)
        .with_ghost(s.ghost.clone())
        .verify_safety(&s.property, &s.invariants);
    assert!(report.all_passed());

    for (oi, opts) in sim_options_grid().into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(42 + oi as u64);
        for round in 0..4 {
            // E0 announces a dedicated prefix; other externals announce
            // random routes for other prefixes.
            let e0 = topo.node_by_name("E0").unwrap();
            let r0 = topo.node_by_name("R0").unwrap();
            let e0_r0 = topo.edge_between(e0, r0).unwrap();
            let mut announcements = vec![(
                e0_r0,
                Route::new("8.0.0.0/8".parse().unwrap()).with_as_path(vec![65001]),
            )];
            for i in 1..n {
                if rng.random_bool(0.6) {
                    let ei = topo.node_by_name(&format!("E{i}")).unwrap();
                    let ri = topo.node_by_name(&format!("R{i}")).unwrap();
                    let edge = topo.edge_between(ei, ri).unwrap();
                    let mut r = random_route(&mut rng, 65001 + i as u32);
                    r.prefix = "9.9.0.0/16".parse().unwrap();
                    announcements.push((edge, r));
                }
            }
            let result = simulate(topo, policy, &announcements, opts);
            assert!(result.converged, "options #{oi} round {round}");
            check_safety_axioms(&result.trace, topo, policy).unwrap();
            check_liveness_axioms(&result.trace, topo, policy).unwrap();

            for ev in &result.trace.events {
                let (loc, route) = match ev {
                    Event::Recv { edge, route } => (Location::Edge(*edge), route),
                    Event::Frwd { edge, route } => (Location::Edge(*edge), route),
                    Event::Slct { node, route } => (Location::Node(*node), route),
                };
                let from_e0 = route.prefix == "8.0.0.0/8".parse().unwrap();
                let mut ghosts = BTreeMap::new();
                ghosts.insert("FromE0".to_string(), from_e0);
                let inv = s.invariants.at(topo, loc);
                assert!(
                    inv.eval(route, &ghosts),
                    "options #{oi} round {round}: invariant {inv} violated at {} by {route}",
                    loc.display(topo)
                );
            }

            // Property: E0's prefix never delivered to E1.
            let r1 = topo.node_by_name("R1").unwrap();
            let e1 = topo.node_by_name("E1").unwrap();
            let r1_e1 = topo.edge_between(r1, e1).unwrap();
            if let Some(routes) = result.external_rib.get(&r1_e1) {
                for r in routes {
                    assert_ne!(r.prefix, "8.0.0.0/8".parse().unwrap());
                }
            }
        }
    }
}
