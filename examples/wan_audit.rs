//! WAN audit: the §6.1 deployment scenario on a synthetic cloud WAN.
//!
//! Builds a multi-region WAN (regions, Internet edge routers, data
//! centers with reused prefixes, region communities + metadata file) and
//! audits it the way the paper's deployment did:
//!
//! 1. the 11 Internet-peering-policy safety properties,
//! 2. per-region IP-reuse safety (Table 4b),
//! 3. per-region IP-reuse liveness (Table 4c),
//! 4. a seeded ad-hoc peering policy, localized to the exact session.
//!
//! Run with: `cargo run --release --example wan_audit`

use lightyear::engine::Verifier;
use netgen::mutate::drop_aspath_filters;
use netgen::wan::{self, WanParams};

fn main() {
    let params = WanParams {
        regions: 4,
        routers_per_region: 3,
        edge_routers: 6,
        peers_per_edge: 4,
        ..WanParams::default()
    };
    let s = wan::build(&params);
    let topo = &s.network.topology;
    println!(
        "WAN: {} routers, {} externals, {} directed BGP edges",
        topo.router_ids().count(),
        topo.external_ids().count(),
        topo.num_edges()
    );
    println!(
        "Region metadata: {}",
        serde_json::to_string(&s.metadata).unwrap()
    );

    // 1. Peering policies.
    println!("\n== Internet peering policies ==");
    let v = Verifier::new(topo, &s.network.policy).with_ghost(s.from_peer_ghost());
    for (name, q) in s.peering_predicates() {
        let (props, inv) = s.peering_property_inputs(&q);
        let report = v.verify_safety_multi(&props, &inv);
        println!(
            "  {name:<22} {} ({} checks, {:?})",
            if report.all_passed() {
                "verified"
            } else {
                "VIOLATED"
            },
            report.num_checks(),
            report.total_time
        );
        assert!(report.all_passed());
    }

    // 2 + 3. IP reuse, per region.
    println!("\n== IP reuse (safety + liveness per region) ==");
    for k in 0..params.regions {
        let v = Verifier::new(topo, &s.network.policy).with_ghost(s.from_region_ghost(k));
        let (props, inv) = s.reuse_safety_inputs(k);
        let safety = v.verify_safety_multi(&props, &inv);
        let spec = s.reuse_liveness_spec(k).expect("multi-router regions");
        let liveness = v.verify_liveness(&spec).expect("valid spec");
        println!(
            "  region-{k}: safety {} ({} checks), liveness {} ({} checks)",
            if safety.all_passed() {
                "verified"
            } else {
                "VIOLATED"
            },
            safety.num_checks(),
            if liveness.all_passed() {
                "verified"
            } else {
                "VIOLATED"
            },
            liveness.num_checks(),
        );
        assert!(safety.all_passed() && liveness.all_passed());
    }

    // 4. Seeded bug: one peering's ad-hoc AS-path policy.
    println!(
        "\n== Seeded bug: ad-hoc AS-path policy on one of {} peerings ==",
        params.edge_routers * params.peers_per_edge
    );
    let mut configs = wan::configs(&params);
    drop_aspath_filters(&mut configs, "EDGE3", "FROM-PEER2").unwrap();
    let broken = wan::build_from_configs(&params, configs);
    let v = Verifier::new(&broken.network.topology, &broken.network.policy)
        .with_ghost(broken.from_peer_ghost());
    let (_, q) = broken
        .peering_predicates()
        .into_iter()
        .find(|(n, _)| n == "no-private-asn")
        .unwrap();
    let (props, inv) = broken.peering_property_inputs(&q);
    let report = v.verify_safety_multi(&props, &inv);
    assert!(!report.all_passed());
    print!("{}", report.format_failures(&broken.network.topology));
    println!(
        "Exactly {} failing check(s) — the one inconsistent session among \
         hundreds of similarly defined peerings, as in the paper's finding.",
        report.failures().len()
    );
}
