//! Incremental re-verification: when one router's configuration changes,
//! only the local checks touching that router need to re-run (§2
//! "Scalability": "the modular approach naturally supports incremental
//! verification when a node is updated").
//!
//! Builds a full-mesh network, verifies it, edits one router, and
//! compares full vs incremental re-verification.
//!
//! Run with: `cargo run --release --example incremental`

use lightyear::engine::Verifier;
use netgen::fullmesh;
use std::time::Instant;

fn main() {
    let n = 12;
    let s = fullmesh::build(n);
    let topo = &s.network.topology;
    println!(
        "Full mesh: {} routers, {} edges, no-transit property",
        n,
        topo.num_edges()
    );

    // Initial full verification.
    let v = Verifier::new(topo, &s.network.policy).with_ghost(s.ghost.clone());
    let t0 = Instant::now();
    let full = v.verify_safety(&s.property, &s.invariants);
    let full_time = t0.elapsed();
    assert!(full.all_passed());
    println!(
        "full verification:        {:>5} checks in {:?}",
        full.num_checks(),
        full_time
    );

    // "Edit" router R3 — in a real workflow you would re-parse its
    // config; here the policy is unchanged so the re-check passes, which
    // is exactly what an operator wants to confirm after a no-op edit.
    let changed = topo.node_by_name("R3").unwrap();
    let t0 = Instant::now();
    let inc = v.verify_safety_incremental(&s.property, &s.invariants, &[changed]);
    let inc_time = t0.elapsed();
    assert!(inc.all_passed());
    println!(
        "incremental (R3 changed): {:>5} checks in {:?}",
        inc.num_checks(),
        inc_time
    );
    println!(
        "checks avoided: {} ({:.0}% of the full run)",
        full.num_checks() - inc.num_checks(),
        100.0 * (full.num_checks() - inc.num_checks()) as f64 / full.num_checks() as f64
    );

    // Now a real edit: R0's import stops tagging 100:1, breaking the key
    // invariant. The incremental run both catches and localizes it.
    println!("\n--- breaking R0's external import, re-verifying incrementally ---");
    let mut configs = fullmesh::configs(n);
    netgen::mutate::drop_community_sets(&mut configs, "R0", "FROM-EXT").unwrap();
    let broken = netgen::roundtrip_and_lower(&configs);
    let r0 = broken.topology.node_by_name("R0").unwrap();
    let vb = Verifier::new(&broken.topology, &broken.policy).with_ghost(s.ghost.clone());
    let report = vb.verify_safety_incremental(&s.property, &s.invariants, &[r0]);
    assert!(!report.all_passed());
    print!("{}", report.format_failures(&broken.topology));
}
