//! Quickstart: verify the paper's Figure-1 network end to end.
//!
//! Parses IOS-style configurations for three routers, states the
//! no-transit safety property and the customer-reachability liveness
//! property, verifies both, then breaks a filter and shows the localized
//! counterexample.
//!
//! Run with: `cargo run --example quickstart`

use bgp_config::{lower, parse_config};
use bgp_model::Community;
use lightyear::engine::Verifier;
use lightyear::ghost::{GhostAttr, GhostUpdate};
use lightyear::invariants::{Location, NetworkInvariants};
use lightyear::pred::RoutePred;
use lightyear::safety::SafetyProperty;

const R1: &str = "\
hostname R1
route-map FROM-ISP1 permit 10
 set community 100:1 additive
router bgp 65000
 neighbor 10.0.0.1 remote-as 100
 neighbor 10.0.0.1 description ISP1
 neighbor 10.0.0.1 route-map FROM-ISP1 in
 neighbor 10.0.12.2 remote-as 65000
 neighbor 10.0.12.2 description R2
";

const R2: &str = "\
hostname R2
ip community-list standard TRANSIT permit 100:1
route-map TO-ISP2 deny 10
 match community TRANSIT
route-map TO-ISP2 permit 20
route-map FROM-ISP2 permit 10
 set community none
router bgp 65000
 neighbor 10.0.0.2 remote-as 200
 neighbor 10.0.0.2 description ISP2
 neighbor 10.0.0.2 route-map FROM-ISP2 in
 neighbor 10.0.0.2 route-map TO-ISP2 out
 neighbor 10.0.12.1 remote-as 65000
 neighbor 10.0.12.1 description R1
";

fn main() {
    // 1. Parse and lower the configurations.
    let configs = vec![parse_config(R1).unwrap(), parse_config(R2).unwrap()];
    let net = lower(&configs).unwrap();
    let topo = &net.topology;
    println!(
        "Parsed {} routers, {} externals, {} BGP edges",
        topo.router_ids().count(),
        topo.external_ids().count(),
        topo.num_edges()
    );

    // 2. Define the ghost attribute FromISP1 (§4.4): true on ISP1 -> R1
    //    imports, false on other external imports.
    let r1 = topo.node_by_name("R1").unwrap();
    let r2 = topo.node_by_name("R2").unwrap();
    let isp1 = topo.node_by_name("ISP1").unwrap();
    let isp2 = topo.node_by_name("ISP2").unwrap();
    let isp1_r1 = topo.edge_between(isp1, r1).unwrap();
    let isp2_r2 = topo.edge_between(isp2, r2).unwrap();
    let r2_isp2 = topo.edge_between(r2, isp2).unwrap();
    let ghost = GhostAttr::new("FromISP1")
        .with_import(isp1_r1, GhostUpdate::SetTrue)
        .with_import(isp2_r2, GhostUpdate::SetFalse);

    // 3. The end-to-end property: no route from ISP1 is sent to ISP2.
    let from_isp1 = RoutePred::ghost("FromISP1");
    let property =
        SafetyProperty::new(Location::Edge(r2_isp2), from_isp1.clone().not()).named("no-transit");

    // 4. The three-part invariants of §2.1: nothing assumed about
    //    external edges (automatic); the property itself at R2 -> ISP2;
    //    and the key inductive invariant everywhere else.
    let c = Community::new(100, 1);
    let key = from_isp1.clone().implies(RoutePred::has_community(c));
    let invariants =
        NetworkInvariants::with_default(key).with(Location::Edge(r2_isp2), from_isp1.not());

    // 5. Verify: one local check per filter, each a small SMT query.
    let verifier = Verifier::new(topo, &net.policy).with_ghost(ghost.clone());
    let report = verifier.verify_safety(&property, &invariants);
    println!("\n{report}");
    assert!(report.all_passed());
    println!("Property verified for ALL possible external announcements");
    println!("and, because it is a safety property, under arbitrary failures (§4.5).");

    // 6. Break R2's export filter and watch the failure localize.
    println!("\n--- now removing R2's TO-ISP2 filter ---");
    let broken_r2 = R2.replace(" neighbor 10.0.0.2 route-map TO-ISP2 out\n", "");
    let configs = vec![parse_config(R1).unwrap(), parse_config(&broken_r2).unwrap()];
    let net = lower(&configs).unwrap();
    let verifier = Verifier::new(&net.topology, &net.policy).with_ghost(ghost);
    let report = verifier.verify_safety(&property, &invariants);
    assert!(!report.all_passed());
    print!("{}", report.format_failures(&net.topology));
    println!("The violation names the exact edge and filter to fix.");
}
