//! Differential validation: run the concrete BGP simulator on the
//! Figure-1 network and cross-check every event against the invariants
//! the verifier proved.
//!
//! The verifier's guarantee quantifies over *all* valid traces; the
//! simulator produces *one* valid trace per announcement set. For every
//! simulated event, the route must satisfy the proven invariant at that
//! location — this closes the loop between the formal model (§3), the
//! proof machinery (§4) and executable BGP semantics.
//!
//! Run with: `cargo run --example simulate`

use bgp_model::sim::{simulate, SimOptions};
use bgp_model::trace::{check_safety_axioms, Event};
use bgp_model::Route;
use lightyear::engine::Verifier;
use lightyear::invariants::Location;
use netgen::figure1;
use std::collections::BTreeMap;

fn main() {
    let s = figure1::build();
    let topo = &s.network.topology;
    let policy = &s.network.policy;

    // Prove the invariants first.
    let v = Verifier::new(topo, policy).with_ghost(s.ghost.clone());
    let report = v.verify_safety(&s.no_transit, &s.no_transit_inv);
    assert!(report.all_passed());
    println!(
        "Invariants verified ({} checks). Now simulating...",
        report.num_checks()
    );

    // Announce routes from all three externals.
    let isp1 = topo.node_by_name("ISP1").unwrap();
    let cust = topo.node_by_name("Customer").unwrap();
    let r1 = topo.node_by_name("R1").unwrap();
    let r3 = topo.node_by_name("R3").unwrap();
    let announcements = vec![
        (
            topo.edge_between(isp1, r1).unwrap(),
            Route::new("8.0.0.0/8".parse().unwrap()).with_as_path(vec![100]),
        ),
        (
            topo.edge_between(cust, r3).unwrap(),
            Route::new(figure1::customer_prefix()).with_as_path(vec![300]),
        ),
    ];
    let result = simulate(topo, policy, &announcements, SimOptions::default());
    assert!(result.converged);
    println!("Simulation converged: {} events\n", result.trace.len());

    // The trace is valid per the Appendix-A axioms.
    check_safety_axioms(&result.trace, topo, policy).expect("trace must satisfy axioms");

    // Ghost tracking: FromISP1 is true exactly for routes descending from
    // ISP1's announcement. In this network, those are exactly the routes
    // tagged 100:1 (that is the verified key invariant!), so we can
    // compute the ghost value per event from provenance.
    let mut violations = 0;
    for (i, ev) in result.trace.events.iter().enumerate() {
        let (loc, route, what) = match ev {
            Event::Recv { edge, route } => (Location::Edge(*edge), route, "recv"),
            Event::Frwd { edge, route } => (Location::Edge(*edge), route, "frwd"),
            Event::Slct { node, route } => (Location::Node(*node), route, "slct"),
        };
        // Provenance-derived ghost value: in this run, ISP1's announcement
        // is the only route for 8.0.0.0/8, so FromISP1 is exactly "the
        // route targets 8.0.0.0/8". (On the external in-edge itself the
        // invariant is True, so the pre-import value is irrelevant.)
        let from_isp1 = route.prefix == "8.0.0.0/8".parse().unwrap();
        let mut ghosts = BTreeMap::new();
        ghosts.insert("FromISP1".to_string(), from_isp1);

        let inv = s.no_transit_inv.at(topo, loc);
        let ok = inv.eval(route, &ghosts);
        let loc_name = loc.display(topo);
        println!(
            "#{i:<3} {what:<4} {:<22} {} {}",
            loc_name,
            route,
            if ok {
                "✓ invariant holds"
            } else {
                "✗ INVARIANT VIOLATED"
            }
        );
        if !ok {
            violations += 1;
        }
    }
    assert_eq!(
        violations, 0,
        "verified invariants must hold on simulated traces"
    );

    // And the no-transit property itself: nothing reached ISP2 from ISP1.
    let r2 = topo.node_by_name("R2").unwrap();
    let isp2 = topo.node_by_name("ISP2").unwrap();
    let to_isp2 = topo.edge_between(r2, isp2).unwrap();
    let at_isp2 = result
        .external_rib
        .get(&to_isp2)
        .cloned()
        .unwrap_or_default();
    println!("\nRoutes delivered to ISP2: {}", at_isp2.len());
    for r in &at_isp2 {
        println!("  {r}");
        assert_ne!(r.prefix, "8.0.0.0/8".parse().unwrap(), "no transit!");
    }
    println!("\nEvery simulated event satisfied the proven invariants.");
}
