//! A Minesweeper-style **monolithic** control-plane verifier, used as the
//! baseline in the paper's scaling evaluation (§6.2, Figure 3).
//!
//! Minesweeper ("A General Approach to Network Configuration Verification",
//! SIGCOMM 2017) encodes the *whole network* as one SMT problem: a
//! symbolic route record per directed edge, per-router best-route
//! selection with optimality constraints, and the negated property; a
//! satisfying assignment is a stable routing solution violating the
//! property.
//!
//! Following the paper's methodology, this implementation shares the same
//! parser ([`bgp_config`]-lowered policies), route-map encoder
//! ([`lightyear::encode`]) and constraint substrate ([`smt`]) as our
//! Lightyear implementation, so Figure 3 compares *encodings*, not
//! toolchains ("For a fair comparison, we created an implementation of
//! Lightyear that is built on top of the same parser and constraint
//! generation system as Minesweeper").
//!
//! Modeling notes:
//!
//! * Single-destination slicing: all route records share one symbolic
//!   prefix (Minesweeper's per-destination-equivalence-class analysis).
//! * Every export increments a symbolic AS-path length, which both drives
//!   the decision process and rules out spurious routing loops in stable
//!   solutions (a loop would force `len = len + k`, unsatisfiable).
//! * External neighbors announce arbitrary symbolic routes, or nothing —
//!   the same "all possible external announcements" semantics Lightyear
//!   provides.

pub mod encode;

pub use encode::{Minesweeper, MsOutcome, MsReport};
