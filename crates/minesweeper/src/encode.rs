//! The monolithic network encoding.

use bgp_model::policy::Policy;
use bgp_model::topology::{EdgeId, NodeId, Topology};
use lightyear::encode::{encode_export, encode_import};
use lightyear::ghost::GhostAttr;
use lightyear::invariants::Location;
use lightyear::pred::RoutePred;
use lightyear::symbolic::{ConcreteRoute, SymRoute};
use lightyear::universe::Universe;
use smt::{solve_with_stats, SatResult, SolverStats, TermId, TermPool};
use std::collections::HashMap;

/// A route record in the monolithic encoding: symbolic attributes plus a
/// path-length counter and a validity flag ("is any route present here?").
#[derive(Clone, Debug)]
struct MsRoute {
    sym: SymRoute,
    /// Symbolic AS-path length (bv16, grows on every export).
    path_len: TermId,
    /// False when no route is present at this point.
    valid: TermId,
}

/// Outcome of a monolithic verification query.
#[derive(Clone, Debug)]
pub enum MsOutcome {
    /// No stable routing solution violates the property.
    Verified,
    /// A stable solution violating the property exists; the offending
    /// route at the property location is included.
    Violated(ConcreteRoute),
}

/// Result and statistics of one monolithic query.
#[derive(Clone, Debug)]
pub struct MsReport {
    /// The verification outcome.
    pub outcome: MsOutcome,
    /// Encoding/solving statistics (Figure 3a/3c metrics).
    pub stats: SolverStats,
}

impl MsReport {
    /// True when the property was verified.
    pub fn verified(&self) -> bool {
        matches!(self.outcome, MsOutcome::Verified)
    }
}

/// The monolithic verifier.
pub struct Minesweeper<'a> {
    topo: &'a Topology,
    policy: &'a Policy,
    ghosts: Vec<GhostAttr>,
}

impl<'a> Minesweeper<'a> {
    /// A verifier over a topology and policy.
    pub fn new(topo: &'a Topology, policy: &'a Policy) -> Self {
        Minesweeper {
            topo,
            policy,
            ghosts: Vec::new(),
        }
    }

    /// Register a ghost attribute (same semantics as in Lightyear).
    pub fn with_ghost(mut self, g: GhostAttr) -> Self {
        self.ghosts.push(g);
        self
    }

    /// Verify the safety property `(ℓ, P)`: no stable routing solution
    /// places a route violating `P` at `ℓ`.
    pub fn verify(&self, location: Location, pred: &RoutePred) -> MsReport {
        let mut universe = Universe::from_policy(self.policy);
        for g in &self.ghosts {
            universe.add_ghost(&g.name);
        }
        pred.register(&mut universe);

        let mut pool = TermPool::new();
        let mut assertions: Vec<TermId> = Vec::new();

        // Shared symbolic destination prefix (single-destination slice).
        let dest_addr = pool.bv_var("dest.addr", 32);
        let dest_len = pool.bv_var("dest.len", 8);
        let c32 = pool.bv_const(32, 8);
        assertions.push(pool.bv_ule(dest_len, c32));

        // Exported record per edge and best record per internal router.
        let mut exported: HashMap<EdgeId, MsRoute> = HashMap::new();
        let mut best: HashMap<NodeId, MsRoute> = HashMap::new();

        // External announcements: a fresh arbitrary route per external
        // out-edge, possibly absent.
        for e in self.topo.edge_ids() {
            let edge = self.topo.edge(e);
            if self.topo.node(edge.src).external {
                let sym = SymRoute::fresh(&mut pool, &universe, &format!("ann{}", e.0));
                let valid = pool.bool_var(&format!("ann{}.valid", e.0));
                let path_len = pool.bv_var(&format!("ann{}.len", e.0), 16);
                // The announcement targets the shared destination.
                let ea = pool.bv_eq(sym.prefix_addr, dest_addr);
                let el = pool.bv_eq(sym.prefix_len, dest_len);
                let targets = pool.and2(ea, el);
                assertions.push(pool.implies(valid, targets));
                // Ghost attributes start false outside the network.
                for (gi, _) in universe.ghosts().iter().enumerate() {
                    let not_set = pool.not(sym.ghost_bits[gi]);
                    assertions.push(pool.implies(valid, not_set));
                }
                exported.insert(
                    e,
                    MsRoute {
                        sym,
                        path_len,
                        valid,
                    },
                );
            }
        }

        // Best-route records for internal routers (declared first so
        // exports can reference them; constraints added below).
        let routers: Vec<NodeId> = self.topo.router_ids().collect();
        for &r in &routers {
            let sym = SymRoute::fresh(&mut pool, &universe, &format!("best{}", r.0));
            let valid = pool.bool_var(&format!("best{}.valid", r.0));
            let path_len = pool.bv_var(&format!("best{}.len", r.0), 16);
            best.insert(
                r,
                MsRoute {
                    sym,
                    path_len,
                    valid,
                },
            );
        }

        // Exported record for internal out-edges: Export(best of src).
        for e in self.topo.edge_ids() {
            let edge = self.topo.edge(e);
            if self.topo.node(edge.src).external {
                continue;
            }
            let src_best = best[&edge.src].clone();
            let t = encode_export(
                &mut pool,
                &universe,
                self.policy.export_map(e),
                &self.ghosts,
                e,
                &src_best.sym,
            );
            let not_rej = pool.not(t.reject);
            let valid = pool.and2(src_best.valid, not_rej);
            // Path length grows by one on every export (kills loops).
            let one = pool.bv_const(1, 16);
            let path_len = pool.bv_add(src_best.path_len, one);
            exported.insert(
                e,
                MsRoute {
                    sym: t.out,
                    path_len,
                    valid,
                },
            );
        }

        // Imported candidates and best-route selection per router.
        for &r in &routers {
            let mut candidates: Vec<MsRoute> = Vec::new();
            for &e in self.topo.in_edges(r) {
                let exp = exported[&e].clone();
                let t = encode_import(
                    &mut pool,
                    &universe,
                    self.policy.import_map(e),
                    &self.ghosts,
                    e,
                    &exp.sym,
                );
                let not_rej = pool.not(t.reject);
                let valid = pool.and2(exp.valid, not_rej);
                candidates.push(MsRoute {
                    sym: t.out,
                    path_len: exp.path_len,
                    valid,
                });
            }
            let b = best[&r].clone();
            self.encode_selection(
                &mut pool,
                &universe,
                &b,
                &candidates,
                &mut assertions,
                &format!("r{}", r.0),
            );
        }

        // Property: a violating route at the location.
        let (loc_route, loc_valid) = match location {
            Location::Node(n) => {
                let b = &best[&n];
                (b.sym.clone(), b.valid)
            }
            Location::Edge(e) => {
                let x = &exported[&e];
                (x.sym.clone(), x.valid)
            }
        };
        let holds = pred.encode(&mut pool, &universe, &loc_route);
        let violated = pool.not(holds);
        assertions.push(loc_valid);
        assertions.push(violated);

        let (result, stats) = solve_with_stats(&pool, &assertions);
        let outcome = match result {
            SatResult::Unsat => MsOutcome::Verified,
            SatResult::Sat(model) => {
                MsOutcome::Violated(loc_route.concretize(&pool, &universe, &model))
            }
        };
        MsReport { outcome, stats }
    }

    /// Encode `b = best(candidates)` with one-hot choice variables and
    /// optimality constraints.
    #[allow(clippy::too_many_arguments)]
    fn encode_selection(
        &self,
        pool: &mut TermPool,
        universe: &Universe,
        b: &MsRoute,
        candidates: &[MsRoute],
        assertions: &mut Vec<TermId>,
        tag: &str,
    ) {
        let any_valid = {
            let vs: Vec<TermId> = candidates.iter().map(|c| c.valid).collect();
            pool.or(&vs)
        };
        let biff = pool.iff(b.valid, any_valid);
        assertions.push(biff);

        // One choice variable per candidate.
        let mut choices = Vec::with_capacity(candidates.len());
        for (i, _) in candidates.iter().enumerate() {
            choices.push(pool.bool_var(&format!("choice[{tag}][{i}]")));
        }
        // Choice implies candidate valid and field equality with best.
        for (c, &ch) in candidates.iter().zip(&choices) {
            assertions.push(pool.implies(ch, c.valid));
            let eq = self.fields_equal(pool, universe, b, c);
            assertions.push(pool.implies(ch, eq));
            // Optimality: the chosen candidate is weakly preferred over
            // every valid candidate.
            for other in candidates {
                let pref = self.weakly_preferred(pool, c, other);
                let both = pool.and2(ch, other.valid);
                assertions.push(pool.implies(both, pref));
            }
        }
        // If any candidate is valid, exactly one is chosen.
        let any_choice = pool.or(&choices);
        let pick = pool.iff(any_valid, any_choice);
        assertions.push(pick);
        for i in 0..choices.len() {
            for j in (i + 1)..choices.len() {
                let bothij = pool.and2(choices[i], choices[j]);
                let amo = pool.not(bothij);
                assertions.push(amo);
            }
        }
    }

    fn fields_equal(
        &self,
        pool: &mut TermPool,
        _universe: &Universe,
        a: &MsRoute,
        c: &MsRoute,
    ) -> TermId {
        let mut parts = vec![
            pool.bv_eq(a.sym.prefix_addr, c.sym.prefix_addr),
            pool.bv_eq(a.sym.prefix_len, c.sym.prefix_len),
            pool.bv_eq(a.sym.local_pref, c.sym.local_pref),
            pool.bv_eq(a.sym.med, c.sym.med),
            pool.bv_eq(a.sym.next_hop, c.sym.next_hop),
            pool.bv_eq(a.sym.origin, c.sym.origin),
            pool.bv_eq(a.path_len, c.path_len),
        ];
        for (x, y) in a.sym.comm_bits.iter().zip(&c.sym.comm_bits) {
            parts.push(pool.iff(*x, *y));
        }
        parts.push(pool.iff(a.sym.comm_other, c.sym.comm_other));
        for (x, y) in a.sym.aspath_atoms.iter().zip(&c.sym.aspath_atoms) {
            parts.push(pool.iff(*x, *y));
        }
        for (x, y) in a.sym.ghost_bits.iter().zip(&c.sym.ghost_bits) {
            parts.push(pool.iff(*x, *y));
        }
        pool.and(&parts)
    }

    /// BGP decision process as a circuit: `a` weakly preferred over `b`.
    fn weakly_preferred(&self, pool: &mut TermPool, a: &MsRoute, b: &MsRoute) -> TermId {
        let lp_gt = pool.bv_ugt(a.sym.local_pref, b.sym.local_pref);
        let lp_eq = pool.bv_eq(a.sym.local_pref, b.sym.local_pref);
        let len_lt = pool.bv_ult(a.path_len, b.path_len);
        let len_eq = pool.bv_eq(a.path_len, b.path_len);
        let og_lt = pool.bv_ult(a.sym.origin, b.sym.origin);
        let og_eq = pool.bv_eq(a.sym.origin, b.sym.origin);
        let med_lt = pool.bv_ult(a.sym.med, b.sym.med);
        let med_eq = pool.bv_eq(a.sym.med, b.sym.med);
        let nh_le = pool.bv_ule(a.sym.next_hop, b.sym.next_hop);

        let t4 = pool.and2(med_eq, nh_le);
        let t3 = pool.or2(med_lt, t4);
        let t3 = pool.and2(og_eq, t3);
        let t2 = pool.or2(og_lt, t3);
        let t2 = pool.and2(len_eq, t2);
        let t1 = pool.or2(len_lt, t2);
        let t1 = pool.and2(lp_eq, t1);
        pool.or2(lp_gt, t1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::routemap::{MatchCond, RouteMap, RouteMapEntry, SetAction};
    use bgp_model::Community;
    use lightyear::ghost::GhostUpdate;

    fn c(s: &str) -> Community {
        s.parse().unwrap()
    }

    /// Figure-1 network with the community-based no-transit scheme.
    fn figure1() -> (Topology, Policy) {
        let mut t = Topology::new();
        let r1 = t.add_router("R1", 65000);
        let r2 = t.add_router("R2", 65000);
        let r3 = t.add_router("R3", 65000);
        let isp1 = t.add_external("ISP1", 100);
        let isp2 = t.add_external("ISP2", 200);
        let cust = t.add_external("Customer", 300);
        t.add_session(r1, r2);
        t.add_session(r1, r3);
        t.add_session(r2, r3);
        t.add_session(isp1, r1);
        t.add_session(isp2, r2);
        t.add_session(cust, r3);

        let mut pol = Policy::new();
        let mut m = RouteMap::new("FROM-ISP1");
        m.push(RouteMapEntry::permit(10).setting(SetAction::Community {
            comms: vec![c("100:1")],
            additive: true,
        }));
        pol.set_import(t.edge_between(isp1, r1).unwrap(), m);
        let mut m = RouteMap::new("TO-ISP2");
        m.push(RouteMapEntry::deny(10).matching(MatchCond::Community {
            comms: vec![c("100:1")],
            match_all: false,
        }));
        m.push(RouteMapEntry::permit(20));
        pol.set_export(t.edge_between(r2, isp2).unwrap(), m);
        (t, pol)
    }

    fn ghost(t: &Topology) -> GhostAttr {
        let isp1 = t.node_by_name("ISP1").unwrap();
        let r1 = t.node_by_name("R1").unwrap();
        GhostAttr::new("FromISP1")
            .with_import(t.edge_between(isp1, r1).unwrap(), GhostUpdate::SetTrue)
    }

    #[test]
    fn no_transit_verified_monolithically() {
        let (t, pol) = figure1();
        let r2 = t.node_by_name("R2").unwrap();
        let isp2 = t.node_by_name("ISP2").unwrap();
        let e = t.edge_between(r2, isp2).unwrap();
        let ms = Minesweeper::new(&t, &pol).with_ghost(ghost(&t));
        let report = ms.verify(
            Location::Edge(e),
            &lightyear::pred::RoutePred::ghost("FromISP1").not(),
        );
        assert!(report.verified(), "{:?}", report.outcome);
        assert!(report.stats.num_vars > 0);
    }

    #[test]
    fn broken_filter_found_monolithically() {
        let (t, mut pol) = figure1();
        let r2 = t.node_by_name("R2").unwrap();
        let isp2 = t.node_by_name("ISP2").unwrap();
        let e = t.edge_between(r2, isp2).unwrap();
        // Remove the export filter: transit becomes possible.
        pol.export.remove(&e);
        let ms = Minesweeper::new(&t, &pol).with_ghost(ghost(&t));
        let report = ms.verify(
            Location::Edge(e),
            &lightyear::pred::RoutePred::ghost("FromISP1").not(),
        );
        match report.outcome {
            MsOutcome::Violated(cex) => {
                assert!(
                    cex.ghosts["FromISP1"],
                    "violating route came from ISP1: {cex}"
                );
            }
            MsOutcome::Verified => panic!("expected violation"),
        }
    }

    #[test]
    fn no_spurious_loop_routes() {
        // A network with NO external announcements possible (no externals)
        // and no originations has no valid routes anywhere; the property
        // "false" at a node cannot be violated (vacuously verified).
        let mut t = Topology::new();
        let r1 = t.add_router("R1", 65000);
        let r2 = t.add_router("R2", 65000);
        t.add_session(r1, r2);
        let pol = Policy::new();
        let ms = Minesweeper::new(&t, &pol);
        let report = ms.verify(Location::Node(r1), &lightyear::pred::RoutePred::False);
        // If spurious loops could conjure routes, this would be Violated.
        assert!(report.verified());
    }

    #[test]
    fn monolithic_larger_than_local() {
        // The monolithic query is (much) larger than any single Lightyear
        // local check on the same network — the Figure 3a/3b contrast.
        let (t, pol) = figure1();
        let r2 = t.node_by_name("R2").unwrap();
        let isp2 = t.node_by_name("ISP2").unwrap();
        let e = t.edge_between(r2, isp2).unwrap();
        let pred = lightyear::pred::RoutePred::ghost("FromISP1").not();

        let ms_report = Minesweeper::new(&t, &pol)
            .with_ghost(ghost(&t))
            .verify(Location::Edge(e), &pred);

        use lightyear::invariants::NetworkInvariants;
        use lightyear::safety::SafetyProperty;
        let prop = SafetyProperty::new(Location::Edge(e), pred.clone());
        let key = lightyear::pred::RoutePred::ghost("FromISP1")
            .implies(lightyear::pred::RoutePred::has_community(c("100:1")));
        let inv = NetworkInvariants::with_default(key).with(Location::Edge(e), pred);
        let ly_report = lightyear::engine::Verifier::new(&t, &pol)
            .with_ghost(ghost(&t))
            .verify_safety(&prop, &inv);

        assert!(ms_report.stats.num_vars > ly_report.max_vars());
        assert!(ms_report.stats.num_clauses > ly_report.max_clauses());
    }
}
