//! Property tests for the `netgen::zoo` corpus.
//!
//! Two contracts back `lightyear bench --zoo`:
//!
//! 1. **Round-trip and verify everywhere**: every corpus entry — at any
//!    seed, any scale-down, and reduced prefix counts — must survive the
//!    full print → parse → lower pipeline and prove both of its property
//!    suites. The generator owes the bench a corpus with zero parse or
//!    verification noise, or throughput numbers mean nothing.
//! 2. **Determinism**: generation is a pure function of its parameters
//!    (the CLI half — `bench --zoo` emitting identical JSON for an
//!    identical seed — is pinned in `crates/cli/tests/cli.rs`).

use lightyear::engine::Verifier;
use netgen::zoo::{self, ZooParams, CORPUS};
use proptest::prelude::*;

/// Build a scenario and prove both suites, panicking with the failure
/// report otherwise.
fn build_and_verify(params: &ZooParams) {
    let s = zoo::build(params);
    let topo = &s.network.topology;
    let v = Verifier::new(topo, &s.network.policy).with_ghost(s.from_peer_ghost());
    for (name, (props, inv)) in [
        ("peering", s.peering_suite()),
        ("fencing", s.fencing_suite()),
    ] {
        let r = v.clone().verify_safety_multi(&props, &inv);
        assert!(
            r.all_passed(),
            "{} ({} routers, seed {}): {name} suite failed:\n{}",
            params.name,
            params.routers,
            params.seed,
            r.format_failures(topo)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any corpus entry, scaled to a small router count with a random
    /// seed and a reduced bogon prefix list, still builds through the
    /// full config pipeline and proves both suites.
    #[test]
    fn scaled_corpus_entries_roundtrip_and_verify(
        idx in 0usize..CORPUS.len(),
        seed in 0u64..1_000_000,
        bogons in 1usize..=6,
        max_routers in 8usize..=20,
    ) {
        let params = ZooParams::scaled(&CORPUS[idx], max_routers)
            .with_seed(seed)
            .with_bogon_count(bogons);
        build_and_verify(&params);
    }

    /// Generation is a pure function of its parameters: the same params
    /// print the same configs; a different seed differs.
    #[test]
    fn generation_is_a_pure_function_of_params(
        idx in 0usize..CORPUS.len(),
        seed in 0u64..1_000_000,
        max_routers in 8usize..=20,
    ) {
        let params = ZooParams::scaled(&CORPUS[idx], max_routers).with_seed(seed);
        let print = |p: &ZooParams| {
            zoo::configs(p)
                .iter()
                .map(bgp_config::print_config)
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(print(&params), print(&params));
        let reseeded = params.clone().with_seed(seed ^ 0x9e3779b97f4a7c15);
        prop_assert_ne!(print(&params), print(&reseeded));
    }
}

/// Every corpus entry at full size round-trips the config pipeline with
/// a reduced prefix count; entries small enough for a debug-mode solver
/// also prove both suites (release proves all of them — and the CI
/// `zoo-smoke` job verifies the full-size corpus end to end).
#[test]
fn full_corpus_roundtrips_and_small_entries_verify() {
    let verify_cap = if cfg!(debug_assertions) {
        130
    } else {
        usize::MAX
    };
    for entry in CORPUS {
        let params = ZooParams::for_entry(entry).with_bogon_count(2);
        if entry.routers <= verify_cap {
            build_and_verify(&params);
        } else {
            // Build alone exercises print -> parse -> lower for every
            // router of the full-size entry.
            let s = zoo::build(&params);
            assert_eq!(s.network.topology.router_ids().count(), entry.routers);
        }
    }
}
