//! A **multi-homed stub AS with anycast ingress**: `borders` border
//! routers in a small iBGP mesh, each homed to a different upstream
//! provider, with provider preference expressed the way operators do it —
//! local-preference set at import, provenance recorded in communities.
//!
//! Provider 0 is the **primary** (local-pref 120, tagged `300:10`); every
//! other provider is a **backup** (local-pref 80, tagged `300:20`). The
//! same *anycast* prefix is announced by several providers at once (see
//! [`anycast_prefix`]), so best-path selection genuinely arbitrates
//! between provenances — the sharpest trap for prefix-keyed provenance
//! assumptions in differential oracles.
//!
//! Properties:
//!
//! * **no-transit between providers**, both directions: backup-learned
//!   routes never exported to the primary, primary-learned routes never
//!   exported to a backup (a multi-homed stub must not become transit);
//! * **provider preference**: primary-learned routes carry local-pref
//!   120 everywhere.

use crate::roundtrip_and_lower;
use bgp_config::ast::*;
use bgp_config::Network;
use bgp_model::{Community, Ipv4Prefix};
use lightyear::ghost::{GhostAttr, GhostUpdate};
use lightyear::invariants::{Location, NetworkInvariants};
use lightyear::pred::{Cmp, RoutePred};
use lightyear::safety::SafetyProperty;

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct StubParams {
    /// Border routers, one provider each (>= 2).
    pub borders: usize,
    /// Deterministic variation seed (provider AS numbers only).
    pub seed: u64,
}

impl Default for StubParams {
    fn default() -> Self {
        StubParams {
            borders: 2,
            seed: 0,
        }
    }
}

impl StubParams {
    fn asn_jitter(&self) -> u32 {
        ((self.seed % 83) * 5) as u32
    }

    /// The AS number provider `i`'s announcements originate from.
    pub fn provider_asn(&self, i: usize) -> u32 {
        1000 + self.asn_jitter() + (i * 7) as u32
    }
}

/// The community tagging primary-learned routes.
pub fn primary_comm() -> Community {
    Community::new(300, 10)
}

/// The community tagging backup-learned routes.
pub fn backup_comm() -> Community {
    Community::new(300, 20)
}

/// The anycast prefix several providers announce simultaneously.
pub fn anycast_prefix() -> Ipv4Prefix {
    "203.0.200.0/24".parse().unwrap()
}

fn border_name(i: usize) -> String {
    format!("B{i}")
}

fn provider_name(i: usize) -> String {
    format!("PROV{i}")
}

/// A generated stub scenario with its verification inputs.
pub struct Scenario {
    /// Generator parameters.
    pub params: StubParams,
    /// The lowered network.
    pub network: Network,
    /// `FromPrimary`: true on the primary provider's import only.
    pub primary_ghost: GhostAttr,
    /// `FromBackup`: true on every backup provider's import.
    pub backup_ghost: GhostAttr,
    /// No-transit both ways + provider-preference properties.
    pub properties: Vec<SafetyProperty>,
    /// The shared invariants.
    pub invariants: NetworkInvariants,
}

fn config_border(params: &StubParams, i: usize) -> ConfigAst {
    let mut ast = ConfigAst {
        hostname: border_name(i),
        ..Default::default()
    };
    let primary = i == 0;

    // Provenance tag + preference, set at import (replace-all so
    // adversarial provider communities cannot forge provenance).
    let (comm, lp, import_map) = if primary {
        (primary_comm(), 120, "FROM-PRIMARY")
    } else {
        (backup_comm(), 80, "FROM-BACKUP")
    };
    ast.route_maps.insert(
        import_map.into(),
        vec![RouteMapEntryAst {
            seq: 10,
            permit: true,
            matches: vec![],
            sets: vec![
                SetAst::Community {
                    communities: vec![comm],
                    additive: false,
                    none: false,
                },
                SetAst::LocalPref(lp),
            ],
            continue_to: None,
        }],
    );
    // No-transit exports: the primary session never re-announces
    // backup-tagged routes and vice versa.
    let (deny_list, deny_comm, export_map) = if primary {
        ("BACKUP", backup_comm(), "TO-PRIMARY")
    } else {
        ("PRIMARY", primary_comm(), "TO-BACKUP")
    };
    ast.community_lists.insert(
        deny_list.into(),
        vec![CommunityListEntry {
            permit: true,
            communities: vec![deny_comm],
        }],
    );
    ast.route_maps.insert(
        export_map.into(),
        vec![
            RouteMapEntryAst {
                seq: 10,
                permit: false,
                matches: vec![MatchAst::Community {
                    lists: vec![deny_list.into()],
                    exact: false,
                }],
                sets: vec![],
                continue_to: None,
            },
            RouteMapEntryAst {
                seq: 20,
                permit: true,
                matches: vec![],
                sets: vec![],
                continue_to: None,
            },
        ],
    );

    let mut bgp = RouterBgp {
        asn: 65010,
        ..Default::default()
    };
    // iBGP mesh across the stub.
    for i2 in 0..params.borders {
        if i2 == i {
            continue;
        }
        let addr = format!("10.50.{i2}.{i}");
        bgp.neighbors.insert(
            addr.clone(),
            NeighborAst {
                addr,
                remote_as: Some(65010),
                description: Some(border_name(i2)),
                route_map_in: None,
                route_map_out: None,
            },
        );
    }
    // The provider session.
    let addr = format!("10.51.{i}.1");
    bgp.neighbors.insert(
        addr.clone(),
        NeighborAst {
            addr,
            remote_as: Some(params.provider_asn(i)),
            description: Some(provider_name(i)),
            route_map_in: Some(import_map.into()),
            route_map_out: Some(export_map.into()),
        },
    );
    ast.router_bgp = Some(bgp);
    ast
}

/// The raw configuration ASTs.
pub fn configs(params: &StubParams) -> Vec<ConfigAst> {
    assert!(params.borders >= 2, "a multi-homed stub needs >= 2 uplinks");
    (0..params.borders)
        .map(|i| config_border(params, i))
        .collect()
}

/// Build the scenario.
pub fn build(params: &StubParams) -> Scenario {
    build_from_configs(params, configs(params))
}

/// Build from (possibly mutated) configuration ASTs.
pub fn build_from_configs(params: &StubParams, asts: Vec<ConfigAst>) -> Scenario {
    let network = roundtrip_and_lower(&asts);
    let t = &network.topology;

    let mut primary_ghost = GhostAttr::new("FromPrimary");
    let mut backup_ghost = GhostAttr::new("FromBackup");
    for e in t.edge_ids() {
        let edge = t.edge(e);
        if !t.node(edge.src).external {
            continue;
        }
        let is_primary = t.node(edge.src).name == provider_name(0);
        primary_ghost.on_import(
            e,
            if is_primary {
                GhostUpdate::SetTrue
            } else {
                GhostUpdate::SetFalse
            },
        );
        backup_ghost.on_import(
            e,
            if is_primary {
                GhostUpdate::SetFalse
            } else {
                GhostUpdate::SetTrue
            },
        );
    }

    let from_primary = RoutePred::ghost("FromPrimary");
    let from_backup = RoutePred::ghost("FromBackup");
    let key = from_primary
        .clone()
        .implies(RoutePred::has_community(primary_comm()).and(RoutePred::local_pref(Cmp::Eq, 120)))
        .and(
            from_backup
                .clone()
                .implies(RoutePred::has_community(backup_comm())),
        );
    let mut invariants = NetworkInvariants::with_default(key);
    let mut properties = Vec::new();

    for i in 0..params.borders {
        let (Some(b), Some(p)) = (
            t.node_by_name(&border_name(i)),
            t.node_by_name(&provider_name(i)),
        ) else {
            continue;
        };
        let Some(edge) = t.edge_between(b, p) else {
            continue;
        };
        if i == 0 {
            invariants.set(Location::Edge(edge), from_backup.clone().not());
            properties.push(
                SafetyProperty::new(Location::Edge(edge), from_backup.clone().not())
                    .named("stub-no-backup-to-primary"),
            );
        } else {
            invariants.set(Location::Edge(edge), from_primary.clone().not());
            properties.push(
                SafetyProperty::new(Location::Edge(edge), from_primary.clone().not())
                    .named(format!("stub-no-primary-to-backup{i}")),
            );
        }
    }
    // Provider preference holds at every border router.
    let pref = from_primary.implies(RoutePred::local_pref(Cmp::Eq, 120));
    for n in t.router_ids() {
        properties
            .push(SafetyProperty::new(Location::Node(n), pref.clone()).named("stub-provider-pref"));
    }

    Scenario {
        params: *params,
        network,
        primary_ghost,
        backup_ghost,
        properties,
        invariants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightyear::engine::Verifier;

    #[test]
    fn stub_verifies_at_small_sizes() {
        for borders in [2, 3, 4] {
            let s = build(&StubParams { borders, seed: 2 });
            let v = Verifier::new(&s.network.topology, &s.network.policy)
                .with_ghost(s.primary_ghost.clone())
                .with_ghost(s.backup_ghost.clone());
            let report = v.verify_safety_multi(&s.properties, &s.invariants);
            assert!(
                report.all_passed(),
                "stub x{borders}: {}",
                report.format_failures(&s.network.topology)
            );
        }
    }

    #[test]
    fn dropped_export_deny_breaks_no_transit() {
        let p = StubParams::default();
        let mut cfgs = configs(&p);
        // B0 loses the deny entry that keeps backup routes off the
        // primary session.
        let cfg = cfgs.iter_mut().find(|c| c.hostname == "B0").unwrap();
        cfg.route_maps
            .get_mut("TO-PRIMARY")
            .unwrap()
            .retain(|e| e.permit);
        let s = build_from_configs(&p, cfgs);
        let v = Verifier::new(&s.network.topology, &s.network.policy)
            .with_ghost(s.primary_ghost.clone())
            .with_ghost(s.backup_ghost.clone());
        let report = v.verify_safety_multi(&s.properties, &s.invariants);
        assert!(!report.all_passed());
    }
}
