//! The Figure-1 example network, generated as configuration text.
//!
//! Three routers in AS 65000 (full iBGP mesh), with external neighbors
//! ISP1 (on R1), ISP2 (on R2) and Customer (on R3). The community-based
//! no-transit scheme of §2.1: R1 tags routes from ISP1 with `100:1`, R2's
//! export to ISP2 drops tagged routes, and no other filter strips the tag.
//! R3 strips all communities from customer routes (required for the §2.2
//! liveness property).

use crate::roundtrip_and_lower;
use bgp_config::ast::*;
use bgp_config::Network;
use bgp_model::prefix::PrefixRange;
use bgp_model::Community;
use lightyear::ghost::{GhostAttr, GhostUpdate};
use lightyear::invariants::{Location, NetworkInvariants};
use lightyear::liveness::LivenessSpec;
use lightyear::pred::RoutePred;
use lightyear::safety::SafetyProperty;

/// The community used to mark routes from ISP1.
pub fn transit_comm() -> Community {
    Community::new(100, 1)
}

/// The customer's prefix.
pub fn customer_prefix() -> bgp_model::Ipv4Prefix {
    "203.0.113.0/24".parse().unwrap()
}

/// The generated scenario: network plus verification inputs.
pub struct Scenario {
    /// The lowered network.
    pub network: Network,
    /// The `FromISP1` ghost attribute (§4.4).
    pub ghost: GhostAttr,
    /// The Table-2 no-transit safety property.
    pub no_transit: SafetyProperty,
    /// The Table-2 network invariants.
    pub no_transit_inv: NetworkInvariants,
    /// The Table-3 customer-reachability liveness spec.
    pub customer_liveness: LivenessSpec,
}

fn neighbor(
    addr: &str,
    asn: u32,
    desc: &str,
    rm_in: Option<&str>,
    rm_out: Option<&str>,
) -> NeighborAst {
    NeighborAst {
        addr: addr.into(),
        remote_as: Some(asn),
        description: Some(desc.into()),
        route_map_in: rm_in.map(Into::into),
        route_map_out: rm_out.map(Into::into),
    }
}

fn config_r1() -> ConfigAst {
    let mut ast = ConfigAst {
        hostname: "R1".into(),
        ..Default::default()
    };
    // Deny customer prefixes from ISP1 (no-interference requirement),
    // tag everything else.
    ast.prefix_lists.insert(
        "CUST".into(),
        vec![PrefixListEntry {
            seq: 5,
            permit: true,
            prefix: customer_prefix(),
            ge: None,
            le: Some(32),
        }],
    );
    ast.route_maps.insert(
        "FROM-ISP1".into(),
        vec![
            RouteMapEntryAst {
                seq: 5,
                permit: false,
                matches: vec![MatchAst::PrefixList(vec!["CUST".into()])],
                sets: vec![],
                continue_to: None,
            },
            RouteMapEntryAst {
                seq: 10,
                permit: true,
                matches: vec![],
                sets: vec![SetAst::Community {
                    communities: vec![transit_comm()],
                    additive: true,
                    none: false,
                }],
                continue_to: None,
            },
        ],
    );
    let mut bgp = RouterBgp {
        asn: 65000,
        ..Default::default()
    };
    bgp.neighbors.insert(
        "10.0.0.1".into(),
        neighbor("10.0.0.1", 100, "ISP1", Some("FROM-ISP1"), None),
    );
    bgp.neighbors.insert(
        "10.0.12.2".into(),
        neighbor("10.0.12.2", 65000, "R2", None, None),
    );
    bgp.neighbors.insert(
        "10.0.13.3".into(),
        neighbor("10.0.13.3", 65000, "R3", None, None),
    );
    ast.router_bgp = Some(bgp);
    ast
}

fn config_r2() -> ConfigAst {
    let mut ast = ConfigAst {
        hostname: "R2".into(),
        ..Default::default()
    };
    ast.community_lists.insert(
        "TRANSIT".into(),
        vec![CommunityListEntry {
            permit: true,
            communities: vec![transit_comm()],
        }],
    );
    ast.route_maps.insert(
        "TO-ISP2".into(),
        vec![
            RouteMapEntryAst {
                seq: 10,
                permit: false,
                matches: vec![MatchAst::Community {
                    lists: vec!["TRANSIT".into()],
                    exact: false,
                }],
                sets: vec![],
                continue_to: None,
            },
            RouteMapEntryAst {
                seq: 20,
                permit: true,
                matches: vec![],
                sets: vec![],
                continue_to: None,
            },
        ],
    );
    // Strip communities from ISP2's routes so interfering routes cannot
    // carry 100:1.
    ast.route_maps.insert(
        "FROM-ISP2".into(),
        vec![RouteMapEntryAst {
            seq: 10,
            permit: true,
            matches: vec![],
            sets: vec![SetAst::Community {
                communities: vec![],
                additive: false,
                none: true,
            }],
            continue_to: None,
        }],
    );
    let mut bgp = RouterBgp {
        asn: 65000,
        ..Default::default()
    };
    bgp.neighbors.insert(
        "10.0.0.2".into(),
        neighbor("10.0.0.2", 200, "ISP2", Some("FROM-ISP2"), Some("TO-ISP2")),
    );
    bgp.neighbors.insert(
        "10.0.12.1".into(),
        neighbor("10.0.12.1", 65000, "R1", None, None),
    );
    bgp.neighbors.insert(
        "10.0.23.3".into(),
        neighbor("10.0.23.3", 65000, "R3", None, None),
    );
    ast.router_bgp = Some(bgp);
    ast
}

fn config_r3() -> ConfigAst {
    let mut ast = ConfigAst {
        hostname: "R3".into(),
        ..Default::default()
    };
    ast.route_maps.insert(
        "FROM-CUST".into(),
        vec![RouteMapEntryAst {
            seq: 10,
            permit: true,
            matches: vec![],
            sets: vec![SetAst::Community {
                communities: vec![],
                additive: false,
                none: true,
            }],
            continue_to: None,
        }],
    );
    let mut bgp = RouterBgp {
        asn: 65000,
        ..Default::default()
    };
    bgp.neighbors.insert(
        "10.0.0.3".into(),
        neighbor("10.0.0.3", 300, "Customer", Some("FROM-CUST"), None),
    );
    bgp.neighbors.insert(
        "10.0.13.1".into(),
        neighbor("10.0.13.1", 65000, "R1", None, None),
    );
    bgp.neighbors.insert(
        "10.0.23.2".into(),
        neighbor("10.0.23.2", 65000, "R2", None, None),
    );
    ast.router_bgp = Some(bgp);
    ast
}

/// The raw configuration ASTs (exposed for the mutation tests).
pub fn configs() -> Vec<ConfigAst> {
    vec![config_r1(), config_r2(), config_r3()]
}

/// Build the complete scenario.
pub fn build() -> Scenario {
    build_from_configs(configs())
}

/// Build the scenario from (possibly mutated) configuration ASTs.
pub fn build_from_configs(asts: Vec<ConfigAst>) -> Scenario {
    let network = roundtrip_and_lower(&asts);
    let t = &network.topology;
    let r1 = t.node_by_name("R1").unwrap();
    let r2 = t.node_by_name("R2").unwrap();
    let r3 = t.node_by_name("R3").unwrap();
    let isp1 = t.node_by_name("ISP1").unwrap();
    let isp2 = t.node_by_name("ISP2").unwrap();
    let cust = t.node_by_name("Customer").unwrap();
    let isp1_r1 = t.edge_between(isp1, r1).unwrap();
    let isp2_r2 = t.edge_between(isp2, r2).unwrap();
    let cust_r3 = t.edge_between(cust, r3).unwrap();
    let r2_isp2 = t.edge_between(r2, isp2).unwrap();
    let r3_r2 = t.edge_between(r3, r2).unwrap();

    // Ghost FromISP1 (§4.4): true on ISP1 -> R1, false on other external
    // imports, unchanged elsewhere, false on origination.
    let ghost = GhostAttr::new("FromISP1")
        .with_import(isp1_r1, GhostUpdate::SetTrue)
        .with_import(isp2_r2, GhostUpdate::SetFalse)
        .with_import(cust_r3, GhostUpdate::SetFalse);

    // Table 2: the no-transit property and invariants.
    let from_isp1 = RoutePred::ghost("FromISP1");
    let no_transit =
        SafetyProperty::new(Location::Edge(r2_isp2), from_isp1.clone().not()).named("no-transit");
    let key = from_isp1
        .clone()
        .implies(RoutePred::has_community(transit_comm()));
    let no_transit_inv =
        NetworkInvariants::with_default(key).with(Location::Edge(r2_isp2), from_isp1.not());

    // Table 3: customer routes reach ISP2.
    let has_cust = RoutePred::prefix_in(vec![PrefixRange::orlonger(customer_prefix())]);
    let good = has_cust
        .clone()
        .and(RoutePred::has_community(transit_comm()).not());
    let customer_liveness = LivenessSpec {
        location: Location::Edge(r2_isp2),
        pred: has_cust.clone(),
        path: vec![
            Location::Edge(cust_r3),
            Location::Node(r3),
            Location::Edge(r3_r2),
            Location::Node(r2),
            Location::Edge(r2_isp2),
        ],
        constraints: vec![
            has_cust.clone(),
            good.clone(),
            good.clone(),
            good,
            has_cust.clone(),
        ],
        prefix_scope: has_cust.clone(),
        interference_invariants: NetworkInvariants::with_default(
            has_cust.implies(RoutePred::has_community(transit_comm()).not()),
        ),
        name: Some("customer-reaches-isp2".into()),
    };

    Scenario {
        network,
        ghost,
        no_transit,
        no_transit_inv,
        customer_liveness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightyear::engine::Verifier;

    #[test]
    fn no_transit_verifies_end_to_end() {
        let s = build();
        let v = Verifier::new(&s.network.topology, &s.network.policy).with_ghost(s.ghost.clone());
        let report = v.verify_safety(&s.no_transit, &s.no_transit_inv);
        assert!(
            report.all_passed(),
            "{}",
            report.format_failures(&s.network.topology)
        );
    }

    #[test]
    fn customer_liveness_verifies_end_to_end() {
        let s = build();
        let v = Verifier::new(&s.network.topology, &s.network.policy).with_ghost(s.ghost.clone());
        let report = v.verify_liveness(&s.customer_liveness).unwrap();
        assert!(
            report.all_passed(),
            "{}",
            report.format_failures(&s.network.topology)
        );
    }

    #[test]
    fn warnings_clean() {
        let s = build();
        assert!(s.network.warnings.is_empty(), "{:?}", s.network.warnings);
    }
}
