//! Failure injection: seeded configuration bugs.
//!
//! Each mutation reproduces a bug class the paper reports finding in
//! production (§6.1): a route map that forgets to tag a community, a
//! single peering whose ad-hoc AS-path policy differs from the fleet, and
//! a router using a region community absent from the metadata file. Tests
//! assert Lightyear localizes each to the exact filter.

use bgp_config::ast::{ConfigAst, MatchAst, SetAst};
use bgp_model::Community;

/// Description of an injected bug (used by tests to assert localization).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InjectedBug {
    /// The router whose configuration was altered.
    pub router: String,
    /// The altered route map.
    pub route_map: String,
    /// What was done.
    pub description: String,
}

/// Remove all `set community` actions from one route map on one router
/// (the "forgot to tag" bug). Returns the bug description, or `None` when
/// the router/map was not found.
pub fn drop_community_sets(
    configs: &mut [ConfigAst],
    router: &str,
    map: &str,
) -> Option<InjectedBug> {
    let cfg = configs.iter_mut().find(|c| c.hostname == router)?;
    let entries = cfg.route_maps.get_mut(map)?;
    let mut removed = false;
    for e in entries {
        let before = e.sets.len();
        e.sets.retain(|s| !matches!(s, SetAst::Community { .. }));
        removed |= e.sets.len() != before;
    }
    removed.then(|| InjectedBug {
        router: router.into(),
        route_map: map.into(),
        description: "removed community set actions".into(),
    })
}

/// Remove the AS-path match clauses from one route map on one router (the
/// "ad-hoc policy filtered AS paths differently" bug: one peering in a
/// fleet of similar sessions loses its private-ASN filter).
pub fn drop_aspath_filters(
    configs: &mut [ConfigAst],
    router: &str,
    map: &str,
) -> Option<InjectedBug> {
    let cfg = configs.iter_mut().find(|c| c.hostname == router)?;
    let entries = cfg.route_maps.get_mut(map)?;
    let before = entries.len();
    entries.retain(|e| e.permit || !e.matches.iter().any(|m| matches!(m, MatchAst::AsPath(_))));
    (entries.len() != before).then(|| InjectedBug {
        router: router.into(),
        route_map: map.into(),
        description: "removed as-path deny entries".into(),
    })
}

/// Replace every occurrence of one community with another in a route map
/// (the "undocumented community" bug: a router tags with a community not
/// present in the metadata file).
pub fn swap_community(
    configs: &mut [ConfigAst],
    router: &str,
    map: &str,
    from: Community,
    to: Community,
) -> Option<InjectedBug> {
    let cfg = configs.iter_mut().find(|c| c.hostname == router)?;
    let entries = cfg.route_maps.get_mut(map)?;
    let mut swapped = false;
    for e in entries {
        for s in &mut e.sets {
            if let SetAst::Community { communities, .. } = s {
                for c in communities {
                    if *c == from {
                        *c = to;
                        swapped = true;
                    }
                }
            }
        }
    }
    swapped.then(|| InjectedBug {
        router: router.into(),
        route_map: map.into(),
        description: format!("replaced community {from} with {to}"),
    })
}

/// Remove one prefix-list deny entry from a route map (a filter that
/// "denied more traffic than intended" once inverted: here we make it
/// accept more than intended).
pub fn drop_prefix_deny(
    configs: &mut [ConfigAst],
    router: &str,
    map: &str,
    list_name: &str,
) -> Option<InjectedBug> {
    let cfg = configs.iter_mut().find(|c| c.hostname == router)?;
    let entries = cfg.route_maps.get_mut(map)?;
    let before = entries.len();
    entries.retain(|e| {
        e.permit
            || !e.matches.iter().any(|m| {
                matches!(m, MatchAst::PrefixList(names) if names.iter().any(|n| n == list_name))
            })
    });
    (entries.len() != before).then(|| InjectedBug {
        router: router.into(),
        route_map: map.into(),
        description: format!("removed deny on prefix-list {list_name}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{figure1, wan};
    use lightyear::check::CheckKind;
    use lightyear::engine::Verifier;

    #[test]
    fn figure1_missing_tag_localized() {
        let mut configs = figure1::configs();
        let bug = drop_community_sets(&mut configs, "R1", "FROM-ISP1").unwrap();
        let s = figure1::build_from_configs(configs);
        let v = Verifier::new(&s.network.topology, &s.network.policy).with_ghost(s.ghost.clone());
        let report = v.verify_safety(&s.no_transit, &s.no_transit_inv);
        assert!(!report.all_passed());
        for f in report.failures() {
            assert_eq!(f.check.kind, CheckKind::Import);
            assert_eq!(f.check.map_name.as_deref(), Some(bug.route_map.as_str()));
        }
    }

    #[test]
    fn wan_adhoc_aspath_policy_localized() {
        let params = wan::WanParams {
            regions: 2,
            routers_per_region: 2,
            edge_routers: 2,
            peers_per_edge: 2,
            ..wan::WanParams::default()
        };
        let mut configs = wan::configs(&params);
        // One peering on EDGE1 loses its private-ASN filter.
        let bug = drop_aspath_filters(&mut configs, "EDGE1", "FROM-PEER1").unwrap();
        let s = wan::build_from_configs(&params, configs);
        let v =
            Verifier::new(&s.network.topology, &s.network.policy).with_ghost(s.from_peer_ghost());
        let (_, q) = s
            .peering_predicates()
            .into_iter()
            .find(|(n, _)| n == "no-private-asn")
            .unwrap();
        let (props, inv) = s.peering_property_inputs(&q);
        let report = v.verify_safety_multi(&props, &inv);
        assert!(!report.all_passed());
        let failures = report.failures();
        // Every failure points at the one ad-hoc peering.
        for f in &failures {
            assert_eq!(f.check.map_name.as_deref(), Some(bug.route_map.as_str()));
            let e = f.check.edge.expect("filter check");
            let edge = s.network.topology.edge(e);
            assert_eq!(s.network.topology.node(edge.dst).name, "EDGE1");
        }
        // Other peerings still verify: exactly one failing check.
        assert_eq!(failures.len(), 1);
    }

    #[test]
    fn wan_undocumented_community_caught() {
        let params = wan::WanParams {
            regions: 2,
            routers_per_region: 2,
            edge_routers: 2,
            peers_per_edge: 1,
            ..wan::WanParams::default()
        };
        let mut configs = wan::configs(&params);
        // Region 0's DC attachment tags with an undocumented community.
        let undocumented = Community::new(100, 99);
        let bug = swap_community(
            &mut configs,
            "R0-1",
            "FROM-DC",
            wan::region_comm(0),
            undocumented,
        )
        .unwrap();
        let s = wan::build_from_configs(&params, configs);
        let v = Verifier::new(&s.network.topology, &s.network.policy)
            .with_ghost(s.from_region_ghost(0));
        let (props, inv) = s.reuse_safety_inputs(0);
        let report = v.verify_safety_multi(&props, &inv);
        assert!(!report.all_passed());
        let failures = report.failures();
        assert!(failures
            .iter()
            .any(|f| f.check.map_name.as_deref() == Some(bug.route_map.as_str())));
    }

    #[test]
    fn wan_missing_bogon_filter_localized() {
        let params = wan::WanParams {
            regions: 2,
            routers_per_region: 2,
            edge_routers: 2,
            peers_per_edge: 2,
            ..wan::WanParams::default()
        };
        let mut configs = wan::configs(&params);
        let bug = drop_prefix_deny(&mut configs, "EDGE0", "FROM-PEER0", "BOGONS").unwrap();
        let s = wan::build_from_configs(&params, configs);
        let v =
            Verifier::new(&s.network.topology, &s.network.policy).with_ghost(s.from_peer_ghost());
        let (_, q) = s
            .peering_predicates()
            .into_iter()
            .find(|(n, _)| n == "no-bogons")
            .unwrap();
        let (props, inv) = s.peering_property_inputs(&q);
        let report = v.verify_safety_multi(&props, &inv);
        let failures = report.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(
            failures[0].check.map_name.as_deref(),
            Some(bug.route_map.as_str())
        );
    }

    #[test]
    fn mutations_return_none_when_target_missing() {
        let mut configs = figure1::configs();
        assert!(drop_community_sets(&mut configs, "NOPE", "FROM-ISP1").is_none());
        assert!(drop_community_sets(&mut configs, "R1", "NOPE").is_none());
        assert!(drop_aspath_filters(&mut configs, "R1", "FROM-ISP1").is_none());
    }
}
