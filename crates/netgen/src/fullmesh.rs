//! The §6.2 scaling workload.
//!
//! "We use a BGP full mesh where each router is connected to one external
//! neighbor through eBGP and all other routers through iBGP. This leads to
//! a total of N² edges in a network of size N. The network's configuration
//! is relatively simple, with each eBGP connection using only prefix and
//! community filters. We checked a no-transit safety property, similar to
//! the example in Figure 1."
//!
//! Router `R0` plays the R1 role (its external `E0` is "ISP1"), router
//! `R1` plays the R2 role (its external `E1` is "ISP2"); every import from
//! an external applies a prefix filter (drop a bogon range) and a
//! community action (tag `100:1` at `R0`, strip elsewhere), and `R1`'s
//! export to `E1` drops routes tagged `100:1`.

use crate::roundtrip_and_lower;
use bgp_config::ast::*;
use bgp_config::Network;
use bgp_model::Community;
use lightyear::ghost::{GhostAttr, GhostUpdate};
use lightyear::invariants::{Location, NetworkInvariants};
use lightyear::pred::RoutePred;
use lightyear::safety::SafetyProperty;

/// The tag community.
pub fn tag() -> Community {
    Community::new(100, 1)
}

/// A generated full-mesh scenario with its no-transit verification inputs.
pub struct Scenario {
    /// The lowered network.
    pub network: Network,
    /// Ghost attribute marking routes from `E0`.
    pub ghost: GhostAttr,
    /// The no-transit property (`E0`'s routes never reach `E1`).
    pub property: SafetyProperty,
    /// The three-part invariants.
    pub invariants: NetworkInvariants,
}

fn external_name(i: usize) -> String {
    format!("E{i}")
}

fn router_name(i: usize) -> String {
    format!("R{i}")
}

fn config_router(i: usize, n: usize) -> ConfigAst {
    let mut ast = ConfigAst {
        hostname: router_name(i),
        ..Default::default()
    };
    // Prefix filter on the eBGP session: drop a bogon range.
    ast.prefix_lists.insert(
        "NO-BOGON".into(),
        vec![
            PrefixListEntry {
                seq: 5,
                permit: false,
                prefix: "192.168.0.0/16".parse().unwrap(),
                ge: None,
                le: Some(32),
            },
            PrefixListEntry {
                seq: 10,
                permit: true,
                prefix: "0.0.0.0/0".parse().unwrap(),
                ge: None,
                le: Some(32),
            },
        ],
    );
    // Community action: R0 tags, everyone else strips.
    let sets = if i == 0 {
        vec![
            SetAst::Community {
                communities: vec![],
                additive: false,
                none: true,
            },
            SetAst::Community {
                communities: vec![tag()],
                additive: true,
                none: false,
            },
        ]
    } else {
        vec![SetAst::Community {
            communities: vec![],
            additive: false,
            none: true,
        }]
    };
    ast.route_maps.insert(
        "FROM-EXT".into(),
        vec![RouteMapEntryAst {
            seq: 10,
            permit: true,
            matches: vec![MatchAst::PrefixList(vec!["NO-BOGON".into()])],
            sets,
            continue_to: None,
        }],
    );
    if i == 1 {
        ast.community_lists.insert(
            "TRANSIT".into(),
            vec![CommunityListEntry {
                permit: true,
                communities: vec![tag()],
            }],
        );
        ast.route_maps.insert(
            "TO-EXT".into(),
            vec![
                RouteMapEntryAst {
                    seq: 10,
                    permit: false,
                    matches: vec![MatchAst::Community {
                        lists: vec!["TRANSIT".into()],
                        exact: false,
                    }],
                    sets: vec![],
                    continue_to: None,
                },
                RouteMapEntryAst {
                    seq: 20,
                    permit: true,
                    matches: vec![],
                    sets: vec![],
                    continue_to: None,
                },
            ],
        );
    }
    let mut bgp = RouterBgp {
        asn: 65000,
        ..Default::default()
    };
    // The eBGP neighbor.
    bgp.neighbors.insert(
        format!("10.255.{}.1", i),
        NeighborAst {
            addr: format!("10.255.{}.1", i),
            remote_as: Some(65001 + i as u32),
            description: Some(external_name(i)),
            route_map_in: Some("FROM-EXT".into()),
            route_map_out: if i == 1 { Some("TO-EXT".into()) } else { None },
        },
    );
    // iBGP mesh.
    for j in 0..n {
        if j == i {
            continue;
        }
        let addr = format!("10.0.{}.{}", j, i);
        bgp.neighbors.insert(
            addr.clone(),
            NeighborAst {
                addr,
                remote_as: Some(65000),
                description: Some(router_name(j)),
                route_map_in: None,
                route_map_out: None,
            },
        );
    }
    ast.router_bgp = Some(bgp);
    ast
}

/// The raw configuration ASTs for a mesh of `n` routers.
pub fn configs(n: usize) -> Vec<ConfigAst> {
    assert!(n >= 2, "full mesh needs at least 2 routers");
    (0..n).map(|i| config_router(i, n)).collect()
}

/// Build the full scenario for a mesh of `n` routers.
pub fn build(n: usize) -> Scenario {
    build_from_configs(configs(n))
}

/// Build the scenario from (possibly mutated) configuration ASTs.
pub fn build_from_configs(asts: Vec<ConfigAst>) -> Scenario {
    let network = roundtrip_and_lower(&asts);
    let t = &network.topology;

    let mut ghost = GhostAttr::new("FromE0");
    for e in t.edge_ids() {
        let edge = t.edge(e);
        if !t.node(edge.src).external {
            continue;
        }
        ghost.on_import(
            e,
            if t.node(edge.src).name == external_name(0) {
                GhostUpdate::SetTrue
            } else {
                GhostUpdate::SetFalse
            },
        );
    }

    let r1 = t.node_by_name("R1").unwrap();
    let e1 = t.node_by_name("E1").unwrap();
    let r1_e1 = t.edge_between(r1, e1).unwrap();
    let from_e0 = RoutePred::ghost("FromE0");
    let property =
        SafetyProperty::new(Location::Edge(r1_e1), from_e0.clone().not()).named("no-transit");
    let key = from_e0.clone().implies(RoutePred::has_community(tag()));
    let invariants =
        NetworkInvariants::with_default(key).with(Location::Edge(r1_e1), from_e0.not());

    Scenario {
        network,
        ghost,
        property,
        invariants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightyear::engine::Verifier;

    #[test]
    fn mesh_verifies_at_small_sizes() {
        for n in [2, 4, 6] {
            let s = build(n);
            let v =
                Verifier::new(&s.network.topology, &s.network.policy).with_ghost(s.ghost.clone());
            let report = v.verify_safety(&s.property, &s.invariants);
            assert!(
                report.all_passed(),
                "n={n}: {}",
                report.format_failures(&s.network.topology)
            );
            // Check count is linear in edges.
            assert!(report.num_checks() <= 2 * s.network.topology.num_edges() + 1);
        }
    }

    #[test]
    fn minesweeper_agrees_on_small_mesh() {
        let s = build(3);
        let t = &s.network.topology;
        let r1 = t.node_by_name("R1").unwrap();
        let e1 = t.node_by_name("E1").unwrap();
        let edge = t.edge_between(r1, e1).unwrap();
        let ms = minesweeper::Minesweeper::new(t, &s.network.policy).with_ghost(s.ghost.clone());
        let report = ms.verify(Location::Edge(edge), &RoutePred::ghost("FromE0").not());
        assert!(report.verified(), "{:?}", report.outcome);
    }
}
