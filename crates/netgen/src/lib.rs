//! Synthetic network generators for the Lightyear evaluation.
//!
//! Every generator builds router configurations as [`bgp_config::ast`]
//! values, prints them to IOS-style text and re-parses them, so the full
//! configuration pipeline (printer -> lexer -> parser -> lowering) is
//! exercised on every generated network.
//!
//! * [`figure1`] — the paper's running example (Figure 1): three routers,
//!   two ISPs, a customer, the community-based no-transit scheme, plus the
//!   ghost attribute / property / invariant definitions of Tables 2 & 3.
//! * [`fullmesh`] — the §6.2 scaling workload: `N` routers in an iBGP
//!   full mesh, one eBGP neighbor each, prefix + community filters, with
//!   the no-transit property inputs for both Lightyear and Minesweeper.
//! * [`wan`] — a synthetic cloud WAN in the image of §6.1: regions,
//!   Internet edge routers with many peers, data centers announcing
//!   reused prefixes, region communities, a metadata file, and the
//!   Table 4a/4b/4c property suites.
//! * [`rr`] — an iBGP route-reflector hierarchy: a reflector full mesh
//!   with per-reflector client routers, the sparse session graph real
//!   deployments migrate to.
//! * [`stub`] — a multi-homed stub AS with anycast ingress: provider
//!   preference via local-pref + provenance communities, no-transit in
//!   both directions.
//! * [`hubspoke`] — a hub-and-spoke enterprise WAN: a star of branch
//!   routers around one hub with the Internet uplink, site prefixes
//!   fenced off the uplink.
//! * [`zoo`] — the Internet-scale corpus: curated Topology Zoo backbone
//!   sizes (11 to 754 routers) synthesized deterministically with a
//!   route-reflector overlay, community fencing and peering hygiene
//!   policy; the workload behind `lightyear bench --zoo`.
//! * [`mutate`] — failure injection: seeded configuration bugs of the
//!   classes the paper found in production (missing community tag, ad-hoc
//!   AS-path policy on one peering, undocumented region community).
//! * [`edits`] — benign reconfiguration traffic for delta-verification
//!   workloads: cosmetic renames, parameter tweaks, peering churn, and a
//!   seeded random-edit generator over the whole menu.

pub mod edits;
pub mod figure1;
pub mod fullmesh;
pub mod hubspoke;
pub mod mutate;
pub mod rr;
pub mod stub;
pub mod wan;
pub mod zoo;

use bgp_config::ast::ConfigAst;
use bgp_config::{lower, parse_config, print_config, Network};

/// Print each AST, re-parse it, and lower the result — the standard path
/// every generator uses so the parser sees all generated text.
pub fn roundtrip_and_lower(asts: &[ConfigAst]) -> Network {
    let reparsed: Vec<ConfigAst> = asts
        .iter()
        .map(|a| {
            let text = print_config(a);
            parse_config(&text).unwrap_or_else(|e| {
                panic!(
                    "generated config for {} failed to reparse: {e}\n{text}",
                    a.hostname
                )
            })
        })
        .collect();
    lower(&reparsed).unwrap_or_else(|e| panic!("generated configs failed to lower: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_roundtrips() {
        let scen = figure1::build();
        assert_eq!(scen.network.topology.router_ids().count(), 3);
        assert_eq!(scen.network.topology.external_ids().count(), 3);
    }

    #[test]
    fn fullmesh_scales() {
        for n in [2, 5, 10] {
            let scen = fullmesh::build(n);
            let t = &scen.network.topology;
            assert_eq!(t.router_ids().count(), n);
            assert_eq!(t.external_ids().count(), n);
            // iBGP mesh: n*(n-1) directed internal edges + 2n external.
            assert_eq!(t.num_edges(), n * (n - 1) + 2 * n);
        }
    }

    #[test]
    fn wan_structure() {
        let params = wan::WanParams {
            regions: 3,
            routers_per_region: 3,
            edge_routers: 4,
            peers_per_edge: 2,
            ..wan::WanParams::default()
        };
        let scen = wan::build(&params);
        let t = &scen.network.topology;
        assert_eq!(t.router_ids().count(), 3 * 3 + 4);
        // One DC per region + peers.
        assert_eq!(t.external_ids().count(), 3 + 4 * 2);
        assert_eq!(scen.metadata.regions.len(), 3);
    }
}
