//! Configuration **edit** generators for delta-verification workloads.
//!
//! Where [`crate::mutate`] injects *bugs* (edits that violate a
//! property), this module generates the day-to-day reconfiguration
//! traffic a re-verify daemon sees: benign parameter tweaks, cosmetic
//! renames, peering churn. Each generator mutates a configuration set in
//! place and reports what it did as an [`AppliedEdit`], so tests can
//! hand the edited set plus the expected classification straight to
//! `delta::diff_configs` and `lightyear::ReverifyEngine`.
//!
//! [`random_edit`] drives the proptest suites: a seeded, deterministic
//! pick over the whole edit menu — semantic tweaks, cosmetic renames,
//! no-ops and property-violating mutations alike — so randomized
//! round-trips (`reverify == fresh run, byte-identical`) cover the full
//! delta classification table.

use crate::mutate;
use bgp_config::ast::{ConfigAst, SetAst};

/// Description of one applied edit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppliedEdit {
    /// The router whose configuration was altered.
    pub router: String,
    /// What was done.
    pub description: String,
    /// Whether the edit is semantically invisible (rename-class): the
    /// differ must classify it cosmetic and re-verification must produce
    /// an empty dirty set.
    pub cosmetic: bool,
}

fn applied(router: &str, description: impl Into<String>, cosmetic: bool) -> Option<AppliedEdit> {
    Some(AppliedEdit {
        router: router.to_string(),
        description: description.into(),
        cosmetic,
    })
}

/// Rename a route map and every reference to it on one router — the
/// canonical cosmetic edit. Returns `None` when the router or map is
/// missing, or the new name is already taken.
pub fn rename_route_map(
    configs: &mut [ConfigAst],
    router: &str,
    map: &str,
    new_name: &str,
) -> Option<AppliedEdit> {
    let cfg = configs.iter_mut().find(|c| c.hostname == router)?;
    if cfg.route_maps.contains_key(new_name) {
        return None;
    }
    let entries = cfg.route_maps.remove(map)?;
    cfg.route_maps.insert(new_name.to_string(), entries);
    if let Some(bgp) = &mut cfg.router_bgp {
        for nbr in bgp.neighbors.values_mut() {
            if nbr.route_map_in.as_deref() == Some(map) {
                nbr.route_map_in = Some(new_name.to_string());
            }
            if nbr.route_map_out.as_deref() == Some(map) {
                nbr.route_map_out = Some(new_name.to_string());
            }
        }
    }
    applied(
        router,
        format!("renamed route-map {map} to {new_name}"),
        true,
    )
}

/// Add an unused prefix list — semantically invisible.
pub fn add_unused_prefix_list(
    configs: &mut [ConfigAst],
    router: &str,
    name: &str,
) -> Option<AppliedEdit> {
    let cfg = configs.iter_mut().find(|c| c.hostname == router)?;
    if cfg.prefix_lists.contains_key(name) {
        return None;
    }
    cfg.prefix_lists.insert(name.to_string(), Vec::new());
    applied(router, format!("added unused prefix-list {name}"), true)
}

/// Set (or update) a `set local-preference` action on the last permit
/// entry of a route map: the canonical benign semantic tweak — it
/// dirties the map's checks without breaking the WAN property suites
/// (which pin local-pref only through `lp-normalized`).
pub fn set_local_pref(
    configs: &mut [ConfigAst],
    router: &str,
    map: &str,
    lp: u32,
) -> Option<AppliedEdit> {
    let cfg = configs.iter_mut().find(|c| c.hostname == router)?;
    let entries = cfg.route_maps.get_mut(map)?;
    let entry = entries.iter_mut().rev().find(|e| e.permit)?;
    entry.sets.retain(|s| !matches!(s, SetAst::LocalPref(_)));
    entry.sets.push(SetAst::LocalPref(lp));
    applied(router, format!("set local-preference {lp} in {map}"), false)
}

/// Remove one peering (the neighbor block naming `peer`) from a router.
pub fn remove_peering(configs: &mut [ConfigAst], router: &str, peer: &str) -> Option<AppliedEdit> {
    let cfg = configs.iter_mut().find(|c| c.hostname == router)?;
    let bgp = cfg.router_bgp.as_mut()?;
    let addr = bgp
        .neighbors
        .iter()
        .find(|(_, n)| n.description.as_deref() == Some(peer))
        .map(|(a, _)| a.clone())?;
    bgp.neighbors.remove(&addr);
    applied(router, format!("removed peering to {peer}"), false)
}

/// The seeded edit menu: deterministically picks a router and an edit
/// kind from `seed`. Cosmetic and semantic edits (including
/// property-violating mutations from [`crate::mutate`]) are all on the
/// menu; returns `None` only when the chosen edit does not apply to the
/// chosen router (callers typically retry with `seed + 1`).
pub fn random_edit(configs: &mut [ConfigAst], seed: u64) -> Option<AppliedEdit> {
    if configs.is_empty() {
        return None;
    }
    // Routers with an attached route map are the interesting targets.
    let candidates: Vec<usize> = configs
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.route_maps.is_empty())
        .map(|(i, _)| i)
        .collect();
    let idx = *candidates.get(seed as usize % candidates.len().max(1))?;
    let router = configs[idx].hostname.clone();
    // First referenced (attached) map, for edits that need one.
    let attached: Option<String> = configs[idx].router_bgp.as_ref().and_then(|b| {
        let mut names: Vec<&String> = b
            .neighbors
            .values()
            .flat_map(|n| n.route_map_in.iter().chain(n.route_map_out.iter()))
            .collect();
        names.sort();
        names.first().map(|s| s.to_string())
    });
    match (seed / 7) % 7 {
        0 => rename_route_map(
            configs,
            &router,
            &attached?,
            &format!("RENAMED-{}", seed % 1000),
        ),
        1 => add_unused_prefix_list(configs, &router, &format!("UNUSED-{}", seed % 1000)),
        2 => set_local_pref(configs, &router, &attached?, 90 + (seed % 50) as u32),
        3 => {
            let peer = configs[idx].router_bgp.as_ref().and_then(|b| {
                let mut peers: Vec<&str> = b
                    .neighbors
                    .values()
                    .filter_map(|n| n.description.as_deref())
                    // Only external-looking peers, to keep the session
                    // graph symmetric for internal routers.
                    .filter(|p| is_external_peer(p))
                    .collect();
                peers.sort();
                peers
                    .get(seed as usize % peers.len().max(1))
                    .map(|s| s.to_string())
            })?;
            remove_peering(configs, &router, &peer)
        }
        4 => mutate::drop_community_sets(configs, &router, &attached?).map(|b| AppliedEdit {
            router: b.router,
            description: b.description,
            cosmetic: false,
        }),
        5 => mutate::drop_aspath_filters(configs, &router, &attached?).map(|b| AppliedEdit {
            router: b.router,
            description: b.description,
            cosmetic: false,
        }),
        _ => drop_first_prefix_deny(configs, &router, &attached?),
    }
}

/// Peer descriptions the edit menu may treat as external sessions. The
/// prefixes cover every topology-zoo family's external naming scheme
/// (`PEER`/`DC` in the WAN, `EXT` in the reflector hierarchy, `PROV` in
/// the multi-homed stub, `SITE`/`INET` in the hub-and-spoke star).
fn is_external_peer(desc: &str) -> bool {
    ["PEER", "DC", "EXT", "PROV", "SITE", "INET"]
        .iter()
        .any(|p| desc.starts_with(p))
}

/// Remove the first prefix-list deny entry of a route map (the
/// [`mutate::drop_prefix_deny`] bug class, menu-ready: the list is
/// discovered rather than named). Returns `None` when the map has no
/// prefix-list deny.
pub fn drop_first_prefix_deny(
    configs: &mut [ConfigAst],
    router: &str,
    map: &str,
) -> Option<AppliedEdit> {
    let cfg = configs.iter().find(|c| c.hostname == router)?;
    let entries = cfg.route_maps.get(map)?;
    let list = entries
        .iter()
        .filter(|e| !e.permit)
        .flat_map(|e| &e.matches)
        .find_map(|m| match m {
            bgp_config::ast::MatchAst::PrefixList(names) => names.first().cloned(),
            _ => None,
        })?;
    mutate::drop_prefix_deny(configs, router, map, &list).map(|b| AppliedEdit {
        router: b.router,
        description: b.description,
        cosmetic: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wan::{self, WanParams};

    fn params() -> WanParams {
        WanParams {
            regions: 2,
            routers_per_region: 2,
            edge_routers: 2,
            peers_per_edge: 2,
            ..WanParams::default()
        }
    }

    #[test]
    fn rename_updates_references() {
        let mut configs = wan::configs(&params());
        let e = rename_route_map(&mut configs, "EDGE0", "FROM-PEER0", "FROM-PEER0-V2").unwrap();
        assert!(e.cosmetic);
        let cfg = configs.iter().find(|c| c.hostname == "EDGE0").unwrap();
        assert!(!cfg.route_maps.contains_key("FROM-PEER0"));
        assert!(cfg.route_maps.contains_key("FROM-PEER0-V2"));
        let bgp = cfg.router_bgp.as_ref().unwrap();
        assert!(bgp
            .neighbors
            .values()
            .any(|n| n.route_map_in.as_deref() == Some("FROM-PEER0-V2")));
        // The network still lowers (no dangling references).
        let _ = crate::roundtrip_and_lower(&configs);
    }

    #[test]
    fn local_pref_tweak_is_semantic_and_lowers() {
        let mut configs = wan::configs(&params());
        let e = set_local_pref(&mut configs, "EDGE1", "FROM-PEER1", 120).unwrap();
        assert!(!e.cosmetic);
        let _ = crate::roundtrip_and_lower(&configs);
    }

    #[test]
    fn remove_peering_drops_the_neighbor() {
        let mut configs = wan::configs(&params());
        let e = remove_peering(&mut configs, "EDGE0", "PEER0-0").unwrap();
        assert!(!e.cosmetic);
        let net = crate::roundtrip_and_lower(&configs);
        assert!(net.topology.node_by_name("PEER0-0").is_none());
    }

    #[test]
    fn random_edits_are_deterministic_and_mostly_apply() {
        let mut applied = 0;
        for seed in 0..40u64 {
            let mut a = wan::configs(&params());
            let mut b = wan::configs(&params());
            let ea = random_edit(&mut a, seed);
            let eb = random_edit(&mut b, seed);
            assert_eq!(ea, eb, "seed {seed} must be deterministic");
            if ea.is_some() {
                assert_eq!(a, b);
                applied += 1;
            }
        }
        assert!(applied > 20, "most seeds should produce an edit: {applied}");
    }
}
