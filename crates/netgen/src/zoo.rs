//! An Internet-scale topology corpus in the image of the Topology Zoo
//! (the dataset behind the paper's scalability question: real ISP
//! backbones from ~10 to 750+ routers, sparse and path-heavy, nothing
//! like a full mesh).
//!
//! The corpus is **vendored as data, generated as code**: each
//! [`ZooEntry`] pins the router/link counts of a real Topology Zoo
//! backbone, and [`build`] deterministically synthesizes a graph with
//! that size and density (random spanning tree with a recency bias —
//! ISP backbones are chains of rings, not stars — plus chords up to the
//! link budget) together with a full policy family:
//!
//! * **iBGP sessions** along every physical link (AS 65000), plus a
//!   **route-reflector overlay**: the top-`K`-degree routers form a
//!   reflector full mesh, and every router belongs to the cluster of
//!   its nearest reflector (multi-source BFS).
//! * **Community fencing**: cluster `k` tags its reused-prefix routes
//!   with `100:(10+k)` (via a `SITE{k}` external at the reflector) and
//!   every router's internal imports deny routes carrying *another*
//!   cluster's community, so reused prefixes stay cluster-local.
//! * **eBGP peering**: `PEER{p}` externals at the lowest-degree
//!   routers with the paper's peer hygiene imports (bogon / reused /
//!   infra / default / too-specific / private-ASN / self-ASN denies,
//!   then tag `200:1`, local-pref 100, MED 0) and reuse-fenced exports.
//!
//! Every entry therefore yields parseable configurations (the standard
//! print → parse → lower round trip) and two meaningful property
//! suites — [`ZooScenario::peering_suite`] and
//! [`ZooScenario::fencing_suite`] — sized to the topology.

use crate::roundtrip_and_lower;
use crate::wan::{
    bogons, infra_prefix, peer_comm, private_asn_regex, region_comm, reused_prefix, self_asn_regex,
};
use bgp_config::ast::*;
use bgp_config::Network;
use bgp_model::prefix::PrefixRange;
use bgp_model::topology::NodeId;
use lightyear::ghost::{GhostAttr, GhostUpdate};
use lightyear::invariants::{Location, NetworkInvariants};
use lightyear::pred::{Cmp, RoutePred};
use lightyear::safety::SafetyProperty;
use std::collections::BTreeSet;

/// One corpus entry: the name and size of a real Topology Zoo backbone.
#[derive(Clone, Copy, Debug)]
pub struct ZooEntry {
    /// Topology Zoo name.
    pub name: &'static str,
    /// Router count of the real topology.
    pub routers: usize,
    /// Physical link count of the real topology.
    pub links: usize,
}

/// The curated corpus, ascending by router count. Sizes are the real
/// Topology Zoo figures; `Kdl` is the 750+-router stress entry the
/// scaling gate runs against.
pub const CORPUS: &[ZooEntry] = &[
    ZooEntry {
        name: "Abilene",
        routers: 11,
        links: 14,
    },
    ZooEntry {
        name: "Ans",
        routers: 18,
        links: 25,
    },
    ZooEntry {
        name: "Agis",
        routers: 25,
        links: 30,
    },
    ZooEntry {
        name: "Bellcanada",
        routers: 48,
        links: 64,
    },
    ZooEntry {
        name: "Uninett",
        routers: 74,
        links: 101,
    },
    ZooEntry {
        name: "Deltacom",
        routers: 113,
        links: 161,
    },
    ZooEntry {
        name: "Ion",
        routers: 125,
        links: 146,
    },
    ZooEntry {
        name: "TataNld",
        routers: 145,
        links: 186,
    },
    ZooEntry {
        name: "GtsCe",
        routers: 149,
        links: 193,
    },
    ZooEntry {
        name: "UsCarrier",
        routers: 158,
        links: 189,
    },
    ZooEntry {
        name: "Cogentco",
        routers: 197,
        links: 243,
    },
    ZooEntry {
        name: "Kdl",
        routers: 754,
        links: 895,
    },
];

/// Generator parameters for one corpus topology.
#[derive(Clone, Debug)]
pub struct ZooParams {
    /// Topology name (the hostname prefix).
    pub name: String,
    /// Router count.
    pub routers: usize,
    /// Physical link budget (clamped to at least a spanning tree).
    pub links: usize,
    /// Deterministic seed: the same `ZooParams` value always builds
    /// byte-identical configurations.
    pub seed: u64,
    /// Number of eBGP peer externals (attached to the lowest-degree
    /// routers, one each).
    pub max_peers: usize,
    /// How many of the canonical bogon prefixes the peer imports deny.
    /// The full list by default; proptests shrink it ("reduced prefix
    /// counts") to keep solver formulas small.
    pub bogon_count: usize,
}

impl ZooParams {
    /// Parameters reproducing `entry` at full size. The seed is derived
    /// from the entry name so each family gets a distinct (but
    /// reproducible) wiring.
    pub fn for_entry(entry: &ZooEntry) -> Self {
        let seed = entry.name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100000001b3)
        });
        ZooParams {
            name: entry.name.to_string(),
            routers: entry.routers,
            links: entry.links,
            seed,
            max_peers: (entry.routers / 6).clamp(2, 64),
            bogon_count: bogons().len(),
        }
    }

    /// A proportionally scaled-down variant of `entry` with at most
    /// `max_routers` routers — same density, same policy family, a
    /// size debug-mode tests can verify in milliseconds.
    pub fn scaled(entry: &ZooEntry, max_routers: usize) -> Self {
        let mut p = Self::for_entry(entry);
        if entry.routers > max_routers {
            let n = max_routers.max(2);
            p.links = (entry.links * n / entry.routers).max(n - 1);
            p.routers = n;
            p.max_peers = (n / 6).clamp(2, 64);
        }
        p
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style peer-count override.
    pub fn with_max_peers(mut self, n: usize) -> Self {
        self.max_peers = n;
        self
    }

    /// Builder-style bogon-list truncation.
    pub fn with_bogon_count(mut self, n: usize) -> Self {
        self.bogon_count = n.min(bogons().len());
        self
    }

    /// Number of reflector clusters for this size.
    pub fn num_clusters(&self) -> usize {
        (self.routers / 24).clamp(2, 12).min(self.routers)
    }
}

/// splitmix64 — the corpus's only randomness, fully determined by the
/// params seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The synthesized session graph: physical links + reflector overlay,
/// reflector set and per-router cluster assignment.
struct Graph {
    /// Session adjacency (undirected, includes the reflector mesh).
    adj: Vec<BTreeSet<usize>>,
    /// Reflector router indices, ascending.
    reflectors: Vec<usize>,
    /// Cluster of every router.
    cluster: Vec<usize>,
}

fn synth_graph(params: &ZooParams) -> Graph {
    let n = params.routers;
    assert!(n >= 2, "a zoo topology needs at least two routers");
    let mut rng = params.seed ^ (n as u64) << 32 ^ params.links as u64;
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    let add = |adj: &mut Vec<BTreeSet<usize>>, u: usize, v: usize| -> bool {
        u != v && adj[u].insert(v) && adj[v].insert(u)
    };
    // Spanning tree with a recency bias: node i hangs off one of the
    // ~8 most recent nodes, producing the chain-of-rings shape of real
    // backbones instead of a star.
    for i in 1..n {
        let window = i.min(8);
        let back = (splitmix(&mut rng) % window as u64) as usize;
        add(&mut adj, i, i - 1 - back);
    }
    let mut links = n - 1;
    let target = params.links.max(n - 1).min(n * (n - 1) / 2);
    // Chords close the rings. Bounded attempts keep generation total
    // even for adversarial (over-dense) parameter values.
    let mut attempts = 0usize;
    while links < target && attempts < 64 * target {
        attempts += 1;
        let u = (splitmix(&mut rng) % n as u64) as usize;
        // Mostly-local chords (rings), occasionally long-haul.
        let v = if splitmix(&mut rng).is_multiple_of(4) {
            (splitmix(&mut rng) % n as u64) as usize
        } else {
            let span = 2 + (splitmix(&mut rng) % 12) as usize;
            (u + span) % n
        };
        if add(&mut adj, u, v) {
            links += 1;
        }
    }
    // Reflectors: the top-K-degree routers (ties to the lower index).
    let k = params.num_clusters();
    let mut by_degree: Vec<usize> = (0..n).collect();
    by_degree.sort_by_key(|&i| (std::cmp::Reverse(adj[i].len()), i));
    let mut reflectors: Vec<usize> = by_degree[..k].to_vec();
    reflectors.sort_unstable();
    // Clusters: nearest reflector by multi-source BFS (ties to the
    // lower cluster index via queue order).
    let mut cluster = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for (c, &r) in reflectors.iter().enumerate() {
        cluster[r] = c;
        queue.push_back(r);
    }
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if cluster[v] == usize::MAX {
                cluster[v] = cluster[u];
                queue.push_back(v);
            }
        }
    }
    // Reflector overlay mesh on top of the physical links.
    for (a, &u) in reflectors.iter().enumerate() {
        for &v in &reflectors[a + 1..] {
            add(&mut adj, u, v);
        }
    }
    Graph {
        adj,
        reflectors,
        cluster,
    }
}

fn router_name(params: &ZooParams, i: usize) -> String {
    format!("{}{}", params.name, i)
}

fn site_name(k: usize) -> String {
    format!("SITE{k}")
}

fn peer_ext_name(p: usize) -> String {
    format!("PEER{p}")
}

fn nbr(
    addr: String,
    asn: u32,
    desc: String,
    rm_in: Option<String>,
    rm_out: Option<String>,
) -> NeighborAst {
    NeighborAst {
        addr,
        remote_as: Some(asn),
        description: Some(desc),
        route_map_in: rm_in,
        route_map_out: rm_out,
    }
}

fn deny_entry(seq: u32, m: MatchAst) -> RouteMapEntryAst {
    RouteMapEntryAst {
        seq,
        permit: false,
        matches: vec![m],
        sets: vec![],
        continue_to: None,
    }
}

fn permit_all(seq: u32) -> RouteMapEntryAst {
    RouteMapEntryAst {
        seq,
        permit: true,
        matches: vec![],
        sets: vec![],
        continue_to: None,
    }
}

fn orlonger_list(p: bgp_model::prefix::Ipv4Prefix) -> Vec<PrefixListEntry> {
    vec![PrefixListEntry {
        seq: 5,
        permit: true,
        prefix: p,
        ge: None,
        le: Some(32),
    }]
}

/// The `max_peers` lowest-degree non-reflector routers (the corpus's
/// "edge" routers), one eBGP peer each.
fn peer_hosts(params: &ZooParams, g: &Graph) -> Vec<usize> {
    let rr: BTreeSet<usize> = g.reflectors.iter().copied().collect();
    let mut hosts: Vec<usize> = (0..params.routers).filter(|i| !rr.contains(i)).collect();
    hosts.sort_by_key(|&i| (g.adj[i].len(), i));
    hosts.truncate(params.max_peers);
    hosts.sort_unstable();
    hosts
}

fn config_router(
    params: &ZooParams,
    g: &Graph,
    i: usize,
    peer_host_rank: Option<usize>,
) -> ConfigAst {
    let k = g.cluster[i];
    let num_clusters = params.num_clusters();
    let mut ast = ConfigAst {
        hostname: router_name(params, i),
        ..Default::default()
    };
    let mut bgp = RouterBgp {
        asn: 65000,
        ..Default::default()
    };

    // Internal sessions (physical + overlay), fenced against other
    // clusters' communities when there is more than one cluster.
    let fence = (num_clusters > 1).then(|| "FENCE".to_string());
    if fence.is_some() {
        ast.community_lists.insert(
            "OTHER-CLUSTERS".into(),
            (0..num_clusters)
                .filter(|&k2| k2 != k)
                .map(|k2| CommunityListEntry {
                    permit: true,
                    communities: vec![region_comm(k2)],
                })
                .collect(),
        );
        ast.route_maps.insert(
            "FENCE".into(),
            vec![
                deny_entry(
                    10,
                    MatchAst::Community {
                        lists: vec!["OTHER-CLUSTERS".into()],
                        exact: false,
                    },
                ),
                permit_all(20),
            ],
        );
    }
    for &j in &g.adj[i] {
        let addr = format!("10.{}.{}.{}", j / 250, j % 250, i % 250);
        bgp.neighbors.insert(
            addr.clone(),
            nbr(addr, 65000, router_name(params, j), fence.clone(), None),
        );
    }

    // Reflectors host their cluster's SITE external, the source of
    // reused-prefix routes, tagged with the cluster community.
    if let Some(c) = g.reflectors.iter().position(|&r| r == i) {
        ast.prefix_lists
            .insert("REUSED".into(), orlonger_list(reused_prefix()));
        ast.route_maps.insert(
            "FROM-SITE".into(),
            vec![
                RouteMapEntryAst {
                    seq: 10,
                    permit: true,
                    matches: vec![MatchAst::PrefixList(vec!["REUSED".into()])],
                    sets: vec![SetAst::Community {
                        communities: vec![region_comm(c)],
                        additive: false,
                        none: false,
                    }],
                    continue_to: None,
                },
                RouteMapEntryAst {
                    seq: 20,
                    permit: true,
                    matches: vec![],
                    sets: vec![SetAst::Community {
                        communities: vec![],
                        additive: false,
                        none: true,
                    }],
                    continue_to: None,
                },
            ],
        );
        let addr = format!("10.240.{}.1", c % 250);
        bgp.neighbors.insert(
            addr.clone(),
            nbr(
                addr,
                64600 + c as u32,
                site_name(c),
                Some("FROM-SITE".into()),
                None,
            ),
        );
    }

    // Peer hosts get one eBGP peer with the paper's hygiene policy.
    if let Some(p) = peer_host_rank {
        ast.prefix_lists.insert(
            "BOGONS".into(),
            bogons()
                .into_iter()
                .take(params.bogon_count.max(1))
                .enumerate()
                .map(|(b, pfx)| PrefixListEntry {
                    seq: (b as u32 + 1) * 5,
                    permit: true,
                    prefix: pfx,
                    ge: None,
                    le: Some(32),
                })
                .collect(),
        );
        ast.prefix_lists
            .entry("REUSED".into())
            .or_insert_with(|| orlonger_list(reused_prefix()));
        ast.prefix_lists
            .insert("INFRA".into(), orlonger_list(infra_prefix()));
        ast.prefix_lists.insert(
            "DEFAULT".into(),
            vec![PrefixListEntry {
                seq: 5,
                permit: true,
                prefix: "0.0.0.0/0".parse().unwrap(),
                ge: None,
                le: None,
            }],
        );
        ast.prefix_lists.insert(
            "TOO-SPECIFIC".into(),
            vec![PrefixListEntry {
                seq: 5,
                permit: true,
                prefix: "0.0.0.0/0".parse().unwrap(),
                ge: Some(25),
                le: Some(32),
            }],
        );
        ast.aspath_acls.insert(
            "PRIVATE-ASN".into(),
            vec![AsPathAclEntry {
                permit: true,
                regex: private_asn_regex().into(),
            }],
        );
        ast.aspath_acls.insert(
            "SELF-ASN".into(),
            vec![AsPathAclEntry {
                permit: true,
                regex: self_asn_regex().into(),
            }],
        );
        ast.route_maps.insert(
            "FROM-PEER".into(),
            vec![
                deny_entry(5, MatchAst::PrefixList(vec!["BOGONS".into()])),
                deny_entry(6, MatchAst::PrefixList(vec!["REUSED".into()])),
                deny_entry(7, MatchAst::PrefixList(vec!["INFRA".into()])),
                deny_entry(8, MatchAst::PrefixList(vec!["DEFAULT".into()])),
                deny_entry(9, MatchAst::PrefixList(vec!["TOO-SPECIFIC".into()])),
                deny_entry(11, MatchAst::AsPath(vec!["PRIVATE-ASN".into()])),
                deny_entry(12, MatchAst::AsPath(vec!["SELF-ASN".into()])),
                RouteMapEntryAst {
                    seq: 20,
                    permit: true,
                    matches: vec![],
                    sets: vec![
                        SetAst::Community {
                            communities: vec![peer_comm()],
                            additive: false,
                            none: false,
                        },
                        SetAst::LocalPref(100),
                        SetAst::Med(0),
                    ],
                    continue_to: None,
                },
            ],
        );
        ast.route_maps.insert(
            "TO-PEER".into(),
            vec![
                deny_entry(10, MatchAst::PrefixList(vec!["REUSED".into()])),
                deny_entry(15, MatchAst::PrefixList(vec!["INFRA".into()])),
                permit_all(20),
            ],
        );
        let addr = format!("10.241.{}.{}", p / 250, p % 250);
        bgp.neighbors.insert(
            addr.clone(),
            nbr(
                addr,
                3000 + (p as u32) * 7 + (params.seed % 97) as u32,
                peer_ext_name(p),
                Some("FROM-PEER".into()),
                Some("TO-PEER".into()),
            ),
        );
    }

    ast.router_bgp = Some(bgp);
    ast
}

/// The raw configuration ASTs for one corpus topology.
pub fn configs(params: &ZooParams) -> Vec<ConfigAst> {
    let g = synth_graph(params);
    let hosts = peer_hosts(params, &g);
    (0..params.routers)
        .map(|i| config_router(params, &g, i, hosts.iter().position(|&h| h == i)))
        .collect()
}

/// A built corpus scenario.
pub struct ZooScenario {
    /// Generator parameters.
    pub params: ZooParams,
    /// The lowered network.
    pub network: Network,
    /// Reflector node ids, ascending by router index.
    pub reflectors: Vec<NodeId>,
    /// Cluster of router index `i` (configuration input order).
    pub clusters: Vec<usize>,
}

/// Build the scenario: synthesize → print → parse → lower.
pub fn build(params: &ZooParams) -> ZooScenario {
    let g = synth_graph(params);
    let hosts = peer_hosts(params, &g);
    let asts: Vec<ConfigAst> = (0..params.routers)
        .map(|i| config_router(params, &g, i, hosts.iter().position(|&h| h == i)))
        .collect();
    let network = roundtrip_and_lower(&asts);
    let reflectors = g
        .reflectors
        .iter()
        .map(|&r| network.config_nodes[r])
        .collect();
    ZooScenario {
        params: params.clone(),
        network,
        reflectors,
        clusters: g.cluster,
    }
}

impl ZooScenario {
    /// The cluster of a router node (`None` for externals).
    pub fn cluster_of(&self, n: NodeId) -> Option<usize> {
        self.network
            .config_nodes
            .iter()
            .position(|&m| m == n)
            .map(|i| self.clusters[i])
    }

    /// The `FromPeer` ghost: true on peer imports, false on site
    /// imports.
    pub fn from_peer_ghost(&self) -> GhostAttr {
        let t = &self.network.topology;
        let mut g = GhostAttr::new("FromPeer");
        for e in t.edge_ids() {
            let edge = t.edge(e);
            if !t.node(edge.src).external {
                continue;
            }
            let update = if t.node(edge.src).name.starts_with("PEER") {
                GhostUpdate::SetTrue
            } else {
                GhostUpdate::SetFalse
            };
            g.on_import(e, update);
        }
        g
    }

    /// The peering hygiene suite: at every router, peer-learned routes
    /// are tagged `200:1`, never a reused prefix, and local-pref
    /// normalized. One property per router over a uniform invariant.
    pub fn peering_suite(&self) -> (Vec<SafetyProperty>, NetworkInvariants) {
        let t = &self.network.topology;
        let q = RoutePred::has_community(peer_comm())
            .and(RoutePred::prefix_in(vec![PrefixRange::orlonger(reused_prefix())]).not())
            .and(RoutePred::local_pref(Cmp::Eq, 100));
        let pred = RoutePred::ghost("FromPeer").implies(q);
        let props = t
            .router_ids()
            .map(|r| SafetyProperty::new(Location::Node(r), pred.clone()).named("zoo-peering"))
            .collect();
        let inv = NetworkInvariants::with_default(pred);
        (props, inv)
    }

    /// The community fencing suite: at every router, reused-prefix
    /// routes carry exactly their own cluster's community (so reuse
    /// never crosses a fence). Properties at the reflectors, invariants
    /// from the per-node cluster assignment.
    pub fn fencing_suite(&self) -> (Vec<SafetyProperty>, NetworkInvariants) {
        let t = &self.network.topology;
        let num_clusters = self.params.num_clusters();
        let reused = RoutePred::prefix_in(vec![PrefixRange::orlonger(reused_prefix())]);
        let fenced = |k: usize| {
            let mut own = RoutePred::has_community(region_comm(k));
            for k2 in 0..num_clusters {
                if k2 != k {
                    own = own.and(RoutePred::has_community(region_comm(k2)).not());
                }
            }
            reused.clone().implies(own)
        };
        let inv = NetworkInvariants::from_node_fn(t, |n| {
            // `from_node_fn` only consults configured routers, which
            // all carry a cluster assignment.
            fenced(self.cluster_of(n).expect("router has a cluster"))
        });
        let props = self
            .reflectors
            .iter()
            .enumerate()
            .map(|(k, &r)| {
                SafetyProperty::new(
                    Location::Node(r),
                    reused
                        .clone()
                        .implies(RoutePred::has_community(region_comm(k))),
                )
                .named(format!("zoo-fencing-cluster{k}"))
            })
            .collect();
        (props, inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightyear::engine::Verifier;

    #[test]
    fn corpus_is_curated_and_sorted() {
        assert!(CORPUS.len() >= 10);
        let mut names = BTreeSet::new();
        for w in CORPUS.windows(2) {
            assert!(w[0].routers < w[1].routers, "corpus must ascend by size");
        }
        for e in CORPUS {
            assert!(names.insert(e.name), "duplicate corpus name {}", e.name);
            assert!(e.links >= e.routers - 1, "{} under-linked", e.name);
        }
        assert!(
            CORPUS.last().unwrap().routers > 500,
            "the corpus must include a 500+ router stress entry"
        );
    }

    #[test]
    fn smallest_entry_builds_and_both_suites_verify() {
        let s = build(&ZooParams::for_entry(&CORPUS[0]));
        let t = &s.network.topology;
        assert_eq!(t.router_ids().count(), CORPUS[0].routers);
        assert!(t.external_ids().count() >= 3); // sites + peers

        let v = Verifier::new(t, &s.network.policy).with_ghost(s.from_peer_ghost());
        let (props, inv) = s.peering_suite();
        let report = v.verify_safety_multi(&props, &inv);
        assert!(report.all_passed(), "{}", report.format_failures(t));

        let v = Verifier::new(t, &s.network.policy);
        let (props, inv) = s.fencing_suite();
        assert!(!props.is_empty());
        let report = v.verify_safety_multi(&props, &inv);
        assert!(report.all_passed(), "{}", report.format_failures(t));
    }

    #[test]
    fn scaled_stress_entry_verifies() {
        // Kdl scaled to test size: same policy family, same density.
        let entry = CORPUS.last().unwrap();
        let p = ZooParams::scaled(entry, 24);
        assert_eq!(p.routers, 24);
        let s = build(&p);
        let v =
            Verifier::new(&s.network.topology, &s.network.policy).with_ghost(s.from_peer_ghost());
        let (props, inv) = s.peering_suite();
        let report = v.verify_safety_multi(&props, &inv);
        assert!(
            report.all_passed(),
            "{}",
            report.format_failures(&s.network.topology)
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let p = ZooParams::scaled(&CORPUS[3], 30);
        let text = |p: &ZooParams| {
            configs(p)
                .iter()
                .map(bgp_config::print_config)
                .collect::<Vec<_>>()
        };
        assert_eq!(text(&p), text(&p));
        // A different seed rewires the graph.
        assert_ne!(text(&p), text(&p.clone().with_seed(p.seed + 1)));
    }

    #[test]
    fn clusters_cover_every_router_and_reflectors_are_distinct() {
        let s = build(&ZooParams::scaled(&CORPUS[5], 60));
        let k = s.params.num_clusters();
        assert_eq!(s.reflectors.len(), k);
        let distinct: BTreeSet<_> = s.reflectors.iter().collect();
        assert_eq!(distinct.len(), k);
        for (i, &c) in s.clusters.iter().enumerate() {
            assert!(c < k, "router {i} unassigned");
        }
    }
}
