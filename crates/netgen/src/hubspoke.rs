//! A **hub-and-spoke enterprise WAN**: one hub router with the Internet
//! uplink, `spokes` branch routers that each peer *only* with the hub
//! (a star, not a mesh), and one branch-site external per spoke.
//!
//! The classic enterprise discipline:
//!
//! * spoke imports tag site routes `400:1` (replace-all, so a site
//!   cannot forge Internet provenance);
//! * the hub import tags Internet routes `400:2` the same way;
//! * the hub's export to the uplink denies site-tagged routes — branch
//!   prefixes must never leak to the Internet.
//!
//! Properties: **no-site-leak** at the hub's uplink export, and
//! **inet-tagged** (Internet routes carry `400:2`) at every router.

use crate::roundtrip_and_lower;
use bgp_config::ast::*;
use bgp_config::Network;
use bgp_model::Community;
use lightyear::ghost::{GhostAttr, GhostUpdate};
use lightyear::invariants::{Location, NetworkInvariants};
use lightyear::pred::RoutePred;
use lightyear::safety::SafetyProperty;

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct HubParams {
    /// Branch (spoke) routers (>= 1).
    pub spokes: usize,
    /// Deterministic variation seed (external AS numbers only).
    pub seed: u64,
}

impl Default for HubParams {
    fn default() -> Self {
        HubParams { spokes: 3, seed: 0 }
    }
}

impl HubParams {
    fn asn_jitter(&self) -> u32 {
        ((self.seed % 79) * 11) as u32
    }
}

/// The community tagging branch-site routes.
pub fn site_comm() -> Community {
    Community::new(400, 1)
}

/// The community tagging Internet routes.
pub fn inet_comm() -> Community {
    Community::new(400, 2)
}

fn spoke_name(i: usize) -> String {
    format!("SP{i}")
}

fn site_name(i: usize) -> String {
    format!("SITE{i}")
}

/// The hub router's name.
pub const HUB: &str = "HUB";

/// The Internet uplink external's name.
pub const INET: &str = "INET";

/// A generated hub-and-spoke scenario with its verification inputs.
pub struct Scenario {
    /// Generator parameters.
    pub params: HubParams,
    /// The lowered network.
    pub network: Network,
    /// `FromSite`: true on every branch-site import.
    pub site_ghost: GhostAttr,
    /// `FromInet`: true on the uplink import only.
    pub inet_ghost: GhostAttr,
    /// No-site-leak + inet-tagged properties.
    pub properties: Vec<SafetyProperty>,
    /// The shared invariants.
    pub invariants: NetworkInvariants,
}

fn tag_all_map(c: Community) -> Vec<RouteMapEntryAst> {
    vec![RouteMapEntryAst {
        seq: 10,
        permit: true,
        matches: vec![],
        sets: vec![SetAst::Community {
            communities: vec![c],
            additive: false,
            none: false,
        }],
        continue_to: None,
    }]
}

fn config_hub(params: &HubParams) -> ConfigAst {
    let mut ast = ConfigAst {
        hostname: HUB.into(),
        ..Default::default()
    };
    ast.route_maps
        .insert("FROM-INET".into(), tag_all_map(inet_comm()));
    ast.community_lists.insert(
        "SITES".into(),
        vec![CommunityListEntry {
            permit: true,
            communities: vec![site_comm()],
        }],
    );
    ast.route_maps.insert(
        "TO-INET".into(),
        vec![
            RouteMapEntryAst {
                seq: 10,
                permit: false,
                matches: vec![MatchAst::Community {
                    lists: vec!["SITES".into()],
                    exact: false,
                }],
                sets: vec![],
                continue_to: None,
            },
            RouteMapEntryAst {
                seq: 20,
                permit: true,
                matches: vec![],
                sets: vec![],
                continue_to: None,
            },
        ],
    );
    let mut bgp = RouterBgp {
        asn: 65020,
        ..Default::default()
    };
    for i in 0..params.spokes {
        let addr = format!("10.60.{i}.255");
        bgp.neighbors.insert(
            addr.clone(),
            NeighborAst {
                addr,
                remote_as: Some(65020),
                description: Some(spoke_name(i)),
                route_map_in: None,
                route_map_out: None,
            },
        );
    }
    let addr = "10.61.0.1".to_string();
    bgp.neighbors.insert(
        addr.clone(),
        NeighborAst {
            addr,
            remote_as: Some(3000 + params.asn_jitter()),
            description: Some(INET.into()),
            route_map_in: Some("FROM-INET".into()),
            route_map_out: Some("TO-INET".into()),
        },
    );
    ast.router_bgp = Some(bgp);
    ast
}

fn config_spoke(params: &HubParams, i: usize) -> ConfigAst {
    let mut ast = ConfigAst {
        hostname: spoke_name(i),
        ..Default::default()
    };
    ast.route_maps
        .insert("FROM-SITE".into(), tag_all_map(site_comm()));
    let mut bgp = RouterBgp {
        asn: 65020,
        ..Default::default()
    };
    // The hub is the spoke's only internal session.
    let addr = format!("10.60.{i}.254");
    bgp.neighbors.insert(
        addr.clone(),
        NeighborAst {
            addr,
            remote_as: Some(65020),
            description: Some(HUB.into()),
            route_map_in: None,
            route_map_out: None,
        },
    );
    let addr = format!("10.62.{i}.1");
    bgp.neighbors.insert(
        addr.clone(),
        NeighborAst {
            addr,
            remote_as: Some(64700 + params.asn_jitter() + i as u32),
            description: Some(site_name(i)),
            route_map_in: Some("FROM-SITE".into()),
            route_map_out: None,
        },
    );
    ast.router_bgp = Some(bgp);
    ast
}

/// The raw configuration ASTs.
pub fn configs(params: &HubParams) -> Vec<ConfigAst> {
    assert!(params.spokes >= 1);
    let mut out = vec![config_hub(params)];
    for i in 0..params.spokes {
        out.push(config_spoke(params, i));
    }
    out
}

/// Build the scenario.
pub fn build(params: &HubParams) -> Scenario {
    build_from_configs(params, configs(params))
}

/// Build from (possibly mutated) configuration ASTs.
pub fn build_from_configs(params: &HubParams, asts: Vec<ConfigAst>) -> Scenario {
    let network = roundtrip_and_lower(&asts);
    let t = &network.topology;

    let mut site_ghost = GhostAttr::new("FromSite");
    let mut inet_ghost = GhostAttr::new("FromInet");
    for e in t.edge_ids() {
        let edge = t.edge(e);
        if !t.node(edge.src).external {
            continue;
        }
        let is_inet = t.node(edge.src).name == INET;
        site_ghost.on_import(
            e,
            if is_inet {
                GhostUpdate::SetFalse
            } else {
                GhostUpdate::SetTrue
            },
        );
        inet_ghost.on_import(
            e,
            if is_inet {
                GhostUpdate::SetTrue
            } else {
                GhostUpdate::SetFalse
            },
        );
    }

    let from_site = RoutePred::ghost("FromSite");
    let from_inet = RoutePred::ghost("FromInet");
    let key = from_site
        .clone()
        .implies(RoutePred::has_community(site_comm()))
        .and(
            from_inet
                .clone()
                .implies(RoutePred::has_community(inet_comm())),
        );
    let mut invariants = NetworkInvariants::with_default(key);
    let mut properties = Vec::new();

    if let (Some(hub), Some(inet)) = (t.node_by_name(HUB), t.node_by_name(INET)) {
        if let Some(edge) = t.edge_between(hub, inet) {
            invariants.set(Location::Edge(edge), from_site.clone().not());
            properties.push(
                SafetyProperty::new(Location::Edge(edge), from_site.clone().not())
                    .named("hub-no-site-leak"),
            );
        }
    }
    let inet_tagged = from_inet.implies(RoutePred::has_community(inet_comm()));
    for n in t.router_ids() {
        properties.push(
            SafetyProperty::new(Location::Node(n), inet_tagged.clone()).named("hub-inet-tagged"),
        );
    }

    Scenario {
        params: *params,
        network,
        site_ghost,
        inet_ghost,
        properties,
        invariants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightyear::engine::Verifier;

    #[test]
    fn star_verifies_at_small_sizes() {
        for spokes in [1, 3, 5] {
            let s = build(&HubParams { spokes, seed: 3 });
            let t = &s.network.topology;
            assert_eq!(t.router_ids().count(), spokes + 1);
            // Star: spokes internal sessions + (spokes + 1) externals,
            // each a directed edge pair.
            assert_eq!(t.num_edges(), 2 * spokes + 2 * (spokes + 1));
            let v = Verifier::new(t, &s.network.policy)
                .with_ghost(s.site_ghost.clone())
                .with_ghost(s.inet_ghost.clone());
            let report = v.verify_safety_multi(&s.properties, &s.invariants);
            assert!(
                report.all_passed(),
                "hub x{spokes}: {}",
                report.format_failures(t)
            );
        }
    }

    #[test]
    fn dropped_site_tag_is_caught() {
        let p = HubParams::default();
        let mut cfgs = configs(&p);
        let bug = crate::mutate::drop_community_sets(&mut cfgs, "SP0", "FROM-SITE").unwrap();
        let s = build_from_configs(&p, cfgs);
        let v = Verifier::new(&s.network.topology, &s.network.policy)
            .with_ghost(s.site_ghost.clone())
            .with_ghost(s.inet_ghost.clone());
        let report = v.verify_safety_multi(&s.properties, &s.invariants);
        assert!(!report.all_passed());
        assert!(report
            .failures()
            .iter()
            .any(|f| f.check.map_name.as_deref() == Some(bug.route_map.as_str())));
    }
}
