//! An iBGP **route-reflector hierarchy**: a reflector tier in a full
//! mesh, client routers that peer only with their own reflector, and one
//! eBGP external per client.
//!
//! Where [`crate::fullmesh`] needs `N²` iBGP sessions, this family keeps
//! the session graph sparse (clients see exactly one reflector), which is
//! the shape real deployments use once the mesh stops scaling — and a
//! shape none of the original differential families exercised: invariants
//! must survive the two-hop client → reflector → reflector → client relay
//! instead of a single internal edge.
//!
//! Policy scheme (the Figure-1 community discipline on a hierarchy):
//!
//! * client `C0-0` is the **source**: its external's import strips all
//!   communities, then tags `100:1`;
//! * every other client import strips communities (so nothing else can
//!   carry the tag);
//! * the **sink** (the last client) denies tagged routes on its export,
//!   giving the no-transit property "source routes never reach the
//!   sink's external".

use crate::roundtrip_and_lower;
use bgp_config::ast::*;
use bgp_config::Network;
use bgp_model::Community;
use lightyear::ghost::{GhostAttr, GhostUpdate};
use lightyear::invariants::{Location, NetworkInvariants};
use lightyear::pred::RoutePred;
use lightyear::safety::SafetyProperty;

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct RrParams {
    /// Reflectors in the top-tier full mesh (>= 1).
    pub reflectors: usize,
    /// Client routers per reflector (>= 1).
    pub clients_per_reflector: usize,
    /// Deterministic variation seed (external AS numbers only; route-map
    /// templates are seed-invariant, as in [`crate::wan`]).
    pub seed: u64,
}

impl Default for RrParams {
    fn default() -> Self {
        RrParams {
            reflectors: 2,
            clients_per_reflector: 2,
            seed: 0,
        }
    }
}

impl RrParams {
    fn asn_jitter(&self) -> u32 {
        ((self.seed % 89) * 3) as u32
    }

    /// Total internal router count.
    pub fn num_routers(&self) -> usize {
        self.reflectors * (1 + self.clients_per_reflector)
    }
}

/// The transit tag the source client applies.
pub fn tag() -> Community {
    Community::new(100, 1)
}

fn reflector_name(i: usize) -> String {
    format!("RR{i}")
}

fn client_name(i: usize, j: usize) -> String {
    format!("C{i}-{j}")
}

fn external_name(i: usize, j: usize) -> String {
    format!("EXT{i}-{j}")
}

/// A generated route-reflector scenario with its verification inputs.
pub struct Scenario {
    /// Generator parameters.
    pub params: RrParams,
    /// The lowered network.
    pub network: Network,
    /// Ghost marking routes learned from the source client's external.
    pub ghost: GhostAttr,
    /// The no-transit property (source routes never reach the sink's
    /// external) plus the tag-integrity property at the first reflector.
    pub properties: Vec<SafetyProperty>,
    /// The shared three-part invariants.
    pub invariants: NetworkInvariants,
}

fn config_reflector(params: &RrParams, i: usize) -> ConfigAst {
    let mut ast = ConfigAst {
        hostname: reflector_name(i),
        ..Default::default()
    };
    let mut bgp = RouterBgp {
        asn: 65000,
        ..Default::default()
    };
    // Reflector full mesh.
    for i2 in 0..params.reflectors {
        if i2 == i {
            continue;
        }
        let addr = format!("10.100.{i2}.{i}");
        bgp.neighbors
            .insert(addr.clone(), nbr(addr, 65000, reflector_name(i2)));
    }
    // Own clients.
    for j in 0..params.clients_per_reflector {
        let addr = format!("10.{i}.{j}.255");
        bgp.neighbors
            .insert(addr.clone(), nbr(addr, 65000, client_name(i, j)));
    }
    ast.router_bgp = Some(bgp);
    ast
}

fn nbr(addr: String, asn: u32, desc: String) -> NeighborAst {
    NeighborAst {
        addr: addr.clone(),
        remote_as: Some(asn),
        description: Some(desc),
        route_map_in: None,
        route_map_out: None,
    }
}

fn config_client(params: &RrParams, i: usize, j: usize) -> ConfigAst {
    let mut ast = ConfigAst {
        hostname: client_name(i, j),
        ..Default::default()
    };
    let is_source = i == 0 && j == 0;
    let is_sink = i == params.reflectors - 1 && j == params.clients_per_reflector - 1 && !is_source;

    // Import from the external: strip everything; the source then tags.
    let mut sets = vec![SetAst::Community {
        communities: vec![],
        additive: false,
        none: true,
    }];
    if is_source {
        sets.push(SetAst::Community {
            communities: vec![tag()],
            additive: true,
            none: false,
        });
    }
    ast.route_maps.insert(
        "FROM-EXT".into(),
        vec![RouteMapEntryAst {
            seq: 10,
            permit: true,
            matches: vec![],
            sets,
            continue_to: None,
        }],
    );
    if is_sink {
        ast.community_lists.insert(
            "TRANSIT".into(),
            vec![CommunityListEntry {
                permit: true,
                communities: vec![tag()],
            }],
        );
        ast.route_maps.insert(
            "TO-EXT".into(),
            vec![
                RouteMapEntryAst {
                    seq: 10,
                    permit: false,
                    matches: vec![MatchAst::Community {
                        lists: vec!["TRANSIT".into()],
                        exact: false,
                    }],
                    sets: vec![],
                    continue_to: None,
                },
                RouteMapEntryAst {
                    seq: 20,
                    permit: true,
                    matches: vec![],
                    sets: vec![],
                    continue_to: None,
                },
            ],
        );
    }

    let mut bgp = RouterBgp {
        asn: 65000,
        ..Default::default()
    };
    // The one reflector session.
    let addr = format!("10.{i}.{j}.254");
    bgp.neighbors
        .insert(addr.clone(), nbr(addr, 65000, reflector_name(i)));
    // The external.
    let addr = format!("10.210.{i}.{j}");
    bgp.neighbors.insert(
        addr.clone(),
        NeighborAst {
            addr,
            remote_as: Some(64000 + params.asn_jitter() + (i * 16 + j) as u32),
            description: Some(external_name(i, j)),
            route_map_in: Some("FROM-EXT".into()),
            route_map_out: is_sink.then(|| "TO-EXT".to_string()),
        },
    );
    ast.router_bgp = Some(bgp);
    ast
}

/// The raw configuration ASTs.
pub fn configs(params: &RrParams) -> Vec<ConfigAst> {
    assert!(params.reflectors >= 1);
    assert!(params.clients_per_reflector >= 1);
    assert!(
        params.num_routers() >= 3,
        "need a distinct source and sink client"
    );
    let mut out = Vec::new();
    for i in 0..params.reflectors {
        out.push(config_reflector(params, i));
        for j in 0..params.clients_per_reflector {
            out.push(config_client(params, i, j));
        }
    }
    out
}

/// Build the scenario.
pub fn build(params: &RrParams) -> Scenario {
    build_from_configs(params, configs(params))
}

/// Build from (possibly mutated) configuration ASTs. Properties whose
/// anchor nodes were edited away are skipped rather than invented.
pub fn build_from_configs(params: &RrParams, asts: Vec<ConfigAst>) -> Scenario {
    let network = roundtrip_and_lower(&asts);
    let t = &network.topology;

    let mut ghost = GhostAttr::new("FromSrc");
    for e in t.edge_ids() {
        let edge = t.edge(e);
        if !t.node(edge.src).external {
            continue;
        }
        let update = if t.node(edge.src).name == external_name(0, 0) {
            GhostUpdate::SetTrue
        } else {
            GhostUpdate::SetFalse
        };
        ghost.on_import(e, update);
    }

    let from_src = RoutePred::ghost("FromSrc");
    let key = from_src.clone().implies(RoutePred::has_community(tag()));
    let mut invariants = NetworkInvariants::with_default(key.clone());
    let mut properties = Vec::new();

    let sink = client_name(params.reflectors - 1, params.clients_per_reflector - 1);
    let sink_ext = external_name(params.reflectors - 1, params.clients_per_reflector - 1);
    if let (Some(sn), Some(se)) = (t.node_by_name(&sink), t.node_by_name(&sink_ext)) {
        if let Some(edge) = t.edge_between(sn, se) {
            invariants.set(Location::Edge(edge), from_src.clone().not());
            properties.push(
                SafetyProperty::new(Location::Edge(edge), from_src.clone().not())
                    .named("rr-no-transit"),
            );
        }
    }
    if let Some(rr0) = t.node_by_name(&reflector_name(0)) {
        properties.push(SafetyProperty::new(Location::Node(rr0), key).named("rr-tag-integrity"));
    }

    Scenario {
        params: *params,
        network,
        ghost,
        properties,
        invariants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightyear::engine::Verifier;

    #[test]
    fn hierarchy_verifies_at_small_sizes() {
        for (r, c) in [(1, 3), (2, 2), (3, 2)] {
            let s = build(&RrParams {
                reflectors: r,
                clients_per_reflector: c,
                seed: 1,
            });
            assert_eq!(
                s.network.topology.router_ids().count(),
                s.params.num_routers()
            );
            let v =
                Verifier::new(&s.network.topology, &s.network.policy).with_ghost(s.ghost.clone());
            let report = v.verify_safety_multi(&s.properties, &s.invariants);
            assert!(
                report.all_passed(),
                "rr {r}x{c}: {}",
                report.format_failures(&s.network.topology)
            );
        }
    }

    #[test]
    fn session_graph_is_sparse() {
        let s = build(&RrParams {
            reflectors: 3,
            clients_per_reflector: 2,
            seed: 0,
        });
        let t = &s.network.topology;
        // 3*2 reflector mesh edges + 6 client<->reflector sessions (x2
        // directed) + 6 externals (x2 directed).
        assert_eq!(t.num_edges(), 3 * 2 + 2 * 6 + 2 * 6);
    }

    #[test]
    fn missing_tag_is_caught() {
        let p = RrParams::default();
        let mut cfgs = configs(&p);
        let bug = crate::mutate::drop_community_sets(&mut cfgs, "C0-0", "FROM-EXT").unwrap();
        let s = build_from_configs(&p, cfgs);
        let v = Verifier::new(&s.network.topology, &s.network.policy).with_ghost(s.ghost.clone());
        let report = v.verify_safety_multi(&s.properties, &s.invariants);
        assert!(!report.all_passed());
        assert!(report
            .failures()
            .iter()
            .any(|f| f.check.map_name.as_deref() == Some(bug.route_map.as_str())));
    }
}
