//! A synthetic cloud WAN in the image of the paper's §6.1 deployment.
//!
//! Structure (all sizes parameterized):
//!
//! * `regions` regions, each with `routers_per_region` WAN routers
//!   (`R{k}-{j}`, AS 65000) in an intra-region full mesh; router
//!   `R{k}-0` is the region gateway and the gateways form a backbone
//!   full mesh.
//! * One data-center external (`DC{k}`) per region, attached to
//!   `R{k}-1` (the gateway when the region has a single router),
//!   announcing both regular and **reused** prefixes.
//! * `edge_routers` Internet edge routers (`EDGE{m}`, AS 65000), each
//!   attached to the gateway of region `m % regions` and peering with
//!   `peers_per_edge` external peers (`PEER{m}-{p}`).
//!
//! Policy scheme (mirroring the paper):
//!
//! * Peer imports (`FROM-PEER{p}`) deny bogons, reused prefixes,
//!   too-specific prefixes, default routes, infra prefixes, private ASNs
//!   and self-AS paths, then tag `200:1` (replacing all communities) and
//!   normalize local-pref/MED.
//! * DC imports tag reused prefixes with the **region community**
//!   `100:(10+k)` (replacing everything — "the WAN enforces it by
//!   deleting all communities on routes coming from the data centers,
//!   before adding the community"), and strip communities otherwise.
//! * Backbone imports deny routes carrying any *other* region's
//!   community, keeping reused prefixes region-local.
//! * Exports to peers deny reused prefixes.
//!
//! The module also produces the region-community **metadata file** the
//! paper mentions (used to write local constraints, and to seed the
//! "undocumented community" bug).

use crate::roundtrip_and_lower;
use bgp_config::ast::*;
use bgp_config::Network;
use bgp_model::prefix::{Ipv4Prefix, PrefixRange};
use bgp_model::topology::NodeId;
use bgp_model::Community;
use lightyear::ghost::{GhostAttr, GhostUpdate};
use lightyear::invariants::{Location, NetworkInvariants};
use lightyear::liveness::LivenessSpec;
use lightyear::pred::{Cmp, RoutePred};
use lightyear::safety::SafetyProperty;
use serde::{Deserialize, Serialize};

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct WanParams {
    /// Number of regions.
    pub regions: usize,
    /// WAN routers per region (>= 1; >= 2 enables the liveness suite).
    pub routers_per_region: usize,
    /// Number of Internet edge routers.
    pub edge_routers: usize,
    /// External peers per edge router.
    pub peers_per_edge: usize,
    /// Deterministic variation seed. The same `(params, seed)` pair
    /// always generates byte-identical configurations; different seeds
    /// vary renaming-level detail (external peer/DC AS numbers) while
    /// keeping every route-map template identical — which is what makes
    /// check fingerprints repeatable and renaming-invariance testable.
    pub seed: u64,
}

impl Default for WanParams {
    fn default() -> Self {
        WanParams {
            regions: 4,
            routers_per_region: 3,
            edge_routers: 6,
            peers_per_edge: 4,
            seed: 0,
        }
    }
}

impl WanParams {
    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total router (non-external) count: region routers plus edges.
    pub fn num_routers(&self) -> usize {
        self.regions * self.routers_per_region + self.edge_routers
    }

    /// Deterministic per-seed ASN jitter, kept far below the private-ASN
    /// range (64512+) the peer filters match on. Seed 0 is jitter-free,
    /// so existing fixtures are unchanged.
    fn asn_jitter(&self) -> u32 {
        ((self.seed % 97) * 7) as u32
    }
}

/// Region metadata (the paper's "metadata file").
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RegionMeta {
    /// Region name.
    pub name: String,
    /// The region community for reused prefixes.
    pub community: Community,
    /// The reused prefixes.
    pub reused_prefixes: Vec<Ipv4Prefix>,
}

/// The WAN metadata file contents.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WanMetadata {
    /// Per-region entries.
    pub regions: Vec<RegionMeta>,
}

/// A generated WAN scenario.
pub struct Scenario {
    /// Generator parameters.
    pub params: WanParams,
    /// The lowered network.
    pub network: Network,
    /// The metadata file contents.
    pub metadata: WanMetadata,
}

/// The reused prefix block (same in every region — that is the point).
pub fn reused_prefix() -> Ipv4Prefix {
    "100.64.0.0/16".parse().unwrap()
}

/// The internal-infrastructure block peers must never announce.
pub fn infra_prefix() -> Ipv4Prefix {
    "100.65.0.0/16".parse().unwrap()
}

/// The community tagging peer-learned routes.
pub fn peer_comm() -> Community {
    Community::new(200, 1)
}

/// The region community for region `k`.
pub fn region_comm(k: usize) -> Community {
    Community::new(100, 10 + k as u16)
}

/// The bogon list.
pub fn bogons() -> Vec<Ipv4Prefix> {
    vec![
        "0.0.0.0/8".parse().unwrap(),
        "10.0.0.0/8".parse().unwrap(),
        "127.0.0.0/8".parse().unwrap(),
        "169.254.0.0/16".parse().unwrap(),
        "192.168.0.0/16".parse().unwrap(),
        "224.0.0.0/4".parse().unwrap(),
    ]
}

/// The AS-path regex matching private ASNs.
pub fn private_asn_regex() -> &'static str {
    "_[64512-65534]_"
}

/// The AS-path regex matching our own ASN (leak detection).
pub fn self_asn_regex() -> &'static str {
    "_65000_"
}

fn router_name(k: usize, j: usize) -> String {
    format!("R{k}-{j}")
}

fn edge_name(m: usize) -> String {
    format!("EDGE{m}")
}

fn peer_name(m: usize, p: usize) -> String {
    format!("PEER{m}-{p}")
}

fn dc_name(k: usize) -> String {
    format!("DC{k}")
}

fn dc_attach(params: &WanParams) -> usize {
    if params.routers_per_region >= 2 {
        1
    } else {
        0
    }
}

fn nbr(
    addr: String,
    asn: u32,
    desc: String,
    rm_in: Option<String>,
    rm_out: Option<String>,
) -> NeighborAst {
    NeighborAst {
        addr: addr.clone(),
        remote_as: Some(asn),
        description: Some(desc),
        route_map_in: rm_in,
        route_map_out: rm_out,
    }
}

fn deny_entry(seq: u32, m: MatchAst) -> RouteMapEntryAst {
    RouteMapEntryAst {
        seq,
        permit: false,
        matches: vec![m],
        sets: vec![],
        continue_to: None,
    }
}

fn bogon_prefix_list() -> Vec<PrefixListEntry> {
    bogons()
        .into_iter()
        .enumerate()
        .map(|(i, p)| PrefixListEntry {
            seq: (i as u32 + 1) * 5,
            permit: true,
            prefix: p,
            ge: None,
            le: Some(32),
        })
        .collect()
}

fn single_orlonger_list(p: Ipv4Prefix) -> Vec<PrefixListEntry> {
    vec![PrefixListEntry {
        seq: 5,
        permit: true,
        prefix: p,
        ge: None,
        le: Some(32),
    }]
}

/// Configuration of a region router `R{k}-{j}`.
fn config_region_router(params: &WanParams, k: usize, j: usize) -> ConfigAst {
    let mut ast = ConfigAst {
        hostname: router_name(k, j),
        ..Default::default()
    };
    let mut bgp = RouterBgp {
        asn: 65000,
        ..Default::default()
    };

    // Intra-region mesh.
    for j2 in 0..params.routers_per_region {
        if j2 == j {
            continue;
        }
        let addr = format!("10.{k}.{j2}.{j}");
        bgp.neighbors.insert(
            addr.clone(),
            nbr(addr, 65000, router_name(k, j2), None, None),
        );
    }

    if j == 0 && params.regions > 1 {
        // Gateway: backbone mesh + attached edge routers.
        ast.community_lists.insert(
            "REGIONAL-OTHER".into(),
            (0..params.regions)
                .filter(|&k2| k2 != k)
                .map(|k2| CommunityListEntry {
                    permit: true,
                    communities: vec![region_comm(k2)],
                })
                .collect(),
        );
        ast.route_maps.insert(
            "FROM-BACKBONE".into(),
            vec![
                deny_entry(
                    10,
                    MatchAst::Community {
                        lists: vec!["REGIONAL-OTHER".into()],
                        exact: false,
                    },
                ),
                RouteMapEntryAst {
                    seq: 20,
                    permit: true,
                    matches: vec![],
                    sets: vec![],
                    continue_to: None,
                },
            ],
        );
        for k2 in 0..params.regions {
            if k2 == k {
                continue;
            }
            let addr = format!("10.200.{k2}.{k}");
            bgp.neighbors.insert(
                addr.clone(),
                nbr(
                    addr,
                    65000,
                    router_name(k2, 0),
                    Some("FROM-BACKBONE".into()),
                    None,
                ),
            );
        }
    }
    if j == 0 {
        let attach_map = if params.regions > 1 {
            Some("FROM-BACKBONE".to_string())
        } else {
            None
        };
        for m in 0..params.edge_routers {
            if m % params.regions != k {
                continue;
            }
            let addr = format!("10.201.{m}.0");
            bgp.neighbors.insert(
                addr.clone(),
                nbr(addr, 65000, edge_name(m), attach_map.clone(), None),
            );
        }
    }

    if j == dc_attach(params) {
        // Data-center attachment.
        ast.prefix_lists
            .insert("REUSED".into(), single_orlonger_list(reused_prefix()));
        ast.route_maps.insert(
            "FROM-DC".into(),
            vec![
                RouteMapEntryAst {
                    seq: 10,
                    permit: true,
                    matches: vec![MatchAst::PrefixList(vec!["REUSED".into()])],
                    sets: vec![SetAst::Community {
                        communities: vec![region_comm(k)],
                        additive: false,
                        none: false,
                    }],
                    continue_to: None,
                },
                RouteMapEntryAst {
                    seq: 20,
                    permit: true,
                    matches: vec![],
                    sets: vec![SetAst::Community {
                        communities: vec![],
                        additive: false,
                        none: true,
                    }],
                    continue_to: None,
                },
            ],
        );
        let addr = format!("10.202.{k}.1");
        bgp.neighbors.insert(
            addr.clone(),
            nbr(
                addr,
                64600 + k as u32,
                dc_name(k),
                Some("FROM-DC".into()),
                None,
            ),
        );
    }

    ast.router_bgp = Some(bgp);
    ast
}

/// Configuration of Internet edge router `EDGE{m}`.
fn config_edge_router(params: &WanParams, m: usize) -> ConfigAst {
    let mut ast = ConfigAst {
        hostname: edge_name(m),
        ..Default::default()
    };
    ast.prefix_lists
        .insert("BOGONS".into(), bogon_prefix_list());
    ast.prefix_lists
        .insert("REUSED".into(), single_orlonger_list(reused_prefix()));
    ast.prefix_lists
        .insert("INFRA".into(), single_orlonger_list(infra_prefix()));
    ast.prefix_lists.insert(
        "DEFAULT".into(),
        vec![PrefixListEntry {
            seq: 5,
            permit: true,
            prefix: "0.0.0.0/0".parse().unwrap(),
            ge: None,
            le: None,
        }],
    );
    ast.prefix_lists.insert(
        "TOO-SPECIFIC".into(),
        vec![PrefixListEntry {
            seq: 5,
            permit: true,
            prefix: "0.0.0.0/0".parse().unwrap(),
            ge: Some(25),
            le: Some(32),
        }],
    );
    ast.aspath_acls.insert(
        "PRIVATE-ASN".into(),
        vec![AsPathAclEntry {
            permit: true,
            regex: private_asn_regex().into(),
        }],
    );
    ast.aspath_acls.insert(
        "SELF-ASN".into(),
        vec![AsPathAclEntry {
            permit: true,
            regex: self_asn_regex().into(),
        }],
    );

    let region = m % params.regions;
    let mut bgp = RouterBgp {
        asn: 65000,
        ..Default::default()
    };

    // Uplink to the region gateway.
    let addr = format!("10.201.{m}.1");
    bgp.neighbors.insert(
        addr.clone(),
        nbr(addr, 65000, router_name(region, 0), None, None),
    );

    // Peers: one route-map pair per peering, as in real deployments
    // ("hundreds of similarly defined peering sessions") — this is what
    // lets a single session's ad-hoc policy differ (the bug class the
    // paper found).
    ast.route_maps.insert(
        "TO-PEER".into(),
        vec![
            deny_entry(10, MatchAst::PrefixList(vec!["REUSED".into()])),
            deny_entry(15, MatchAst::PrefixList(vec!["INFRA".into()])),
            RouteMapEntryAst {
                seq: 20,
                permit: true,
                matches: vec![],
                sets: vec![],
                continue_to: None,
            },
        ],
    );
    for p in 0..params.peers_per_edge {
        let map = format!("FROM-PEER{p}");
        ast.route_maps.insert(
            map.clone(),
            vec![
                deny_entry(5, MatchAst::PrefixList(vec!["BOGONS".into()])),
                deny_entry(6, MatchAst::PrefixList(vec!["REUSED".into()])),
                deny_entry(7, MatchAst::PrefixList(vec!["INFRA".into()])),
                deny_entry(8, MatchAst::PrefixList(vec!["DEFAULT".into()])),
                deny_entry(9, MatchAst::PrefixList(vec!["TOO-SPECIFIC".into()])),
                deny_entry(11, MatchAst::AsPath(vec!["PRIVATE-ASN".into()])),
                deny_entry(12, MatchAst::AsPath(vec!["SELF-ASN".into()])),
                RouteMapEntryAst {
                    seq: 20,
                    permit: true,
                    matches: vec![],
                    sets: vec![
                        SetAst::Community {
                            communities: vec![peer_comm()],
                            additive: false,
                            none: false,
                        },
                        SetAst::LocalPref(100),
                        SetAst::Med(0),
                    ],
                    continue_to: None,
                },
            ],
        );
        let addr = format!("10.203.{m}.{p}");
        bgp.neighbors.insert(
            addr.clone(),
            nbr(
                addr,
                3000 + params.asn_jitter() + (m * 100 + p) as u32,
                peer_name(m, p),
                Some(map),
                Some("TO-PEER".into()),
            ),
        );
    }
    ast.router_bgp = Some(bgp);
    ast
}

/// The raw configuration ASTs for the WAN.
pub fn configs(params: &WanParams) -> Vec<ConfigAst> {
    assert!(params.regions >= 1);
    assert!(params.routers_per_region >= 1);
    let mut out = Vec::new();
    for k in 0..params.regions {
        for j in 0..params.routers_per_region {
            out.push(config_region_router(params, k, j));
        }
    }
    for m in 0..params.edge_routers {
        out.push(config_edge_router(params, m));
    }
    out
}

/// Build the scenario (configs -> text -> parse -> lower + metadata).
pub fn build(params: &WanParams) -> Scenario {
    build_from_configs(params, configs(params))
}

/// Build from (possibly mutated) configuration ASTs.
pub fn build_from_configs(params: &WanParams, asts: Vec<ConfigAst>) -> Scenario {
    let network = roundtrip_and_lower(&asts);
    let metadata = WanMetadata {
        regions: (0..params.regions)
            .map(|k| RegionMeta {
                name: format!("region-{k}"),
                community: region_comm(k),
                reused_prefixes: vec![reused_prefix()],
            })
            .collect(),
    };
    Scenario {
        params: *params,
        network,
        metadata,
    }
}

impl Scenario {
    /// The region a router belongs to (edge routers belong to their
    /// attached region), or `None` for externals.
    pub fn region_of(&self, n: NodeId) -> Option<usize> {
        let name = &self.network.topology.node(n).name;
        if let Some(rest) = name.strip_prefix('R') {
            let (k, _) = rest.split_once('-')?;
            return k.parse().ok();
        }
        if let Some(m) = name.strip_prefix("EDGE") {
            let m: usize = m.parse().ok()?;
            return Some(m % self.params.regions);
        }
        None
    }

    /// The `FromPeer` ghost: true on every peer import, false on DC
    /// imports.
    pub fn from_peer_ghost(&self) -> GhostAttr {
        let t = &self.network.topology;
        let mut g = GhostAttr::new("FromPeer");
        for e in t.edge_ids() {
            let edge = t.edge(e);
            if !t.node(edge.src).external {
                continue;
            }
            let src_name = &t.node(edge.src).name;
            let update = if src_name.starts_with("PEER") {
                GhostUpdate::SetTrue
            } else {
                GhostUpdate::SetFalse
            };
            g.on_import(e, update);
        }
        g
    }

    /// The `FromRegion{k}` ghost: true on `DC{k}`'s import, false on all
    /// other external imports.
    pub fn from_region_ghost(&self, k: usize) -> GhostAttr {
        let t = &self.network.topology;
        let mut g = GhostAttr::new(format!("FromRegion{k}"));
        let dck = dc_name(k);
        for e in t.edge_ids() {
            let edge = t.edge(e);
            if !t.node(edge.src).external {
                continue;
            }
            let update = if t.node(edge.src).name == dck {
                GhostUpdate::SetTrue
            } else {
                GhostUpdate::SetFalse
            };
            g.on_import(e, update);
        }
        g
    }

    /// The 11 Internet-peering-policy predicates of §6.1, as `(name, Q)`
    /// pairs; each yields the property `FromPeer(r) => Q(r)` at every
    /// router.
    pub fn peering_predicates(&self) -> Vec<(String, RoutePred)> {
        let not_in = |ps: Vec<Ipv4Prefix>| {
            RoutePred::prefix_in(
                ps.into_iter()
                    .map(PrefixRange::orlonger)
                    .collect::<Vec<_>>(),
            )
            .not()
        };
        let mut out = vec![
            ("no-bogons".to_string(), not_in(bogons())),
            (
                "no-reused-from-peers".to_string(),
                not_in(vec![reused_prefix()]),
            ),
            (
                "no-infra-prefixes".to_string(),
                not_in(vec![infra_prefix()]),
            ),
            (
                "no-default-route".to_string(),
                RoutePred::prefix_eq("0.0.0.0/0".parse().unwrap()).not(),
            ),
            (
                "no-too-specific".to_string(),
                RoutePred::prefix_in(vec![PrefixRange::with_bounds(
                    "0.0.0.0/0".parse().unwrap(),
                    25,
                    32,
                )])
                .not(),
            ),
            (
                "no-private-asn".to_string(),
                RoutePred::aspath(private_asn_regex()).not(),
            ),
            (
                "no-self-asn".to_string(),
                RoutePred::aspath(self_asn_regex()).not(),
            ),
            (
                "peer-tagged".to_string(),
                RoutePred::has_community(peer_comm()),
            ),
            (
                "lp-normalized".to_string(),
                RoutePred::local_pref(Cmp::Eq, 100),
            ),
            ("med-zeroed".to_string(), RoutePred::med(Cmp::Eq, 0)),
        ];
        // 11th: peer routes never carry regional communities.
        let mut no_regional = RoutePred::True;
        for k in 0..self.params.regions {
            no_regional = no_regional.and(RoutePred::has_community(region_comm(k)).not());
        }
        out.push(("no-regional-comms".to_string(), no_regional));
        out
    }

    /// Build the Table-4a-style inputs for one peering predicate: the
    /// per-router properties and the uniform invariant.
    pub fn peering_property_inputs(
        &self,
        q: &RoutePred,
    ) -> (Vec<SafetyProperty>, NetworkInvariants) {
        let t = &self.network.topology;
        let pred = RoutePred::ghost("FromPeer").implies(q.clone());
        let props = t
            .router_ids()
            .map(|r| SafetyProperty::new(Location::Node(r), pred.clone()))
            .collect();
        let inv = NetworkInvariants::with_default(pred);
        (props, inv)
    }

    /// Table 4b: the reuse-safety inputs for region `k`: properties (one
    /// per router outside the region) and the invariants.
    pub fn reuse_safety_inputs(&self, k: usize) -> (Vec<SafetyProperty>, NetworkInvariants) {
        let t = &self.network.topology;
        let from_region = RoutePred::ghost(format!("FromRegion{k}"));
        let reused = RoutePred::prefix_in(vec![PrefixRange::orlonger(reused_prefix())]);

        // Inside region k: reused routes from the region are tagged with
        // C_k and no other region's community.
        let mut exactly_ck = RoutePred::has_community(region_comm(k));
        for k2 in 0..self.params.regions {
            if k2 != k {
                exactly_ck = exactly_ck.and(RoutePred::has_community(region_comm(k2)).not());
            }
        }
        let inside = from_region.clone().and(reused.clone()).implies(exactly_ck);
        // Outside: no reused routes from region k at all.
        let outside = from_region.clone().implies(reused.clone().not());

        let inv = NetworkInvariants::from_node_fn(t, |n| {
            if self.region_of(n) == Some(k) {
                inside.clone()
            } else {
                outside.clone()
            }
        });
        let props = t
            .router_ids()
            .filter(|&r| self.region_of(r) != Some(k))
            .map(|r| {
                SafetyProperty::new(Location::Node(r), outside.clone())
                    .named(format!("reuse-safety-region{k}"))
            })
            .collect();
        (props, inv)
    }

    /// Table 4c: the reuse-liveness spec for region `k`: a reused-prefix
    /// route from `DC{k}` reaches the region gateway via the attachment
    /// router. Returns `None` when the region has a single router.
    pub fn reuse_liveness_spec(&self, k: usize) -> Option<LivenessSpec> {
        if self.params.routers_per_region < 2 {
            return None;
        }
        let t = &self.network.topology;
        let dc = t.node_by_name(&dc_name(k))?;
        let attach = t.node_by_name(&router_name(k, dc_attach(&self.params)))?;
        let gw = t.node_by_name(&router_name(k, 0))?;
        let dc_edge = t.edge_between(dc, attach)?;
        let hop = t.edge_between(attach, gw)?;

        let from_region = RoutePred::ghost(format!("FromRegion{k}"));
        let reused = RoutePred::prefix_in(vec![PrefixRange::orlonger(reused_prefix())]);
        let mut exactly_ck = RoutePred::has_community(region_comm(k));
        for k2 in 0..self.params.regions {
            if k2 != k {
                exactly_ck = exactly_ck.and(RoutePred::has_community(region_comm(k2)).not());
            }
        }
        let good = from_region
            .clone()
            .and(reused.clone())
            .and(exactly_ck.clone());

        // Interference invariants: inside region j, reused routes carry
        // exactly C_j and (for j == k) came from the region.
        let interference = NetworkInvariants::from_node_fn(t, |n| {
            let j = self.region_of(n).unwrap_or(usize::MAX);
            if j == usize::MAX {
                return RoutePred::True;
            }
            let mut exactly_cj = RoutePred::has_community(region_comm(j));
            for k2 in 0..self.params.regions {
                if k2 != j {
                    exactly_cj = exactly_cj.and(RoutePred::has_community(region_comm(k2)).not());
                }
            }
            let mut pred = exactly_cj;
            if j == k {
                pred = pred.and(from_region.clone());
            } else {
                pred = pred.and(from_region.clone().not());
            }
            reused.clone().implies(pred)
        });

        Some(LivenessSpec {
            location: Location::Node(gw),
            pred: from_region.clone().and(reused.clone()),
            path: vec![
                Location::Edge(dc_edge),
                Location::Node(attach),
                Location::Edge(hop),
                Location::Node(gw),
            ],
            constraints: vec![
                from_region.and(reused.clone()), // assumption at DC -> attach
                good.clone(),
                good.clone(),
                good,
            ],
            prefix_scope: reused,
            interference_invariants: interference,
            name: Some(format!("reuse-liveness-region{k}")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightyear::engine::Verifier;

    fn small() -> Scenario {
        build(&WanParams {
            regions: 2,
            routers_per_region: 2,
            edge_routers: 2,
            peers_per_edge: 2,
            ..WanParams::default()
        })
    }

    #[test]
    fn peering_properties_verify() {
        let s = small();
        let v =
            Verifier::new(&s.network.topology, &s.network.policy).with_ghost(s.from_peer_ghost());
        for (name, q) in s.peering_predicates() {
            let (props, inv) = s.peering_property_inputs(&q);
            let report = v.verify_safety_multi(&props, &inv);
            assert!(
                report.all_passed(),
                "{name}: {}",
                report.format_failures(&s.network.topology)
            );
        }
    }

    #[test]
    fn reuse_safety_verifies() {
        let s = small();
        for k in 0..s.params.regions {
            let v = Verifier::new(&s.network.topology, &s.network.policy)
                .with_ghost(s.from_region_ghost(k));
            let (props, inv) = s.reuse_safety_inputs(k);
            assert!(!props.is_empty());
            let report = v.verify_safety_multi(&props, &inv);
            assert!(
                report.all_passed(),
                "region {k}: {}",
                report.format_failures(&s.network.topology)
            );
        }
    }

    #[test]
    fn reuse_liveness_verifies() {
        let s = small();
        for k in 0..s.params.regions {
            let v = Verifier::new(&s.network.topology, &s.network.policy)
                .with_ghost(s.from_region_ghost(k));
            let spec = s.reuse_liveness_spec(k).expect("two routers per region");
            let report = v.verify_liveness(&spec).unwrap();
            assert!(
                report.all_passed(),
                "region {k}: {}",
                report.format_failures(&s.network.topology)
            );
        }
    }

    #[test]
    fn seeds_are_deterministic_and_template_preserving() {
        let base = WanParams {
            regions: 2,
            routers_per_region: 2,
            edge_routers: 2,
            peers_per_edge: 2,
            ..WanParams::default()
        };
        let text = |p: &WanParams| {
            configs(p)
                .iter()
                .map(bgp_config::print_config)
                .collect::<Vec<_>>()
        };
        // Same (params, seed) -> byte-identical configurations.
        assert_eq!(text(&base.with_seed(7)), text(&base.with_seed(7)));
        // Different seeds vary renaming-level detail (peer ASNs)...
        let a = text(&base.with_seed(1));
        let b = text(&base.with_seed(2));
        assert_ne!(a, b);
        // ...but never the route-map templates: the non-neighbor lines
        // (router defs, prefix lists, route maps) stay identical.
        let strip_neighbors = |cfgs: &[String]| {
            cfgs.iter()
                .flat_map(|c| c.lines())
                .filter(|l| !l.contains("remote-as"))
                .map(str::to_string)
                .collect::<Vec<_>>()
        };
        assert_eq!(strip_neighbors(&a), strip_neighbors(&b));
    }

    #[test]
    fn num_routers_counts_internal_nodes() {
        let p = WanParams {
            regions: 3,
            routers_per_region: 2,
            edge_routers: 4,
            peers_per_edge: 1,
            ..WanParams::default()
        };
        assert_eq!(p.num_routers(), 10);
        let s = build(&p);
        let t = &s.network.topology;
        assert_eq!(t.router_ids().count(), p.num_routers());
    }

    #[test]
    fn metadata_serializes() {
        let s = small();
        let json = serde_json::to_string_pretty(&s.metadata).unwrap();
        let back: WanMetadata = serde_json::from_str(&json).unwrap();
        assert_eq!(back.regions.len(), 2);
        assert_eq!(back.regions[0].community, region_comm(0));
    }
}
