//! IPv4 prefixes, prefix ranges and a binary prefix trie.
//!
//! The paper models a prefix as "a pair consisting of an IP address and a
//! length, both of which are integer values" (§3.1). [`PrefixRange`] adds
//! the `ge`/`le` modifiers of `ip prefix-list` entries, which match a
//! prefix when it is covered by the pattern network and its length falls in
//! the given bounds.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An IPv4 prefix: network address plus prefix length.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ipv4Prefix {
    /// Network address as a 32-bit integer (host byte order).
    pub addr: u32,
    /// Prefix length, 0..=32.
    pub len: u8,
}

impl Ipv4Prefix {
    /// Build a prefix; the address is masked to the prefix length.
    pub fn new(addr: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length must be <= 32");
        Ipv4Prefix {
            addr: addr & Self::mask(len),
            len,
        }
    }

    /// Build from dotted-quad octets.
    pub fn from_octets(a: u8, b: u8, c: u8, d: u8, len: u8) -> Self {
        Self::new(u32::from_be_bytes([a, b, c, d]), len)
    }

    /// The network mask for a given length.
    pub fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// True if `self` covers `other` (i.e. `other`'s network lies inside
    /// `self`'s and `other` is at least as long).
    pub fn covers(&self, other: &Ipv4Prefix) -> bool {
        other.len >= self.len && (other.addr & Self::mask(self.len)) == self.addr
    }

    /// True if this prefix contains the given host address.
    pub fn contains_addr(&self, addr: u32) -> bool {
        (addr & Self::mask(self.len)) == self.addr
    }

    /// The i-th bit of the network address counting from the top
    /// (bit 0 = most significant).
    pub fn bit(&self, i: u8) -> bool {
        debug_assert!(i < 32);
        (self.addr >> (31 - i)) & 1 == 1
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.addr.to_be_bytes();
        write!(f, "{a}.{b}.{c}.{d}/{}", self.len)
    }
}

impl fmt::Debug for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Errors from parsing prefixes and prefix ranges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrefixParseError(pub String);

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {}", self.0)
    }
}

impl std::error::Error for PrefixParseError {}

impl FromStr for Ipv4Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (ip, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixParseError(format!("{s}: missing '/'")))?;
        let len: u8 = len
            .parse()
            .map_err(|_| PrefixParseError(format!("{s}: bad length")))?;
        if len > 32 {
            return Err(PrefixParseError(format!("{s}: length > 32")));
        }
        let mut octets = [0u8; 4];
        let mut n = 0;
        for part in ip.split('.') {
            if n == 4 {
                return Err(PrefixParseError(format!("{s}: too many octets")));
            }
            octets[n] = part
                .parse()
                .map_err(|_| PrefixParseError(format!("{s}: bad octet {part}")))?;
            n += 1;
        }
        if n != 4 {
            return Err(PrefixParseError(format!("{s}: expected 4 octets")));
        }
        Ok(Ipv4Prefix::new(u32::from_be_bytes(octets), len))
    }
}

/// A prefix-list entry: pattern network plus length bounds.
///
/// Matches prefix `p` when `pattern.covers(p)` and `min_len <= p.len <=
/// max_len`. An exact `ip prefix-list ... permit 10.0.0.0/8` (no `ge`/`le`)
/// has `min_len == max_len == 8`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PrefixRange {
    /// The pattern network.
    pub pattern: Ipv4Prefix,
    /// Minimum matching prefix length (the `ge` modifier).
    pub min_len: u8,
    /// Maximum matching prefix length (the `le` modifier).
    pub max_len: u8,
}

impl PrefixRange {
    /// An exact-match range for one prefix.
    pub fn exact(p: Ipv4Prefix) -> Self {
        PrefixRange {
            pattern: p,
            min_len: p.len,
            max_len: p.len,
        }
    }

    /// A range with explicit bounds; bounds are clamped to be coherent.
    pub fn with_bounds(pattern: Ipv4Prefix, min_len: u8, max_len: u8) -> Self {
        assert!(min_len >= pattern.len, "ge must be >= pattern length");
        assert!(max_len >= min_len && max_len <= 32, "bad le bound");
        PrefixRange {
            pattern,
            min_len,
            max_len,
        }
    }

    /// "Orlonger": the pattern prefix and anything underneath it.
    pub fn orlonger(pattern: Ipv4Prefix) -> Self {
        PrefixRange {
            pattern,
            min_len: pattern.len,
            max_len: 32,
        }
    }

    /// Does this range match the given prefix?
    pub fn matches(&self, p: &Ipv4Prefix) -> bool {
        self.pattern.covers(p) && p.len >= self.min_len && p.len <= self.max_len
    }
}

impl fmt::Display for PrefixRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pattern)?;
        if self.min_len != self.pattern.len {
            write!(f, " ge {}", self.min_len)?;
        }
        if self.max_len != self.min_len {
            write!(f, " le {}", self.max_len)?;
        }
        Ok(())
    }
}

/// A set of prefixes stored in a binary trie, supporting exact insert,
/// exact lookup, longest-prefix match and covered/covering queries.
#[derive(Clone, Debug, Default)]
pub struct PrefixTrie<T = ()> {
    root: Option<Box<TrieNode<T>>>,
    len: usize,
}

#[derive(Clone, Debug)]
struct TrieNode<T> {
    value: Option<T>,
    children: [Option<Box<TrieNode<T>>>; 2],
}

impl<T> TrieNode<T> {
    fn new() -> Self {
        TrieNode {
            value: None,
            children: [None, None],
        }
    }
}

impl<T> PrefixTrie<T> {
    /// An empty trie.
    pub fn new() -> Self {
        PrefixTrie { root: None, len: 0 }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the trie is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a value at a prefix, returning the previous value if any.
    pub fn insert(&mut self, p: Ipv4Prefix, value: T) -> Option<T> {
        let mut node = self.root.get_or_insert_with(|| Box::new(TrieNode::new()));
        for i in 0..p.len {
            let b = p.bit(i) as usize;
            node = node.children[b].get_or_insert_with(|| Box::new(TrieNode::new()));
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Exact-match lookup.
    pub fn get(&self, p: &Ipv4Prefix) -> Option<&T> {
        let mut node = self.root.as_deref()?;
        for i in 0..p.len {
            node = node.children[p.bit(i) as usize].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Longest stored prefix covering the given host address.
    pub fn longest_match(&self, addr: u32) -> Option<(Ipv4Prefix, &T)> {
        let mut node = self.root.as_deref()?;
        let mut best: Option<(Ipv4Prefix, &T)> = None;
        let mut acc: u32 = 0;
        for i in 0..=32u8 {
            if let Some(v) = &node.value {
                best = Some((Ipv4Prefix::new(acc, i), v));
            }
            if i == 32 {
                break;
            }
            let bit = (addr >> (31 - i)) & 1;
            match node.children[bit as usize].as_deref() {
                Some(next) => {
                    acc |= bit << (31 - i);
                    node = next;
                }
                None => break,
            }
        }
        best
    }

    /// True if any stored prefix covers `p` (including `p` itself).
    pub fn any_covering(&self, p: &Ipv4Prefix) -> bool {
        let mut node = match self.root.as_deref() {
            Some(n) => n,
            None => return false,
        };
        if node.value.is_some() {
            return true;
        }
        for i in 0..p.len {
            node = match node.children[p.bit(i) as usize].as_deref() {
                Some(n) => n,
                None => return false,
            };
            if node.value.is_some() {
                return true;
            }
        }
        false
    }

    /// Iterate over all stored `(prefix, value)` pairs in lexicographic
    /// order of (address, length).
    pub fn iter(&self) -> Vec<(Ipv4Prefix, &T)> {
        let mut out = Vec::with_capacity(self.len);
        fn walk<'a, T>(
            node: &'a TrieNode<T>,
            acc: u32,
            depth: u8,
            out: &mut Vec<(Ipv4Prefix, &'a T)>,
        ) {
            if let Some(v) = &node.value {
                out.push((Ipv4Prefix::new(acc, depth), v));
            }
            if depth == 32 {
                return;
            }
            if let Some(c) = node.children[0].as_deref() {
                walk(c, acc, depth + 1, out);
            }
            if let Some(c) = node.children[1].as_deref() {
                walk(c, acc | 1 << (31 - depth), depth + 1, out);
            }
        }
        if let Some(r) = self.root.as_deref() {
            walk(r, 0, 0, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display() {
        let x = p("10.0.0.0/8");
        assert_eq!(x.addr, 0x0a00_0000);
        assert_eq!(x.len, 8);
        assert_eq!(x.to_string(), "10.0.0.0/8");
        assert_eq!(p("0.0.0.0/0").to_string(), "0.0.0.0/0");
        assert_eq!(p("255.255.255.255/32").to_string(), "255.255.255.255/32");
    }

    #[test]
    fn parse_masks_host_bits() {
        assert_eq!(p("10.1.2.3/8"), p("10.0.0.0/8"));
    }

    #[test]
    fn parse_errors() {
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0/8".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0.1/8".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.x/8".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn covers() {
        assert!(p("10.0.0.0/8").covers(&p("10.1.0.0/16")));
        assert!(p("10.0.0.0/8").covers(&p("10.0.0.0/8")));
        assert!(!p("10.1.0.0/16").covers(&p("10.0.0.0/8")));
        assert!(!p("10.0.0.0/8").covers(&p("11.0.0.0/8")));
        assert!(p("0.0.0.0/0").covers(&p("192.168.1.0/24")));
    }

    #[test]
    fn range_matching() {
        let r = PrefixRange::with_bounds(p("10.0.0.0/8"), 16, 24);
        assert!(r.matches(&p("10.1.0.0/16")));
        assert!(r.matches(&p("10.1.2.0/24")));
        assert!(!r.matches(&p("10.0.0.0/8"))); // too short
        assert!(!r.matches(&p("10.1.2.128/25"))); // too long
        assert!(!r.matches(&p("11.1.0.0/16"))); // outside pattern

        let exact = PrefixRange::exact(p("192.168.0.0/16"));
        assert!(exact.matches(&p("192.168.0.0/16")));
        assert!(!exact.matches(&p("192.168.1.0/24")));

        let orlonger = PrefixRange::orlonger(p("10.0.0.0/8"));
        assert!(orlonger.matches(&p("10.0.0.0/8")));
        assert!(orlonger.matches(&p("10.200.1.0/24")));
        assert!(!orlonger.matches(&p("12.0.0.0/8")));
    }

    #[test]
    fn trie_insert_get() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(p("10.0.0.0/8"), "a"), None);
        assert_eq!(t.insert(p("10.1.0.0/16"), "b"), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), "a2"), Some("a"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&"a2"));
        assert_eq!(t.get(&p("10.1.0.0/16")), Some(&"b"));
        assert_eq!(t.get(&p("10.2.0.0/16")), None);
    }

    #[test]
    fn trie_longest_match() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), 0);
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.1.0.0/16"), 2);
        let addr = u32::from_be_bytes([10, 1, 2, 3]);
        assert_eq!(t.longest_match(addr), Some((p("10.1.0.0/16"), &2)));
        let addr2 = u32::from_be_bytes([10, 9, 9, 9]);
        assert_eq!(t.longest_match(addr2), Some((p("10.0.0.0/8"), &1)));
        let addr3 = u32::from_be_bytes([8, 8, 8, 8]);
        assert_eq!(t.longest_match(addr3), Some((p("0.0.0.0/0"), &0)));
    }

    #[test]
    fn trie_any_covering() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), ());
        assert!(t.any_covering(&p("10.0.0.0/8")));
        assert!(t.any_covering(&p("10.5.0.0/16")));
        assert!(!t.any_covering(&p("11.0.0.0/8")));
        assert!(!t.any_covering(&p("0.0.0.0/0")));
    }

    #[test]
    fn trie_iter_sorted() {
        let mut t = PrefixTrie::new();
        t.insert(p("192.168.0.0/16"), 3);
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.64.0.0/10"), 2);
        let items: Vec<Ipv4Prefix> = t.iter().into_iter().map(|(k, _)| k).collect();
        assert_eq!(
            items,
            vec![p("10.0.0.0/8"), p("10.64.0.0/10"), p("192.168.0.0/16")]
        );
    }
}
