//! Route-map intermediate representation.
//!
//! A route map is an ordered list of entries. Each entry has a sequence
//! number, a permit/deny action, a conjunction of match conditions and a
//! list of set actions. Evaluation scans entries in sequence order: the
//! first entry whose matches all hold decides the fate of the route
//! (permit: apply the sets and accept, possibly `continue`-ing to a later
//! entry; deny: reject). A route matching no entry is rejected (the
//! implicit deny), mirroring IOS semantics.
//!
//! References to named prefix-lists / community-lists / as-path ACLs are
//! resolved by the configuration front-end (`bgp-config`), so this IR is
//! self-contained — both the concrete interpreter ([`crate::interp`]) and
//! Lightyear's symbolic encoder consume it directly.

use crate::aspath::AsPathRegex;
use crate::prefix::PrefixRange;
use crate::route::{Community, Origin};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Permit or deny.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Accept matching routes (after applying set actions).
    Permit,
    /// Reject matching routes.
    Deny,
}

/// A single match condition (all conditions in an entry must hold).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum MatchCond {
    /// `match ip address prefix-list ...` — any of the ranges matches.
    /// The bool on each range is the permit flag: a prefix-list is itself
    /// an ordered permit/deny sequence, first match wins, implicit deny.
    PrefixList(Vec<(bool, PrefixRange)>),
    /// `match community ...` — the route carries *any* of these
    /// communities (`match_all = false`) or *all* of them (`true`).
    Community {
        /// Communities to look for.
        comms: Vec<Community>,
        /// Require all (true) or any (false).
        match_all: bool,
    },
    /// A resolved `ip community-list`: ordered permit/deny entries, first
    /// match wins, implicit deny. An entry matches when the route carries
    /// all of the entry's communities (or, with `exact`, when the route's
    /// community set equals the entry's set exactly).
    CommunityList {
        /// `(permit, communities)` entries in order.
        entries: Vec<(bool, Vec<Community>)>,
        /// `exact-match` semantics.
        exact: bool,
    },
    /// `match as-path <acl>` — the AS path matches any of the listed
    /// (permit, regex) entries; first match wins, implicit deny.
    AsPath(Vec<(bool, AsPathRegex)>),
    /// `match metric <n>` — MED equals the value.
    Med(u32),
    /// `match local-preference <n>`.
    LocalPref(u32),
    /// Always true (used for unconditional entries in tests/generators).
    Always,
}

/// A set (transform) action applied by a permitting entry.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SetAction {
    /// `set local-preference <n>`.
    LocalPref(u32),
    /// `set metric <n>`.
    Med(u32),
    /// `set community <c>... [additive]` — replaces all communities unless
    /// `additive` is set.
    Community {
        /// Communities to set/add.
        comms: Vec<Community>,
        /// Keep existing communities (true) or replace (false).
        additive: bool,
    },
    /// `set comm-list <list> delete` — remove the listed communities.
    DeleteCommunities(Vec<Community>),
    /// `set community none` — strip all communities.
    ClearCommunities,
    /// `set as-path prepend <asn>...`.
    PrependAsPath(Vec<u32>),
    /// `set ip next-hop <addr>`.
    NextHop(u32),
    /// `set origin igp|egp|incomplete`.
    Origin(Origin),
}

/// One route-map entry.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RouteMapEntry {
    /// Sequence number (entries are evaluated in increasing order).
    pub seq: u32,
    /// Permit or deny.
    pub action: Action,
    /// Conjunction of match conditions (empty = match everything).
    pub matches: Vec<MatchCond>,
    /// Transformations applied on permit.
    pub sets: Vec<SetAction>,
    /// `continue [seq]`: after a permit, continue evaluation at the given
    /// sequence number (or the next entry when `Some(None)`).
    pub continue_to: Option<Option<u32>>,
}

impl RouteMapEntry {
    /// A permit-everything entry with no transformations.
    pub fn permit(seq: u32) -> Self {
        RouteMapEntry {
            seq,
            action: Action::Permit,
            matches: Vec::new(),
            sets: Vec::new(),
            continue_to: None,
        }
    }

    /// A deny-everything entry.
    pub fn deny(seq: u32) -> Self {
        RouteMapEntry {
            action: Action::Deny,
            ..Self::permit(seq)
        }
    }

    /// Builder: add a match condition.
    pub fn matching(mut self, m: MatchCond) -> Self {
        self.matches.push(m);
        self
    }

    /// Builder: add a set action.
    pub fn setting(mut self, s: SetAction) -> Self {
        self.sets.push(s);
        self
    }

    /// Builder: continue to a specific (or the next) sequence.
    pub fn continuing(mut self, seq: Option<u32>) -> Self {
        self.continue_to = Some(seq);
        self
    }
}

/// A named, ordered route map.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RouteMap {
    /// The route-map name.
    pub name: String,
    /// Entries sorted by sequence number.
    pub entries: Vec<RouteMapEntry>,
}

impl RouteMap {
    /// An empty route map (rejects everything via the implicit deny).
    pub fn new(name: impl Into<String>) -> Self {
        RouteMap {
            name: name.into(),
            entries: Vec::new(),
        }
    }

    /// A permit-all route map (the identity transform).
    pub fn permit_all(name: impl Into<String>) -> Self {
        let mut rm = RouteMap::new(name);
        rm.push(RouteMapEntry::permit(10));
        rm
    }

    /// Add an entry, keeping entries sorted by sequence number.
    pub fn push(&mut self, e: RouteMapEntry) {
        self.entries.push(e);
        self.entries.sort_by_key(|e| e.seq);
    }

    /// Index of the entry with the given sequence number.
    pub fn index_of_seq(&self, seq: u32) -> Option<usize> {
        self.entries.iter().position(|e| e.seq == seq)
    }

    /// Index of the first entry with sequence number >= `seq`.
    pub fn index_of_seq_at_least(&self, seq: u32) -> Option<usize> {
        self.entries.iter().position(|e| e.seq >= seq)
    }
}

impl fmt::Display for RouteMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(
                f,
                "route-map {} {} {}",
                self.name,
                match e.action {
                    Action::Permit => "permit",
                    Action::Deny => "deny",
                },
                e.seq
            )?;
            for m in &e.matches {
                writeln!(f, " match {m:?}")?;
            }
            for s in &e.sets {
                writeln!(f, " set {s:?}")?;
            }
            if let Some(c) = &e.continue_to {
                match c {
                    Some(s) => writeln!(f, " continue {s}")?,
                    None => writeln!(f, " continue")?,
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::Ipv4Prefix;

    #[test]
    fn entries_stay_sorted() {
        let mut rm = RouteMap::new("T");
        rm.push(RouteMapEntry::permit(30));
        rm.push(RouteMapEntry::permit(10));
        rm.push(RouteMapEntry::deny(20));
        let seqs: Vec<u32> = rm.entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![10, 20, 30]);
    }

    #[test]
    fn seq_lookup() {
        let mut rm = RouteMap::new("T");
        rm.push(RouteMapEntry::permit(10));
        rm.push(RouteMapEntry::permit(30));
        assert_eq!(rm.index_of_seq(10), Some(0));
        assert_eq!(rm.index_of_seq(30), Some(1));
        assert_eq!(rm.index_of_seq(20), None);
        assert_eq!(rm.index_of_seq_at_least(20), Some(1));
        assert_eq!(rm.index_of_seq_at_least(31), None);
    }

    #[test]
    fn builders() {
        let p: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let e = RouteMapEntry::permit(10)
            .matching(MatchCond::PrefixList(vec![(true, PrefixRange::exact(p))]))
            .setting(SetAction::LocalPref(200))
            .continuing(None);
        assert_eq!(e.matches.len(), 1);
        assert_eq!(e.sets.len(), 1);
        assert_eq!(e.continue_to, Some(None));
    }

    #[test]
    fn display_smoke() {
        let mut rm = RouteMap::permit_all("OUT");
        rm.push(RouteMapEntry::deny(20));
        let s = rm.to_string();
        assert!(s.contains("route-map OUT permit 10"));
        assert!(s.contains("route-map OUT deny 20"));
    }
}
