//! A message-passing BGP simulator.
//!
//! Produces concrete traces that are valid by construction (they satisfy
//! the Appendix-A axioms, which `trace::check_safety_axioms` verifies in
//! tests). The simulator is used to differentially test Lightyear: every
//! invariant the verifier proves must hold on every simulated trace.
//!
//! The simulator is deliberately *stricter* than the paper's trace model —
//! it implements split-horizon, iBGP non-readvertisement and eBGP loop
//! prevention — because the verifier over-approximates the set of valid
//! traces; any trace the simulator can produce is valid in the model.

use crate::policy::Policy;
use crate::prefix::Ipv4Prefix;
use crate::route::Route;
use crate::topology::{EdgeId, NodeId, Topology};
use crate::trace::{Event, Trace};
use std::cmp::Ordering;
use std::collections::{HashMap, VecDeque};

/// Simulator options.
#[derive(Clone, Copy, Debug)]
pub struct SimOptions {
    /// Drop received routes whose AS path contains the receiver's ASN
    /// (standard eBGP loop prevention).
    pub loop_prevention: bool,
    /// Do not re-advertise iBGP-learned routes to iBGP peers.
    pub ibgp_no_readvertise: bool,
    /// Do not advertise a route back to the session it was learned from.
    pub split_horizon: bool,
    /// Hard cap on delivered messages (guards against policy-induced
    /// oscillation).
    pub max_messages: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            loop_prevention: true,
            ibgp_no_readvertise: true,
            split_horizon: true,
            max_messages: 1_000_000,
        }
    }
}

/// Outcome of a simulation.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// The produced event trace.
    pub trace: Trace,
    /// Best route per (router, prefix) at quiescence.
    pub best: HashMap<(NodeId, Ipv4Prefix), Route>,
    /// Routes received by external neighbors, keyed by the delivering edge.
    pub external_rib: HashMap<EdgeId, Vec<Route>>,
    /// False if `max_messages` was hit before quiescence.
    pub converged: bool,
}

#[derive(Clone, Debug, Default)]
struct RibIn {
    /// Post-import route per incoming edge.
    entries: HashMap<EdgeId, Route>,
}

/// Simulate BGP message exchange.
///
/// `announcements` are the routes external neighbors send, given as
/// `(edge, route)` pairs where the edge's source must be external.
pub fn simulate(
    topo: &Topology,
    policy: &Policy,
    announcements: &[(EdgeId, Route)],
    opts: SimOptions,
) -> SimResult {
    let mut trace = Trace::new();
    let mut queue: VecDeque<(EdgeId, Route)> = VecDeque::new();

    // Seed: originations from internal routers.
    let mut origin_edges: Vec<EdgeId> = policy.originate.keys().copied().collect();
    origin_edges.sort();
    for e in origin_edges {
        if topo.node(topo.edge(e).src).external {
            continue; // external "originations" must come via announcements
        }
        for r in policy.originated(e) {
            trace.push(Event::Frwd {
                edge: e,
                route: r.clone(),
            });
            queue.push_back((e, r.clone()));
        }
    }
    // Seed: external announcements.
    for (e, r) in announcements {
        debug_assert!(
            topo.node(topo.edge(*e).src).external,
            "announcements must originate at external nodes"
        );
        queue.push_back((*e, r.clone()));
    }

    // adj-rib-in and best route per (router, prefix).
    let mut rib_in: HashMap<(NodeId, Ipv4Prefix), RibIn> = HashMap::new();
    // Best route and the edge it was learned on.
    let mut best: HashMap<(NodeId, Ipv4Prefix), (Route, EdgeId)> = HashMap::new();
    let mut external_rib: HashMap<EdgeId, Vec<Route>> = HashMap::new();

    let mut delivered = 0usize;
    let mut converged = true;
    while let Some((edge, route)) = queue.pop_front() {
        if delivered >= opts.max_messages {
            converged = false;
            break;
        }
        delivered += 1;
        trace.push(Event::Recv {
            edge,
            route: route.clone(),
        });
        let dst = topo.edge(edge).dst;
        if topo.node(dst).external {
            external_rib.entry(edge).or_default().push(route);
            continue;
        }
        // Import filter.
        let Some(imported) = policy.import_route(edge, &route) else {
            continue;
        };
        // eBGP loop prevention.
        if opts.loop_prevention
            && topo.is_ebgp(edge)
            && imported.as_path_contains(topo.node(dst).asn)
        {
            continue;
        }
        let key = (dst, imported.prefix);
        let rib = rib_in.entry(key).or_default();
        if rib.entries.get(&edge) == Some(&imported) {
            continue; // no change
        }
        rib.entries.insert(edge, imported);

        // Recompute best route (deterministic: preference, then edge id).
        let new_best = rib
            .entries
            .iter()
            .max_by(|(ea, ra), (eb, rb)| {
                ra.prefer(rb).then_with(|| eb.cmp(ea)) // lower edge id wins ties
            })
            .map(|(e, r)| (r.clone(), *e));
        let Some((best_route, learned_on)) = new_best else {
            continue;
        };
        if best.get(&key).map(|(r, _)| r) == Some(&best_route) {
            continue; // selection unchanged
        }
        best.insert(key, (best_route.clone(), learned_on));
        trace.push(Event::Slct {
            node: dst,
            route: best_route.clone(),
        });

        // Re-advertise to neighbors.
        for &out in topo.out_edges(dst) {
            let out_edge = topo.edge(out);
            if opts.split_horizon && out_edge.dst == topo.edge(learned_on).src {
                continue;
            }
            if opts.ibgp_no_readvertise && !topo.is_ebgp(learned_on) && !topo.is_ebgp(out) {
                continue;
            }
            if let Some(exported) = policy.export_route(out, &best_route) {
                trace.push(Event::Frwd {
                    edge: out,
                    route: exported.clone(),
                });
                queue.push_back((out, exported));
            }
        }
    }

    let best_routes = best
        .into_iter()
        .map(|(k, (r, _))| (k, r))
        .collect::<HashMap<_, _>>();
    SimResult {
        trace,
        best: best_routes,
        external_rib,
        converged,
    }
}

/// Convenience: the order in which two candidate routes are compared,
/// exposed for tests of the decision process.
pub fn decision_order(a: &Route, b: &Route) -> Ordering {
    a.prefer(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::Community;
    use crate::routemap::{MatchCond, RouteMap, RouteMapEntry, SetAction};
    use crate::trace::check_safety_axioms;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn c(s: &str) -> Community {
        s.parse().unwrap()
    }

    /// The Figure-1 network: R1, R2, R3 internal (AS 65000); ISP1 on R1,
    /// ISP2 on R2, Customer on R3; internal full mesh.
    fn figure1() -> (Topology, Policy) {
        let mut t = Topology::new();
        let r1 = t.add_router("R1", 65000);
        let r2 = t.add_router("R2", 65000);
        let r3 = t.add_router("R3", 65000);
        let isp1 = t.add_external("ISP1", 100);
        let isp2 = t.add_external("ISP2", 200);
        let cust = t.add_external("Customer", 300);
        t.add_session(r1, r2);
        t.add_session(r1, r3);
        t.add_session(r2, r3);
        t.add_session(isp1, r1);
        t.add_session(isp2, r2);
        t.add_session(cust, r3);

        let mut pol = Policy::new();
        // R1 import from ISP1: tag 100:1.
        let mut m = RouteMap::new("FROM-ISP1");
        m.push(RouteMapEntry::permit(10).setting(SetAction::Community {
            comms: vec![c("100:1")],
            additive: true,
        }));
        pol.set_import(t.edge_between(isp1, r1).unwrap(), m);
        // R3 import from Customer: strip communities.
        let mut m = RouteMap::new("FROM-CUST");
        m.push(RouteMapEntry::permit(10).setting(SetAction::ClearCommunities));
        pol.set_import(t.edge_between(cust, r3).unwrap(), m);
        // R2 export to ISP2: drop routes tagged 100:1.
        let mut m = RouteMap::new("TO-ISP2");
        m.push(RouteMapEntry::deny(10).matching(MatchCond::Community {
            comms: vec![c("100:1")],
            match_all: false,
        }));
        m.push(RouteMapEntry::permit(20));
        pol.set_export(t.edge_between(r2, isp2).unwrap(), m);
        (t, pol)
    }

    #[test]
    fn no_transit_holds_in_simulation() {
        let (t, pol) = figure1();
        let isp1 = t.node_by_name("ISP1").unwrap();
        let r1 = t.node_by_name("R1").unwrap();
        let isp1_r1 = t.edge_between(isp1, r1).unwrap();
        let r2 = t.node_by_name("R2").unwrap();
        let isp2 = t.node_by_name("ISP2").unwrap();
        let r2_isp2 = t.edge_between(r2, isp2).unwrap();

        let ann = Route::new(p("8.0.0.0/8")).with_as_path(vec![100]);
        let res = simulate(&t, &pol, &[(isp1_r1, ann)], SimOptions::default());
        assert!(res.converged);
        // Nothing tagged 100:1 (i.e. nothing from ISP1) reaches ISP2.
        assert!(!res.external_rib.contains_key(&r2_isp2));
        // The trace is valid.
        assert!(check_safety_axioms(&res.trace, &t, &pol).is_ok());
    }

    #[test]
    fn customer_route_reaches_isp2() {
        let (t, pol) = figure1();
        let cust = t.node_by_name("Customer").unwrap();
        let r3 = t.node_by_name("R3").unwrap();
        let cust_r3 = t.edge_between(cust, r3).unwrap();
        let r2 = t.node_by_name("R2").unwrap();
        let isp2 = t.node_by_name("ISP2").unwrap();
        let r2_isp2 = t.edge_between(r2, isp2).unwrap();

        let ann = Route::new(p("203.0.113.0/24")).with_as_path(vec![300]);
        let res = simulate(&t, &pol, &[(cust_r3, ann)], SimOptions::default());
        assert!(res.converged);
        let got = res
            .external_rib
            .get(&r2_isp2)
            .expect("route must reach ISP2");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].prefix, p("203.0.113.0/24"));
        assert!(check_safety_axioms(&res.trace, &t, &pol).is_ok());
    }

    #[test]
    fn best_route_selection_prefers_local_pref() {
        // One router, two externals announcing the same prefix.
        let mut t = Topology::new();
        let r = t.add_router("R", 65000);
        let a = t.add_external("A", 1);
        let b = t.add_external("B", 2);
        t.add_session(a, r);
        t.add_session(b, r);
        let a_r = t.edge_between(a, r).unwrap();
        let b_r = t.edge_between(b, r).unwrap();

        let mut pol = Policy::new();
        let mut m = RouteMap::new("FROM-B");
        m.push(RouteMapEntry::permit(10).setting(SetAction::LocalPref(200)));
        pol.set_import(b_r, m);

        let pfx = p("10.0.0.0/8");
        let ra = Route::new(pfx).with_as_path(vec![1]).with_next_hop(1);
        let rb = Route::new(pfx).with_as_path(vec![2, 3, 4]).with_next_hop(2);
        let res = simulate(&t, &pol, &[(a_r, ra), (b_r, rb)], SimOptions::default());
        // B's route wins despite longer path because of local-pref 200.
        let best = res.best.get(&(r, pfx)).unwrap();
        assert_eq!(best.local_pref, 200);
        assert_eq!(best.next_hop, 2);
    }

    #[test]
    fn loop_prevention_drops_own_asn() {
        let mut t = Topology::new();
        let r = t.add_router("R", 65000);
        let a = t.add_external("A", 1);
        t.add_session(a, r);
        let a_r = t.edge_between(a, r).unwrap();
        let pol = Policy::new();

        let looped = Route::new(p("10.0.0.0/8")).with_as_path(vec![1, 65000, 2]);
        let res = simulate(&t, &pol, &[(a_r, looped)], SimOptions::default());
        assert!(res.best.is_empty());

        let opts = SimOptions {
            loop_prevention: false,
            ..SimOptions::default()
        };
        let looped = Route::new(p("10.0.0.0/8")).with_as_path(vec![1, 65000, 2]);
        let res = simulate(&t, &pol, &[(a_r, looped)], opts);
        assert_eq!(res.best.len(), 1);
    }

    #[test]
    fn ibgp_no_readvertise() {
        // chain: X(ext) - R1 - R2 - R3 all same AS; iBGP line (not mesh).
        let mut t = Topology::new();
        let r1 = t.add_router("R1", 65000);
        let r2 = t.add_router("R2", 65000);
        let r3 = t.add_router("R3", 65000);
        let x = t.add_external("X", 1);
        t.add_session(x, r1);
        t.add_session(r1, r2);
        t.add_session(r2, r3);
        let x_r1 = t.edge_between(x, r1).unwrap();
        let pol = Policy::new();

        let ann = Route::new(p("10.0.0.0/8")).with_as_path(vec![1]);
        let res = simulate(&t, &pol, &[(x_r1, ann)], SimOptions::default());
        // R2 learns it over iBGP but must not pass it on to R3.
        assert!(res.best.contains_key(&(r2, p("10.0.0.0/8"))));
        assert!(!res.best.contains_key(&(r3, p("10.0.0.0/8"))));
    }

    #[test]
    fn origination_is_forwarded() {
        let mut t = Topology::new();
        let r1 = t.add_router("R1", 65000);
        let x = t.add_external("X", 1);
        t.add_session(r1, x);
        let r1_x = t.edge_between(r1, x).unwrap();
        let mut pol = Policy::new();
        pol.add_origination(r1_x, Route::new(p("198.51.100.0/24")));

        let res = simulate(&t, &pol, &[], SimOptions::default());
        let got = res.external_rib.get(&r1_x).unwrap();
        assert_eq!(got[0].prefix, p("198.51.100.0/24"));
        assert!(check_safety_axioms(&res.trace, &t, &pol).is_ok());
    }

    #[test]
    fn simulation_is_deterministic() {
        let (t, pol) = figure1();
        let isp1 = t.node_by_name("ISP1").unwrap();
        let r1 = t.node_by_name("R1").unwrap();
        let isp1_r1 = t.edge_between(isp1, r1).unwrap();
        let ann = Route::new(p("8.0.0.0/8")).with_as_path(vec![100]);
        let res1 = simulate(&t, &pol, &[(isp1_r1, ann.clone())], SimOptions::default());
        let res2 = simulate(&t, &pol, &[(isp1_r1, ann)], SimOptions::default());
        assert_eq!(res1.trace.events, res2.trace.events);
    }
}
