//! BGP traces (§3.2) and the validity axioms of Appendix A.
//!
//! A trace is a sequence of `recv` / `slct` / `frwd` events. The paper's
//! correctness proofs quantify over all *valid* traces; this module lets us
//! check concrete traces (produced by the simulator) against the safety
//! axioms, closing the loop between the formal model and the verifier in
//! differential tests.

use crate::policy::Policy;
use crate::route::Route;
use crate::topology::{EdgeId, NodeId, Topology};
use std::fmt;

/// A BGP event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// `recv(N -> R, r)`: `R` receives route `r` from neighbor `N`.
    Recv {
        /// The edge `N -> R`.
        edge: EdgeId,
        /// The received route.
        route: Route,
    },
    /// `slct(R, r)`: `R` selects `r` as best and installs it.
    Slct {
        /// The selecting router.
        node: NodeId,
        /// The selected route.
        route: Route,
    },
    /// `frwd(R -> N, r)`: `R` forwards `r` to neighbor `N`.
    Frwd {
        /// The edge `R -> N`.
        edge: EdgeId,
        /// The forwarded route.
        route: Route,
    },
}

impl Event {
    /// The route carried by the event.
    pub fn route(&self) -> &Route {
        match self {
            Event::Recv { route, .. } | Event::Slct { route, .. } | Event::Frwd { route, .. } => {
                route
            }
        }
    }
}

/// A sequence of events.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// The events, in order.
    pub events: Vec<Event>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Append an event.
    pub fn push(&mut self, e: Event) {
        self.events.push(e);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events occurred.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A violation of a safety axiom by a concrete trace.
#[derive(Clone, Debug)]
pub struct AxiomViolation {
    /// Index of the offending event.
    pub index: usize,
    /// Which axiom was violated.
    pub axiom: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for AxiomViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "event #{}: axiom {} violated: {}",
            self.index, self.axiom, self.detail
        )
    }
}

/// Check the safety axioms of Appendix A against a concrete trace:
///
/// 1. `recv(N -> R, r)` requires `N` external or an earlier
///    `frwd(N -> R, r)`.
/// 2. `slct(R, r)` requires an earlier `recv(N -> R, r')` with
///    `r = Import(N -> R, r')`.
/// 3. `frwd(R -> N, r)` requires `r ∈ Originate(R -> N)` or an earlier
///    `slct(R, r')` with `r = Export(R -> N, r')`.
pub fn check_safety_axioms(
    trace: &Trace,
    topo: &Topology,
    policy: &Policy,
) -> Result<(), AxiomViolation> {
    for (k, ev) in trace.events.iter().enumerate() {
        match ev {
            Event::Recv { edge, route } => {
                let e = topo.edge(*edge);
                if topo.node(e.src).external {
                    continue; // axiom 1a
                }
                let justified = trace.events[..k].iter().any(|prev| {
                    matches!(prev, Event::Frwd { edge: pe, route: pr }
                        if pe == edge && pr == route)
                });
                if !justified {
                    return Err(AxiomViolation {
                        index: k,
                        axiom: "recv",
                        detail: format!(
                            "recv on {} of {route} with no earlier matching frwd",
                            topo.edge_name(*edge)
                        ),
                    });
                }
            }
            Event::Slct { node, route } => {
                let justified = trace.events[..k].iter().any(|prev| {
                    if let Event::Recv {
                        edge,
                        route: recv_r,
                    } = prev
                    {
                        let e = topo.edge(*edge);
                        e.dst == *node && policy.import_route(*edge, recv_r).as_ref() == Some(route)
                    } else {
                        false
                    }
                });
                if !justified {
                    return Err(AxiomViolation {
                        index: k,
                        axiom: "slct",
                        detail: format!(
                            "slct at {} of {route} with no earlier import-justifying recv",
                            topo.node(*node).name
                        ),
                    });
                }
            }
            Event::Frwd { edge, route } => {
                if policy.originated(*edge).contains(route) {
                    continue; // axiom 3a
                }
                let e = topo.edge(*edge);
                let justified = trace.events[..k].iter().any(|prev| {
                    if let Event::Slct { node, route: sel_r } = prev {
                        *node == e.src && policy.export_route(*edge, sel_r).as_ref() == Some(route)
                    } else {
                        false
                    }
                });
                if !justified {
                    return Err(AxiomViolation {
                        index: k,
                        axiom: "frwd",
                        detail: format!(
                            "frwd on {} of {route} neither originated nor export-justified",
                            topo.edge_name(*edge)
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Check the liveness axioms of Appendix A against a **quiescent**
/// concrete trace (one where no more events are pending, as produced by a
/// converged simulation):
///
/// 1. `slct(R, r)` with `r' = Export(R -> N, r) ≠ Reject` demands a later
///    `frwd(R -> N, r')` — unless a *later* `slct(R, r'')` for the same
///    prefix supersedes it (the simulator re-advertises only the final
///    choice) or the forwarding is suppressed by split-horizon/iBGP rules
///    (pass `strict = false` to tolerate those, matching the simulator's
///    options).
/// 2. `r ∈ Originate(R -> N)` demands a `frwd(R -> N, r)`.
/// 3. `frwd(R -> N, r)` demands a later `recv(N -> R, r)` when the link
///    is up (we assume no failures here).
///
/// Axiom 4 (best-route selection) is checked structurally: for every
/// router and prefix, the *last* `slct` must be weakly preferred over the
/// import of every received same-prefix route that the import filter
/// accepts.
pub fn check_liveness_axioms(
    trace: &Trace,
    topo: &Topology,
    policy: &Policy,
) -> Result<(), AxiomViolation> {
    // Axiom 2: originations are forwarded.
    for (&edge, routes) in &policy.originate {
        if topo.node(topo.edge(edge).src).external {
            continue;
        }
        for r in routes {
            let found = trace
                .events
                .iter()
                .any(|e| matches!(e, Event::Frwd { edge: fe, route } if *fe == edge && route == r));
            if !found {
                return Err(AxiomViolation {
                    index: usize::MAX,
                    axiom: "liveness-originate",
                    detail: format!("originated {r} never forwarded on {}", topo.edge_name(edge)),
                });
            }
        }
    }
    // Axiom 3: forwarded routes are received (no failures assumed).
    for (k, ev) in trace.events.iter().enumerate() {
        if let Event::Frwd { edge, route } = ev {
            let delivered = trace.events[k + 1..].iter().any(
                |e| matches!(e, Event::Recv { edge: re, route: rr } if re == edge && rr == route),
            );
            if !delivered {
                return Err(AxiomViolation {
                    index: k,
                    axiom: "liveness-frwd",
                    detail: format!(
                        "frwd on {} of {route} never delivered",
                        topo.edge_name(*edge)
                    ),
                });
            }
        }
    }
    // Axiom 4 (quiescent form): the final selection at each router is
    // weakly preferred over every acceptable received candidate.
    use std::collections::HashMap;
    let mut last_slct: HashMap<(NodeId, crate::prefix::Ipv4Prefix), &Route> = HashMap::new();
    for ev in &trace.events {
        if let Event::Slct { node, route } = ev {
            last_slct.insert((*node, route.prefix), route);
        }
    }
    for (k, ev) in trace.events.iter().enumerate() {
        let Event::Recv { edge, route } = ev else {
            continue;
        };
        let dst = topo.edge(*edge).dst;
        if topo.node(dst).external {
            continue;
        }
        let Some(imported) = policy.import_route(*edge, route) else {
            continue;
        };
        // Loop-prevented candidates are legitimately ignored.
        if topo.is_ebgp(*edge) && imported.as_path_contains(topo.node(dst).asn) {
            continue;
        }
        match last_slct.get(&(dst, imported.prefix)) {
            Some(best) => {
                if best.prefer(&imported) == std::cmp::Ordering::Less {
                    return Err(AxiomViolation {
                        index: k,
                        axiom: "liveness-slct",
                        detail: format!(
                            "{} selected {best} but a preferred candidate {imported} was receivable",
                            topo.node(dst).name
                        ),
                    });
                }
            }
            None => {
                return Err(AxiomViolation {
                    index: k,
                    axiom: "liveness-slct",
                    detail: format!(
                        "{} accepted {imported} but never selected any route for {}",
                        topo.node(dst).name,
                        imported.prefix
                    ),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::Ipv4Prefix;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn setup() -> (Topology, Policy, EdgeId, EdgeId, NodeId) {
        let mut t = Topology::new();
        let r1 = t.add_router("R1", 65000);
        let r2 = t.add_router("R2", 65000);
        let x = t.add_external("X", 174);
        t.add_session(x, r1);
        t.add_session(r1, r2);
        let x_r1 = t.edge_between(x, r1).unwrap();
        let r1_r2 = t.edge_between(r1, r2).unwrap();
        (t, Policy::new(), x_r1, r1_r2, r1)
    }

    #[test]
    fn valid_trace_passes() {
        let (t, pol, x_r1, r1_r2, r1) = setup();
        let r = Route::new(p("10.0.0.0/8"));
        let mut tr = Trace::new();
        tr.push(Event::Recv {
            edge: x_r1,
            route: r.clone(),
        });
        tr.push(Event::Slct {
            node: r1,
            route: r.clone(),
        });
        tr.push(Event::Frwd {
            edge: r1_r2,
            route: r.clone(),
        });
        tr.push(Event::Recv {
            edge: r1_r2,
            route: r,
        });
        assert!(check_safety_axioms(&tr, &t, &pol).is_ok());
    }

    #[test]
    fn recv_from_external_always_allowed() {
        let (t, pol, x_r1, _, _) = setup();
        let mut tr = Trace::new();
        tr.push(Event::Recv {
            edge: x_r1,
            route: Route::new(p("1.0.0.0/8")),
        });
        assert!(check_safety_axioms(&tr, &t, &pol).is_ok());
    }

    #[test]
    fn recv_on_internal_edge_needs_frwd() {
        let (t, pol, _, r1_r2, _) = setup();
        let mut tr = Trace::new();
        tr.push(Event::Recv {
            edge: r1_r2,
            route: Route::new(p("1.0.0.0/8")),
        });
        let err = check_safety_axioms(&tr, &t, &pol).unwrap_err();
        assert_eq!(err.axiom, "recv");
    }

    #[test]
    fn slct_needs_justifying_recv() {
        let (t, pol, _, _, r1) = setup();
        let mut tr = Trace::new();
        tr.push(Event::Slct {
            node: r1,
            route: Route::new(p("1.0.0.0/8")),
        });
        let err = check_safety_axioms(&tr, &t, &pol).unwrap_err();
        assert_eq!(err.axiom, "slct");
    }

    #[test]
    fn frwd_needs_slct_or_origination() {
        let (t, mut pol, _, r1_r2, _) = setup();
        let r = Route::new(p("1.0.0.0/8"));
        let mut tr = Trace::new();
        tr.push(Event::Frwd {
            edge: r1_r2,
            route: r.clone(),
        });
        assert_eq!(
            check_safety_axioms(&tr, &t, &pol).unwrap_err().axiom,
            "frwd"
        );

        // Origination justifies it.
        pol.add_origination(r1_r2, r.clone());
        assert!(check_safety_axioms(&tr, &t, &pol).is_ok());
    }

    #[test]
    fn liveness_axioms_on_simulated_trace() {
        use crate::sim::{simulate, SimOptions};
        let (t, pol, x_r1, _, _) = setup();
        let ann = Route::new(p("10.0.0.0/8")).with_as_path(vec![174]);
        let res = simulate(&t, &pol, &[(x_r1, ann)], SimOptions::default());
        assert!(res.converged);
        check_liveness_axioms(&res.trace, &t, &pol).expect("quiescent trace satisfies liveness");
    }

    #[test]
    fn liveness_frwd_without_recv_violates() {
        let (t, mut pol, _, r1_r2, _) = setup();
        let r = Route::new(p("10.0.0.0/8"));
        pol.add_origination(r1_r2, r.clone());
        let mut tr = Trace::new();
        tr.push(Event::Frwd {
            edge: r1_r2,
            route: r,
        });
        let err = check_liveness_axioms(&tr, &t, &pol).unwrap_err();
        assert_eq!(err.axiom, "liveness-frwd");
    }

    #[test]
    fn liveness_unforwarded_origination_violates() {
        let (t, mut pol, _, r1_r2, _) = setup();
        pol.add_origination(r1_r2, Route::new(p("10.0.0.0/8")));
        let tr = Trace::new();
        let err = check_liveness_axioms(&tr, &t, &pol).unwrap_err();
        assert_eq!(err.axiom, "liveness-originate");
    }

    #[test]
    fn liveness_ignoring_better_candidate_violates() {
        let (t, pol, x_r1, _, r1) = setup();
        let good = Route::new(p("10.0.0.0/8")).with_local_pref(200);
        let bad = Route::new(p("10.0.0.0/8")).with_local_pref(50);
        let mut tr = Trace::new();
        tr.push(Event::Recv {
            edge: x_r1,
            route: good,
        });
        tr.push(Event::Recv {
            edge: x_r1,
            route: bad.clone(),
        });
        tr.push(Event::Slct {
            node: r1,
            route: bad,
        });
        let err = check_liveness_axioms(&tr, &t, &pol).unwrap_err();
        assert_eq!(err.axiom, "liveness-slct");
    }

    #[test]
    fn slct_respects_import_transform() {
        use crate::routemap::{RouteMap, RouteMapEntry, SetAction};
        let (t, mut pol, x_r1, _, r1) = setup();
        let mut m = RouteMap::new("IN");
        m.push(RouteMapEntry::permit(10).setting(SetAction::LocalPref(200)));
        pol.set_import(x_r1, m);

        let sent = Route::new(p("1.0.0.0/8"));
        let mut tr = Trace::new();
        tr.push(Event::Recv {
            edge: x_r1,
            route: sent.clone(),
        });
        // Selecting the untransformed route violates the slct axiom.
        tr.push(Event::Slct {
            node: r1,
            route: sent.clone(),
        });
        assert_eq!(
            check_safety_axioms(&tr, &t, &pol).unwrap_err().axiom,
            "slct"
        );

        // Selecting the transformed route is fine.
        let mut tr2 = Trace::new();
        tr2.push(Event::Recv {
            edge: x_r1,
            route: sent.clone(),
        });
        tr2.push(Event::Slct {
            node: r1,
            route: sent.with_local_pref(200),
        });
        assert!(check_safety_axioms(&tr2, &t, &pol).is_ok());
    }
}
