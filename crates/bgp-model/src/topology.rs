//! BGP network topology (§3.1): configured routers, external neighbors,
//! and directed edges representing BGP peering sessions.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a node (router or external neighbor).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a directed edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A node in the topology.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Node {
    /// Human-readable router name.
    pub name: String,
    /// The node's AS number.
    pub asn: u32,
    /// True for external neighbors (no configuration provided).
    pub external: bool,
}

/// A directed edge `src -> dst` (one direction of a peering session).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Edge {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
}

/// The BGP topology graph.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    #[serde(skip)]
    name_index: HashMap<String, NodeId>,
    #[serde(skip)]
    edge_index: HashMap<(NodeId, NodeId), EdgeId>,
    #[serde(skip)]
    out_edges: HashMap<NodeId, Vec<EdgeId>>,
    #[serde(skip)]
    in_edges: HashMap<NodeId, Vec<EdgeId>>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Rebuild the derived indexes (needed after deserialization).
    pub fn rebuild_indexes(&mut self) {
        self.name_index.clear();
        self.edge_index.clear();
        self.out_edges.clear();
        self.in_edges.clear();
        for (i, n) in self.nodes.iter().enumerate() {
            self.name_index.insert(n.name.clone(), NodeId(i as u32));
        }
        for (i, e) in self.edges.iter().enumerate() {
            let id = EdgeId(i as u32);
            self.edge_index.insert((e.src, e.dst), id);
            self.out_edges.entry(e.src).or_default().push(id);
            self.in_edges.entry(e.dst).or_default().push(id);
        }
    }

    /// Add an internal (configured) router. Panics on duplicate names.
    pub fn add_router(&mut self, name: impl Into<String>, asn: u32) -> NodeId {
        self.add_node(name.into(), asn, false)
    }

    /// Add an external neighbor.
    pub fn add_external(&mut self, name: impl Into<String>, asn: u32) -> NodeId {
        self.add_node(name.into(), asn, true)
    }

    fn add_node(&mut self, name: String, asn: u32, external: bool) -> NodeId {
        assert!(
            !self.name_index.contains_key(&name),
            "duplicate node name {name:?}"
        );
        let id = NodeId(self.nodes.len() as u32);
        self.name_index.insert(name.clone(), id);
        self.nodes.push(Node {
            name,
            asn,
            external,
        });
        id
    }

    /// Add a directed edge. Panics on duplicates.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId) -> EdgeId {
        assert!(
            !self.edge_index.contains_key(&(src, dst)),
            "duplicate edge {src:?} -> {dst:?}"
        );
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { src, dst });
        self.edge_index.insert((src, dst), id);
        self.out_edges.entry(src).or_default().push(id);
        self.in_edges.entry(dst).or_default().push(id);
        id
    }

    /// Add a bidirectional peering session (both directed edges).
    pub fn add_session(&mut self, a: NodeId, b: NodeId) -> (EdgeId, EdgeId) {
        (self.add_edge(a, b), self.add_edge(b, a))
    }

    /// Node data.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Edge data.
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id.0 as usize]
    }

    /// Look up a node by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    /// Look up a directed edge by endpoints.
    pub fn edge_between(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.edge_index.get(&(src, dst)).copied()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Ids of configured (internal) routers.
    pub fn router_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(|&n| !self.node(n).external)
    }

    /// Ids of external neighbors.
    pub fn external_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(|&n| self.node(n).external)
    }

    /// Outgoing edges of a node.
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        self.out_edges.get(&n).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Incoming edges of a node.
    pub fn in_edges(&self, n: NodeId) -> &[EdgeId] {
        self.in_edges.get(&n).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// True when `e` is an eBGP edge (endpoint AS numbers differ).
    pub fn is_ebgp(&self, e: EdgeId) -> bool {
        let edge = self.edge(e);
        self.node(edge.src).asn != self.node(edge.dst).asn
    }

    /// Human-readable rendering of an edge, e.g. `R1 -> ISP1`.
    pub fn edge_name(&self, e: EdgeId) -> String {
        let edge = self.edge(e);
        format!(
            "{} -> {}",
            self.node(edge.src).name,
            self.node(edge.dst).name
        )
    }

    /// Validate a path of alternating node/edge locations as used in
    /// liveness properties: `n_0, e(n_0,n_1), n_1, ..., n_k`.
    /// Returns the edge ids along the way.
    pub fn path_edges(&self, nodes: &[NodeId]) -> Option<Vec<EdgeId>> {
        nodes
            .windows(2)
            .map(|w| self.edge_between(w[0], w[1]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_router("A", 65000);
        let b = t.add_router("B", 65000);
        let x = t.add_external("X", 174);
        t.add_session(a, b);
        t.add_session(a, x);
        (t, a, b, x)
    }

    #[test]
    fn build_and_lookup() {
        let (t, a, b, x) = tri();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_edges(), 4);
        assert_eq!(t.node_by_name("A"), Some(a));
        assert_eq!(t.node_by_name("missing"), None);
        assert!(t.edge_between(a, b).is_some());
        assert!(t.edge_between(b, a).is_some());
        assert!(t.edge_between(b, x).is_none());
        assert_eq!(t.router_ids().count(), 2);
        assert_eq!(t.external_ids().count(), 1);
    }

    #[test]
    fn ebgp_vs_ibgp() {
        let (t, a, b, x) = tri();
        let ab = t.edge_between(a, b).unwrap();
        let ax = t.edge_between(a, x).unwrap();
        assert!(!t.is_ebgp(ab));
        assert!(t.is_ebgp(ax));
    }

    #[test]
    fn adjacency() {
        let (t, a, _b, _x) = tri();
        assert_eq!(t.out_edges(a).len(), 2);
        assert_eq!(t.in_edges(a).len(), 2);
    }

    #[test]
    fn path_edges() {
        let (t, a, b, x) = tri();
        let path = t.path_edges(&[x, a, b]).unwrap();
        assert_eq!(path.len(), 2);
        assert!(t.path_edges(&[x, b]).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate node name")]
    fn duplicate_names_panic() {
        let mut t = Topology::new();
        t.add_router("A", 1);
        t.add_router("A", 2);
    }

    #[test]
    fn serde_roundtrip_rebuilds_indexes() {
        let (t, a, b, _x) = tri();
        let json = serde_json::to_string(&t).unwrap();
        let mut t2: Topology = serde_json::from_str(&json).unwrap();
        t2.rebuild_indexes();
        assert_eq!(t2.node_by_name("A"), Some(a));
        assert!(t2.edge_between(a, b).is_some());
    }
}
