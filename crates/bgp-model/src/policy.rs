//! The BGP network policy (§3.1): the `Import`, `Export` and `Originate`
//! functions, represented as per-edge route maps and origination sets.

use crate::interp::apply_route_map;
use crate::route::Route;
use crate::routemap::RouteMap;
use crate::topology::EdgeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The network policy: route maps keyed by directed edge.
///
/// * `Import(A -> B, r)` applies `import[A -> B]` (the import filter at
///   `B` for routes received from `A`).
/// * `Export(A -> B, r)` applies `export[A -> B]` (the export filter at
///   `A` for routes sent to `B`).
/// * `Originate(A -> B)` is the set of routes `A` injects toward `B`.
///
/// An edge with no configured map uses `permit all` (the identity), which
/// matches vendor behaviour for sessions without an attached route map.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Policy {
    /// Import route maps per directed edge.
    pub import: HashMap<EdgeId, RouteMap>,
    /// Export route maps per directed edge.
    pub export: HashMap<EdgeId, RouteMap>,
    /// Routes originated per directed edge.
    pub originate: HashMap<EdgeId, Vec<Route>>,
}

impl Policy {
    /// An empty policy (everything permit-all, nothing originated).
    pub fn new() -> Self {
        Policy::default()
    }

    /// The import map on an edge, if explicitly configured.
    pub fn import_map(&self, e: EdgeId) -> Option<&RouteMap> {
        self.import.get(&e)
    }

    /// The export map on an edge, if explicitly configured.
    pub fn export_map(&self, e: EdgeId) -> Option<&RouteMap> {
        self.export.get(&e)
    }

    /// Concrete `Import` function: `None` = Reject.
    pub fn import_route(&self, e: EdgeId, r: &Route) -> Option<Route> {
        match self.import.get(&e) {
            Some(m) => apply_route_map(m, r),
            None => Some(r.clone()),
        }
    }

    /// Concrete `Export` function: `None` = Reject.
    pub fn export_route(&self, e: EdgeId, r: &Route) -> Option<Route> {
        match self.export.get(&e) {
            Some(m) => apply_route_map(m, r),
            None => Some(r.clone()),
        }
    }

    /// Routes originated on an edge.
    pub fn originated(&self, e: EdgeId) -> &[Route] {
        self.originate.get(&e).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Attach an import map to an edge.
    pub fn set_import(&mut self, e: EdgeId, m: RouteMap) {
        self.import.insert(e, m);
    }

    /// Attach an export map to an edge.
    pub fn set_export(&mut self, e: EdgeId, m: RouteMap) {
        self.export.insert(e, m);
    }

    /// Add an originated route on an edge.
    pub fn add_origination(&mut self, e: EdgeId, r: Route) {
        self.originate.entry(e).or_default().push(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::Ipv4Prefix;
    use crate::routemap::{RouteMapEntry, SetAction};

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn missing_maps_are_identity() {
        let pol = Policy::new();
        let r = Route::new(p("10.0.0.0/8")).with_local_pref(42);
        assert_eq!(pol.import_route(EdgeId(0), &r), Some(r.clone()));
        assert_eq!(pol.export_route(EdgeId(0), &r), Some(r));
        assert!(pol.originated(EdgeId(0)).is_empty());
    }

    #[test]
    fn configured_maps_apply() {
        let mut pol = Policy::new();
        let mut m = RouteMap::new("IN");
        m.push(RouteMapEntry::permit(10).setting(SetAction::LocalPref(7)));
        pol.set_import(EdgeId(3), m);
        let r = Route::new(p("10.0.0.0/8"));
        assert_eq!(pol.import_route(EdgeId(3), &r).unwrap().local_pref, 7);
        // Other edges untouched.
        assert_eq!(pol.import_route(EdgeId(4), &r).unwrap().local_pref, 100);
    }

    #[test]
    fn origination() {
        let mut pol = Policy::new();
        pol.add_origination(EdgeId(1), Route::new(p("192.168.0.0/16")));
        pol.add_origination(EdgeId(1), Route::new(p("192.169.0.0/16")));
        assert_eq!(pol.originated(EdgeId(1)).len(), 2);
    }
}
