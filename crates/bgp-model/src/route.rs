//! BGP routes (§3.1): `(Prefix, ASPath, NextHop, LocalPref, MED, Comm)`,
//! plus the BGP decision process used by the simulator and the liveness
//! axioms.

use crate::prefix::Ipv4Prefix;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;

/// A BGP community tag, a 32-bit value conventionally written `asn:tag`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Community(pub u32);

impl Community {
    /// Build from the conventional `high:low` pair.
    pub fn new(high: u16, low: u16) -> Self {
        Community((high as u32) << 16 | low as u32)
    }

    /// The high (ASN) half.
    pub fn high(self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// The low (tag) half.
    pub fn low(self) -> u16 {
        self.0 as u16
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.high(), self.low())
    }
}

impl fmt::Debug for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for Community {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (h, l) = s
            .split_once(':')
            .ok_or_else(|| format!("bad community {s:?}: missing ':'"))?;
        let h: u16 = h.parse().map_err(|_| format!("bad community {s:?}"))?;
        let l: u16 = l.parse().map_err(|_| format!("bad community {s:?}"))?;
        Ok(Community::new(h, l))
    }
}

/// The BGP origin attribute (how the route entered BGP).
///
/// Lower is preferred in the decision process: `Igp < Egp < Incomplete`.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub enum Origin {
    /// Originated by an IGP / `network` statement.
    Igp,
    /// Learned via EGP (historic).
    Egp,
    /// Redistributed from elsewhere.
    #[default]
    Incomplete,
}

impl Origin {
    /// The 2-bit encoding used by the symbolic layer.
    pub fn code(self) -> u8 {
        match self {
            Origin::Igp => 0,
            Origin::Egp => 1,
            Origin::Incomplete => 2,
        }
    }

    /// Inverse of [`Origin::code`]; values > 2 clamp to `Incomplete`.
    pub fn from_code(c: u8) -> Self {
        match c {
            0 => Origin::Igp,
            1 => Origin::Egp,
            _ => Origin::Incomplete,
        }
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Origin::Igp => "igp",
            Origin::Egp => "egp",
            Origin::Incomplete => "incomplete",
        };
        write!(f, "{s}")
    }
}

/// A BGP route announcement.
///
/// Matches the paper's model: real BGP messages carry more attributes, but
/// these are the ones the verification conditions range over. The default
/// local preference is 100, per common vendor defaults.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Route {
    /// Destination prefix.
    pub prefix: Ipv4Prefix,
    /// AS path, most recent AS first.
    pub as_path: Vec<u32>,
    /// Next-hop address.
    pub next_hop: u32,
    /// Local preference (higher preferred).
    pub local_pref: u32,
    /// Multi-exit discriminator (lower preferred).
    pub med: u32,
    /// Origin attribute (lower preferred).
    pub origin: Origin,
    /// Community tags.
    pub communities: BTreeSet<Community>,
}

impl Route {
    /// A route to `prefix` with default attributes.
    pub fn new(prefix: Ipv4Prefix) -> Self {
        Route {
            prefix,
            as_path: Vec::new(),
            next_hop: 0,
            local_pref: 100,
            med: 0,
            origin: Origin::default(),
            communities: BTreeSet::new(),
        }
    }

    /// Builder: set the AS path.
    pub fn with_as_path(mut self, path: Vec<u32>) -> Self {
        self.as_path = path;
        self
    }

    /// Builder: set the next hop.
    pub fn with_next_hop(mut self, nh: u32) -> Self {
        self.next_hop = nh;
        self
    }

    /// Builder: set the local preference.
    pub fn with_local_pref(mut self, lp: u32) -> Self {
        self.local_pref = lp;
        self
    }

    /// Builder: set the MED.
    pub fn with_med(mut self, med: u32) -> Self {
        self.med = med;
        self
    }

    /// Builder: set the origin attribute.
    pub fn with_origin(mut self, o: Origin) -> Self {
        self.origin = o;
        self
    }

    /// Builder: add a community.
    pub fn with_community(mut self, c: Community) -> Self {
        self.communities.insert(c);
        self
    }

    /// True if the route carries the community.
    pub fn has_community(&self, c: Community) -> bool {
        self.communities.contains(&c)
    }

    /// True if the AS path contains the given ASN (loop detection).
    pub fn as_path_contains(&self, asn: u32) -> bool {
        self.as_path.contains(&asn)
    }

    /// BGP route preference: returns `Greater` when `self` is preferred
    /// over `other` for the same prefix.
    ///
    /// Implements the standard decision-process prefix the paper's liveness
    /// axioms rely on: higher local-pref, then shorter AS path, then lower
    /// MED, then lower next-hop as the final deterministic tie-break.
    pub fn prefer(&self, other: &Route) -> Ordering {
        debug_assert_eq!(
            self.prefix, other.prefix,
            "preference compares same-prefix routes"
        );
        self.local_pref
            .cmp(&other.local_pref)
            .then_with(|| other.as_path.len().cmp(&self.as_path.len()))
            .then_with(|| other.origin.cmp(&self.origin))
            .then_with(|| other.med.cmp(&self.med))
            .then_with(|| other.next_hop.cmp(&self.next_hop))
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let comms: Vec<String> = self.communities.iter().map(|c| c.to_string()).collect();
        let path: Vec<String> = self.as_path.iter().map(|a| a.to_string()).collect();
        write!(
            f,
            "{} as-path [{}] lp {} med {} origin {} nh {} comm {{{}}}",
            self.prefix,
            path.join(" "),
            self.local_pref,
            self.med,
            self.origin,
            self.next_hop,
            comms.join(",")
        )
    }
}

impl fmt::Debug for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn community_roundtrip() {
        let c = Community::new(100, 1);
        assert_eq!(c.to_string(), "100:1");
        assert_eq!("100:1".parse::<Community>().unwrap(), c);
        assert_eq!(c.high(), 100);
        assert_eq!(c.low(), 1);
        assert!("100".parse::<Community>().is_err());
        assert!("100:x".parse::<Community>().is_err());
        assert!("99999:1".parse::<Community>().is_err());
    }

    #[test]
    fn preference_local_pref_dominates() {
        let base = Route::new(p("10.0.0.0/8"));
        let a = base
            .clone()
            .with_local_pref(200)
            .with_as_path(vec![1, 2, 3]);
        let b = base.clone().with_local_pref(100).with_as_path(vec![1]);
        assert_eq!(a.prefer(&b), Ordering::Greater);
        assert_eq!(b.prefer(&a), Ordering::Less);
    }

    #[test]
    fn preference_as_path_len_then_med() {
        let base = Route::new(p("10.0.0.0/8"));
        let short = base.clone().with_as_path(vec![1]);
        let long = base.clone().with_as_path(vec![1, 2]);
        assert_eq!(short.prefer(&long), Ordering::Greater);

        let low_med = base.clone().with_med(5);
        let high_med = base.clone().with_med(10);
        assert_eq!(low_med.prefer(&high_med), Ordering::Greater);
    }

    #[test]
    fn preference_origin_between_path_and_med() {
        let base = Route::new(p("10.0.0.0/8"));
        let igp = base.clone().with_origin(Origin::Igp).with_med(9);
        let incomplete = base.clone().with_origin(Origin::Incomplete).with_med(0);
        // Origin beats MED.
        assert_eq!(igp.prefer(&incomplete), Ordering::Greater);
        // But AS-path length beats origin.
        let short_inc = base
            .clone()
            .with_origin(Origin::Incomplete)
            .with_as_path(vec![1]);
        let long_igp = base
            .clone()
            .with_origin(Origin::Igp)
            .with_as_path(vec![1, 2]);
        assert_eq!(short_inc.prefer(&long_igp), Ordering::Greater);
        assert_eq!(Origin::from_code(Origin::Egp.code()), Origin::Egp);
        assert_eq!(Origin::from_code(7), Origin::Incomplete);
    }

    #[test]
    fn preference_total_on_distinct_next_hops() {
        let base = Route::new(p("10.0.0.0/8"));
        let a = base.clone().with_next_hop(1);
        let b = base.clone().with_next_hop(2);
        assert_ne!(a.prefer(&b), Ordering::Equal);
        assert_eq!(a.prefer(&b), b.prefer(&a).reverse());
    }

    #[test]
    fn builders_compose() {
        let r = Route::new(p("192.168.0.0/16"))
            .with_as_path(vec![65001])
            .with_local_pref(150)
            .with_med(7)
            .with_next_hop(42)
            .with_community(Community::new(100, 1));
        assert!(r.has_community(Community::new(100, 1)));
        assert!(!r.has_community(Community::new(100, 2)));
        assert!(r.as_path_contains(65001));
        assert!(!r.as_path_contains(65002));
        assert_eq!(r.local_pref, 150);
    }
}
