//! BGP substrate: the formal model of §3 of the Lightyear paper, plus the
//! concrete machinery needed to exercise it.
//!
//! * [`prefix`] — IPv4 prefixes, prefix ranges (`ge`/`le` filters) and a
//!   binary prefix trie.
//! * [`route`] — BGP route announcements (§3.1) and the BGP decision
//!   process used to order candidate routes.
//! * [`aspath`] — an AS-path regular-expression engine (token-level NFA)
//!   backing `ip as-path access-list` matching.
//! * [`routemap`] — the route-map intermediate representation: match
//!   conditions, set actions, permit/deny entries with `continue` support.
//! * [`interp`] — the concrete route-map interpreter defining the
//!   `Import`/`Export` functions of §3.1.
//! * [`topology`] — BGP topology: configured routers, external neighbors
//!   and directed peering edges.
//! * [`policy`] — the network policy triple (`Import`, `Export`,
//!   `Originate`) keyed by edge.
//! * [`trace`] — BGP trace events (`recv`/`slct`/`frwd`) and the validity
//!   axioms of Appendix A, checkable against concrete traces.
//! * [`sim`] — a message-passing BGP simulator that produces valid traces;
//!   used to differentially test the verifier.

pub mod aspath;
pub mod interp;
pub mod policy;
pub mod prefix;
pub mod route;
pub mod routemap;
pub mod sim;
pub mod topology;
pub mod trace;

pub use aspath::AsPathRegex;
pub use interp::apply_route_map;
pub use policy::Policy;
pub use prefix::{Ipv4Prefix, PrefixRange, PrefixTrie};
pub use route::{Community, Route};
pub use routemap::{Action, MatchCond, RouteMap, RouteMapEntry, SetAction};
pub use topology::{EdgeId, NodeId, Topology};
pub use trace::{Event, Trace};

/// Canonical JSON text of a serializable model value: the serde shim
/// emits sorted map/set entries, so equal values produce equal strings.
/// This is the one definition of the canonical-text idiom that check
/// fingerprinting, semantic config diffing and spec digests all build
/// on — equality layers across crates must not drift apart.
pub fn canonical_json<T: serde::Serialize>(x: &T) -> String {
    serde_json::to_string(&x.to_value()).expect("canonical serialization")
}
