//! Concrete route-map interpreter.
//!
//! Defines the concrete semantics of the `Import` and `Export` policy
//! functions from §3.1 of the paper: given a route map and an input route,
//! produce the transformed route or `None` for `Reject`.
//!
//! This interpreter is the ground truth against which Lightyear's symbolic
//! encoding is differentially tested (the "symbolic/concrete agreement"
//! property): for every route map `m` and route `r`, the SMT encoding of
//! `m` evaluated at `r` must equal `apply_route_map(&m, &r)`.

use crate::route::Route;
use crate::routemap::{Action, MatchCond, RouteMap, RouteMapEntry, SetAction};

/// Evaluate a single match condition against a route.
pub fn eval_match(cond: &MatchCond, route: &Route) -> bool {
    match cond {
        MatchCond::PrefixList(entries) => {
            for (permit, range) in entries {
                if range.matches(&route.prefix) {
                    return *permit;
                }
            }
            false // implicit deny
        }
        MatchCond::Community { comms, match_all } => {
            if *match_all {
                comms.iter().all(|c| route.has_community(*c))
            } else {
                comms.iter().any(|c| route.has_community(*c))
            }
        }
        MatchCond::CommunityList { entries, exact } => {
            for (permit, comms) in entries {
                let hit = if *exact {
                    route.communities.len() == comms.len()
                        && comms.iter().all(|c| route.has_community(*c))
                } else {
                    comms.iter().all(|c| route.has_community(*c))
                };
                if hit {
                    return *permit;
                }
            }
            false
        }
        MatchCond::AsPath(entries) => {
            for (permit, re) in entries {
                if re.matches(&route.as_path) {
                    return *permit;
                }
            }
            false
        }
        MatchCond::Med(m) => route.med == *m,
        MatchCond::LocalPref(lp) => route.local_pref == *lp,
        MatchCond::Always => true,
    }
}

/// Apply a set action in place.
pub fn eval_set(set: &SetAction, route: &mut Route) {
    match set {
        SetAction::LocalPref(lp) => route.local_pref = *lp,
        SetAction::Med(m) => route.med = *m,
        SetAction::Community { comms, additive } => {
            if !*additive {
                route.communities.clear();
            }
            route.communities.extend(comms.iter().copied());
        }
        SetAction::DeleteCommunities(comms) => {
            for c in comms {
                route.communities.remove(c);
            }
        }
        SetAction::ClearCommunities => route.communities.clear(),
        SetAction::PrependAsPath(asns) => {
            let mut path = asns.clone();
            path.extend(route.as_path.iter().copied());
            route.as_path = path;
        }
        SetAction::NextHop(nh) => route.next_hop = *nh,
        SetAction::Origin(o) => route.origin = *o,
    }
}

fn entry_matches(e: &RouteMapEntry, route: &Route) -> bool {
    e.matches.iter().all(|m| eval_match(m, route))
}

/// Apply a route map to a route. Returns the transformed route on permit
/// or `None` on reject (including the implicit deny when no entry
/// matches).
///
/// `continue` semantics: when a permitting entry carries `continue`, its
/// set actions are applied and evaluation resumes at the target sequence
/// (or the next entry). If evaluation falls off the end after at least one
/// permit, the route is accepted.
pub fn apply_route_map(map: &RouteMap, route: &Route) -> Option<Route> {
    let mut out = route.clone();
    let mut idx = 0usize;
    let mut permitted = false;
    while idx < map.entries.len() {
        let e = &map.entries[idx];
        if entry_matches(e, &out) {
            match e.action {
                Action::Deny => return None,
                Action::Permit => {
                    for s in &e.sets {
                        eval_set(s, &mut out);
                    }
                    permitted = true;
                    match &e.continue_to {
                        None => return Some(out),
                        Some(None) => idx += 1,
                        Some(Some(seq)) => match map.index_of_seq_at_least(*seq) {
                            Some(i) if i > idx => idx = i,
                            // A continue pointing backwards or at a missing
                            // tail terminates evaluation (IOS forbids
                            // backwards continues).
                            _ => return Some(out),
                        },
                    }
                }
            }
        } else {
            idx += 1;
        }
    }
    if permitted {
        Some(out)
    } else {
        None // implicit deny
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::{Ipv4Prefix, PrefixRange};
    use crate::route::Community;
    use crate::routemap::RouteMapEntry;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn c(s: &str) -> Community {
        s.parse().unwrap()
    }

    #[test]
    fn implicit_deny_on_empty_map() {
        let rm = RouteMap::new("EMPTY");
        let r = Route::new(p("10.0.0.0/8"));
        assert_eq!(apply_route_map(&rm, &r), None);
    }

    #[test]
    fn permit_all_is_identity() {
        let rm = RouteMap::permit_all("ALL");
        let r = Route::new(p("10.0.0.0/8")).with_local_pref(123);
        assert_eq!(apply_route_map(&rm, &r), Some(r));
    }

    #[test]
    fn first_match_wins() {
        let mut rm = RouteMap::new("T");
        rm.push(
            RouteMapEntry::permit(10)
                .matching(MatchCond::PrefixList(vec![(
                    true,
                    PrefixRange::orlonger(p("10.0.0.0/8")),
                )]))
                .setting(SetAction::LocalPref(200)),
        );
        rm.push(RouteMapEntry::permit(20).setting(SetAction::LocalPref(50)));

        let ten = Route::new(p("10.1.0.0/16"));
        assert_eq!(apply_route_map(&rm, &ten).unwrap().local_pref, 200);
        let other = Route::new(p("192.168.0.0/16"));
        assert_eq!(apply_route_map(&rm, &other).unwrap().local_pref, 50);
    }

    #[test]
    fn deny_entry_rejects() {
        let mut rm = RouteMap::new("T");
        rm.push(RouteMapEntry::deny(10).matching(MatchCond::Community {
            comms: vec![c("100:1")],
            match_all: false,
        }));
        rm.push(RouteMapEntry::permit(20));

        let tagged = Route::new(p("10.0.0.0/8")).with_community(c("100:1"));
        assert_eq!(apply_route_map(&rm, &tagged), None);
        let clean = Route::new(p("10.0.0.0/8"));
        assert!(apply_route_map(&rm, &clean).is_some());
    }

    #[test]
    fn community_set_replace_vs_additive() {
        let r = Route::new(p("10.0.0.0/8")).with_community(c("1:1"));

        let mut replace = RouteMap::new("R");
        replace.push(RouteMapEntry::permit(10).setting(SetAction::Community {
            comms: vec![c("2:2")],
            additive: false,
        }));
        let out = apply_route_map(&replace, &r).unwrap();
        assert!(!out.has_community(c("1:1")));
        assert!(out.has_community(c("2:2")));

        let mut additive = RouteMap::new("A");
        additive.push(RouteMapEntry::permit(10).setting(SetAction::Community {
            comms: vec![c("2:2")],
            additive: true,
        }));
        let out = apply_route_map(&additive, &r).unwrap();
        assert!(out.has_community(c("1:1")));
        assert!(out.has_community(c("2:2")));
    }

    #[test]
    fn delete_and_clear_communities() {
        let r = Route::new(p("10.0.0.0/8"))
            .with_community(c("1:1"))
            .with_community(c("2:2"));

        let mut del = RouteMap::new("D");
        del.push(
            RouteMapEntry::permit(10)
                .setting(SetAction::DeleteCommunities(vec![c("1:1"), c("9:9")])),
        );
        let out = apply_route_map(&del, &r).unwrap();
        assert!(!out.has_community(c("1:1")));
        assert!(out.has_community(c("2:2")));

        let mut clear = RouteMap::new("C");
        clear.push(RouteMapEntry::permit(10).setting(SetAction::ClearCommunities));
        let out = apply_route_map(&clear, &r).unwrap();
        assert!(out.communities.is_empty());
    }

    #[test]
    fn prepend_as_path() {
        let r = Route::new(p("10.0.0.0/8")).with_as_path(vec![3356]);
        let mut rm = RouteMap::new("P");
        rm.push(RouteMapEntry::permit(10).setting(SetAction::PrependAsPath(vec![65001, 65001])));
        let out = apply_route_map(&rm, &r).unwrap();
        assert_eq!(out.as_path, vec![65001, 65001, 3356]);
    }

    #[test]
    fn match_as_path_acl() {
        let re = crate::aspath::AsPathRegex::compile("_65001_").unwrap();
        let mut rm = RouteMap::new("T");
        rm.push(RouteMapEntry::deny(10).matching(MatchCond::AsPath(vec![(true, re)])));
        rm.push(RouteMapEntry::permit(20));

        let bad = Route::new(p("10.0.0.0/8")).with_as_path(vec![1, 65001]);
        assert_eq!(apply_route_map(&rm, &bad), None);
        let ok = Route::new(p("10.0.0.0/8")).with_as_path(vec![1, 2]);
        assert!(apply_route_map(&rm, &ok).is_some());
    }

    #[test]
    fn prefix_list_permit_deny_order() {
        // deny 10.1.0.0/16, permit 10.0.0.0/8 orlonger
        let pl = vec![
            (false, PrefixRange::exact(p("10.1.0.0/16"))),
            (true, PrefixRange::orlonger(p("10.0.0.0/8"))),
        ];
        let mut rm = RouteMap::new("T");
        rm.push(RouteMapEntry::permit(10).matching(MatchCond::PrefixList(pl)));

        assert!(apply_route_map(&rm, &Route::new(p("10.2.0.0/16"))).is_some());
        assert_eq!(apply_route_map(&rm, &Route::new(p("10.1.0.0/16"))), None);
        assert_eq!(apply_route_map(&rm, &Route::new(p("11.0.0.0/8"))), None);
    }

    #[test]
    fn continue_applies_multiple_entries() {
        let mut rm = RouteMap::new("T");
        rm.push(
            RouteMapEntry::permit(10)
                .setting(SetAction::LocalPref(150))
                .continuing(Some(30)),
        );
        rm.push(RouteMapEntry::permit(20).setting(SetAction::LocalPref(1)));
        rm.push(RouteMapEntry::permit(30).setting(SetAction::Med(77)));

        let out = apply_route_map(&rm, &Route::new(p("10.0.0.0/8"))).unwrap();
        assert_eq!(out.local_pref, 150); // entry 20 skipped
        assert_eq!(out.med, 77);
    }

    #[test]
    fn continue_off_the_end_accepts() {
        let mut rm = RouteMap::new("T");
        rm.push(
            RouteMapEntry::permit(10)
                .setting(SetAction::Med(5))
                .continuing(None),
        );
        let out = apply_route_map(&rm, &Route::new(p("10.0.0.0/8"))).unwrap();
        assert_eq!(out.med, 5);
    }

    #[test]
    fn continue_then_deny_rejects() {
        let mut rm = RouteMap::new("T");
        rm.push(
            RouteMapEntry::permit(10)
                .setting(SetAction::Med(5))
                .continuing(None),
        );
        rm.push(RouteMapEntry::deny(20));
        assert_eq!(apply_route_map(&rm, &Route::new(p("10.0.0.0/8"))), None);
    }

    #[test]
    fn set_origin() {
        use crate::route::Origin;
        let mut rm = RouteMap::new("O");
        rm.push(RouteMapEntry::permit(10).setting(SetAction::Origin(Origin::Egp)));
        let r = Route::new(p("10.0.0.0/8"));
        assert_eq!(apply_route_map(&rm, &r).unwrap().origin, Origin::Egp);
    }

    #[test]
    fn med_and_lp_matches() {
        let mut rm = RouteMap::new("T");
        rm.push(
            RouteMapEntry::permit(10)
                .matching(MatchCond::Med(50))
                .matching(MatchCond::LocalPref(100)),
        );
        let hit = Route::new(p("10.0.0.0/8")).with_med(50);
        assert!(apply_route_map(&rm, &hit).is_some());
        let miss = Route::new(p("10.0.0.0/8")).with_med(51);
        assert_eq!(apply_route_map(&rm, &miss), None);
    }

    #[test]
    fn sets_affect_later_matches() {
        // Entry 10 sets MED 50 and continues; entry 20 matches MED 50.
        let mut rm = RouteMap::new("T");
        rm.push(
            RouteMapEntry::permit(10)
                .setting(SetAction::Med(50))
                .continuing(None),
        );
        rm.push(
            RouteMapEntry::permit(20)
                .matching(MatchCond::Med(50))
                .setting(SetAction::LocalPref(999)),
        );
        let out = apply_route_map(&rm, &Route::new(p("10.0.0.0/8"))).unwrap();
        assert_eq!(out.local_pref, 999);
    }
}
