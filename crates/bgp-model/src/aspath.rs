//! AS-path regular expressions (`ip as-path access-list`).
//!
//! Cisco-style AS-path regexes operate on the textual rendering of the AS
//! path; since our model keeps the path as a token sequence, we implement a
//! token-level engine with the same observable semantics for the constructs
//! that occur in practice:
//!
//! * `65001` — match that AS number (one token)
//! * `.` — match any single AS number
//! * `[100-200]` — match an AS number in an inclusive range
//! * `*`, `+`, `?` — postfix repetition on an atom or group
//! * `(...)` — grouping, `|` — alternation
//! * `^` / `$` — anchor at the start / end of the path
//! * `_` — token boundary; in token space every inter-token position is a
//!   boundary, so `_` is an epsilon (it still forces the neighbouring
//!   number to be matched as a complete token, which token-level matching
//!   gives us for free)
//!
//! Without `^` the pattern may match anywhere in the path (substring
//! semantics), mirroring IOS behaviour.
//!
//! The pattern is compiled to a Thompson NFA and matched by subset
//! simulation — linear in `path length x NFA size`, no backtracking.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A predicate on one AS-number token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TokPred {
    Any,
    Eq(u32),
    Range(u32, u32),
}

impl TokPred {
    fn matches(self, tok: u32) -> bool {
        match self {
            TokPred::Any => true,
            TokPred::Eq(x) => tok == x,
            TokPred::Range(lo, hi) => (lo..=hi).contains(&tok),
        }
    }
}

#[derive(Clone, Debug, Default)]
struct NfaState {
    /// Consuming transitions.
    trans: Vec<(TokPred, usize)>,
    /// Epsilon transitions.
    eps: Vec<usize>,
}

/// A compiled AS-path regular expression.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub struct AsPathRegex {
    pattern: String,
    states: Vec<NfaState>,
    start: usize,
    accept: usize,
}

impl PartialEq for AsPathRegex {
    fn eq(&self, other: &Self) -> bool {
        self.pattern == other.pattern
    }
}

impl Eq for AsPathRegex {}

impl std::hash::Hash for AsPathRegex {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.pattern.hash(state);
    }
}

impl fmt::Display for AsPathRegex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pattern)
    }
}

impl TryFrom<String> for AsPathRegex {
    type Error = RegexParseError;
    fn try_from(s: String) -> Result<Self, Self::Error> {
        AsPathRegex::compile(&s)
    }
}

impl From<AsPathRegex> for String {
    fn from(r: AsPathRegex) -> String {
        r.pattern
    }
}

/// Error from compiling an AS-path regex.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegexParseError(pub String);

impl fmt::Display for RegexParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad as-path regex: {}", self.0)
    }
}

impl std::error::Error for RegexParseError {}

/// NFA fragment under construction: entry state and dangling exit state.
struct Frag {
    start: usize,
    end: usize,
}

struct Compiler<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    states: Vec<NfaState>,
    pattern: &'a str,
}

impl<'a> Compiler<'a> {
    fn new_state(&mut self) -> usize {
        self.states.push(NfaState::default());
        self.states.len() - 1
    }

    fn err(&self, msg: &str) -> RegexParseError {
        RegexParseError(format!("{msg} in {:?}", self.pattern))
    }

    /// alt := concat ('|' concat)*
    fn parse_alt(&mut self) -> Result<Frag, RegexParseError> {
        let first = self.parse_concat()?;
        if self.chars.peek() != Some(&'|') {
            return Ok(first);
        }
        let start = self.new_state();
        let end = self.new_state();
        self.states[start].eps.push(first.start);
        self.states[first.end].eps.push(end);
        while self.chars.peek() == Some(&'|') {
            self.chars.next();
            let alt = self.parse_concat()?;
            self.states[start].eps.push(alt.start);
            self.states[alt.end].eps.push(end);
        }
        Ok(Frag { start, end })
    }

    /// concat := item*
    fn parse_concat(&mut self) -> Result<Frag, RegexParseError> {
        let start = self.new_state();
        let mut cur = start;
        while let Some(&c) = self.chars.peek() {
            if c == '|' || c == ')' {
                break;
            }
            // None is an epsilon atom like '_'.
            if let Some(f) = self.parse_item()? {
                self.states[cur].eps.push(f.start);
                cur = f.end;
            }
        }
        Ok(Frag { start, end: cur })
    }

    /// item := atom postfix?; returns None for pure-epsilon atoms.
    fn parse_item(&mut self) -> Result<Option<Frag>, RegexParseError> {
        let c = match self.chars.peek() {
            Some(&c) => c,
            None => return Err(self.err("unexpected end")),
        };
        let frag: Option<Frag> = match c {
            '_' => {
                self.chars.next();
                None
            }
            ' ' => {
                self.chars.next();
                None
            }
            '.' => {
                self.chars.next();
                Some(self.atom_pred(TokPred::Any))
            }
            '0'..='9' => {
                let n = self.parse_number()?;
                Some(self.atom_pred(TokPred::Eq(n)))
            }
            '[' => {
                self.chars.next();
                let lo = self.parse_number()?;
                if self.chars.next() != Some('-') {
                    return Err(self.err("expected '-' in range"));
                }
                let hi = self.parse_number()?;
                if self.chars.next() != Some(']') {
                    return Err(self.err("expected ']'"));
                }
                if lo > hi {
                    return Err(self.err("empty range"));
                }
                Some(self.atom_pred(TokPred::Range(lo, hi)))
            }
            '(' => {
                self.chars.next();
                let inner = self.parse_alt()?;
                if self.chars.next() != Some(')') {
                    return Err(self.err("expected ')'"));
                }
                Some(inner)
            }
            other => return Err(self.err(&format!("unexpected character {other:?}"))),
        };
        // postfix
        let frag = match self.chars.peek() {
            Some(&op @ ('*' | '+' | '?')) => {
                self.chars.next();
                let inner = match frag {
                    Some(f) => f,
                    None => return Ok(None), // `_*` etc: still epsilon
                };
                let start = self.new_state();
                let end = self.new_state();
                self.states[start].eps.push(inner.start);
                match op {
                    '*' => {
                        self.states[start].eps.push(end);
                        self.states[inner.end].eps.push(inner.start);
                        self.states[inner.end].eps.push(end);
                    }
                    '+' => {
                        self.states[inner.end].eps.push(inner.start);
                        self.states[inner.end].eps.push(end);
                    }
                    '?' => {
                        self.states[start].eps.push(end);
                        self.states[inner.end].eps.push(end);
                    }
                    _ => unreachable!(),
                }
                Some(Frag { start, end })
            }
            _ => frag,
        };
        Ok(frag)
    }

    fn atom_pred(&mut self, p: TokPred) -> Frag {
        let start = self.new_state();
        let end = self.new_state();
        self.states[start].trans.push((p, end));
        Frag { start, end }
    }

    fn parse_number(&mut self) -> Result<u32, RegexParseError> {
        let mut n: u64 = 0;
        let mut any = false;
        while let Some(&c) = self.chars.peek() {
            if let Some(d) = c.to_digit(10) {
                self.chars.next();
                any = true;
                n = n * 10 + d as u64;
                if n > u32::MAX as u64 {
                    return Err(self.err("AS number too large"));
                }
            } else {
                break;
            }
        }
        if !any {
            return Err(self.err("expected number"));
        }
        Ok(n as u32)
    }
}

impl AsPathRegex {
    /// Compile a pattern.
    pub fn compile(pattern: &str) -> Result<Self, RegexParseError> {
        let anchored_start = pattern.starts_with('^');
        let anchored_end = pattern.ends_with('$') && !pattern.ends_with("\\$");
        let body = {
            let mut b = pattern;
            if anchored_start {
                b = &b[1..];
            }
            if anchored_end {
                b = &b[..b.len() - 1];
            }
            b
        };
        let mut c = Compiler {
            chars: body.chars().peekable(),
            states: Vec::new(),
            pattern,
        };
        let frag = c.parse_alt()?;
        if c.chars.peek().is_some() {
            return Err(c.err("trailing characters"));
        }
        let mut start = frag.start;
        let mut accept = frag.end;
        // Unanchored sides get an any-token self-loop.
        if !anchored_start {
            let s = c.new_state();
            c.states[s].trans.push((TokPred::Any, s));
            c.states[s].eps.push(start);
            start = s;
        }
        if !anchored_end {
            let e = c.new_state();
            c.states[e].trans.push((TokPred::Any, e));
            c.states[accept].eps.push(e);
            accept = e;
        }
        Ok(AsPathRegex {
            pattern: pattern.to_string(),
            states: c.states,
            start,
            accept,
        })
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Match an AS path (token sequence).
    pub fn matches(&self, path: &[u32]) -> bool {
        let mut cur = vec![false; self.states.len()];
        let mut next = vec![false; self.states.len()];
        self.add_closure(self.start, &mut cur);
        for &tok in path {
            next.iter_mut().for_each(|b| *b = false);
            for (i, &active) in cur.iter().enumerate() {
                if !active {
                    continue;
                }
                for &(pred, dst) in &self.states[i].trans {
                    if pred.matches(tok) {
                        self.add_closure(dst, &mut next);
                    }
                }
            }
            std::mem::swap(&mut cur, &mut next);
            if cur.iter().all(|&b| !b) {
                return false;
            }
        }
        cur[self.accept]
    }

    fn add_closure(&self, s: usize, set: &mut [bool]) {
        if set[s] {
            return;
        }
        set[s] = true;
        for &e in &self.states[s].eps {
            self.add_closure(e, set);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(p: &str) -> AsPathRegex {
        AsPathRegex::compile(p).unwrap()
    }

    #[test]
    fn literal_substring() {
        let r = re("_65001_");
        assert!(r.matches(&[65001]));
        assert!(r.matches(&[1, 65001, 2]));
        assert!(!r.matches(&[65002]));
        assert!(!r.matches(&[]));
    }

    #[test]
    fn anchored_origin() {
        // Path origin is the last AS in our representation; `65001$`
        // matches paths originated by 65001.
        let r = re("65001$");
        assert!(r.matches(&[65001]));
        assert!(r.matches(&[2, 3, 65001]));
        assert!(!r.matches(&[65001, 2]));
    }

    #[test]
    fn anchored_neighbor() {
        let r = re("^65001");
        assert!(r.matches(&[65001]));
        assert!(r.matches(&[65001, 2]));
        assert!(!r.matches(&[2, 65001]));
    }

    #[test]
    fn empty_path_pattern() {
        let r = re("^$");
        assert!(r.matches(&[]));
        assert!(!r.matches(&[1]));
    }

    #[test]
    fn any_and_star() {
        let r = re("^65001 .* 65002$");
        assert!(r.matches(&[65001, 65002]));
        assert!(r.matches(&[65001, 7, 8, 65002]));
        assert!(!r.matches(&[65001]));
        assert!(!r.matches(&[65001, 7]));
    }

    #[test]
    fn plus_and_question() {
        let r = re("^1 2+ 3$");
        assert!(r.matches(&[1, 2, 3]));
        assert!(r.matches(&[1, 2, 2, 2, 3]));
        assert!(!r.matches(&[1, 3]));

        let q = re("^1 2? 3$");
        assert!(q.matches(&[1, 3]));
        assert!(q.matches(&[1, 2, 3]));
        assert!(!q.matches(&[1, 2, 2, 3]));
    }

    #[test]
    fn alternation_and_groups() {
        let r = re("^(1|2) 3$");
        assert!(r.matches(&[1, 3]));
        assert!(r.matches(&[2, 3]));
        assert!(!r.matches(&[4, 3]));

        let nested = re("^((1 2)|(3 4))+$");
        assert!(nested.matches(&[1, 2]));
        assert!(nested.matches(&[1, 2, 3, 4, 1, 2]));
        assert!(!nested.matches(&[1, 4]));
    }

    #[test]
    fn ranges() {
        let r = re("_[64512-65534]_");
        assert!(r.matches(&[64512]));
        assert!(r.matches(&[1, 65000, 2]));
        assert!(!r.matches(&[64000]));
        assert!(!r.matches(&[65535]));
    }

    #[test]
    fn private_asn_detector() {
        // The "no private ASNs in path" property from §6.1-style checks.
        let r = re("_([64512-65534]|[4200000000-4294967294])_");
        assert!(r.matches(&[174, 64512, 3356]));
        assert!(r.matches(&[4200000000]));
        assert!(!r.matches(&[174, 3356]));
    }

    #[test]
    fn parse_errors() {
        assert!(AsPathRegex::compile("(1").is_err());
        assert!(AsPathRegex::compile("[1-").is_err());
        assert!(AsPathRegex::compile("[5-2]").is_err());
        assert!(AsPathRegex::compile("a").is_err());
        assert!(AsPathRegex::compile("1)").is_err());
    }

    #[test]
    fn unanchored_matches_anywhere() {
        let r = re("5 6");
        assert!(r.matches(&[1, 5, 6, 9]));
        assert!(r.matches(&[5, 6]));
        assert!(!r.matches(&[5, 7, 6]));
    }

    #[test]
    fn display_and_eq() {
        let r = re("^65001_.*$");
        assert_eq!(r.to_string(), "^65001_.*$");
        assert_eq!(r, re("^65001_.*$"));
        assert_ne!(r, re("^65002$"));
    }
}
