//! Property-based tests for the BGP substrate.
//!
//! * The prefix trie agrees with naive scans for exact lookup, longest
//!   match and covering queries.
//! * The AS-path NFA engine agrees with a naive backtracking reference
//!   matcher on randomly generated patterns and paths.
//! * Route-map interpretation is deterministic and `permit_all` is the
//!   identity on arbitrary routes.
//! * The simulator is deterministic and always produces axiom-valid
//!   traces under random policies.

use bgp_model::prefix::{Ipv4Prefix, PrefixTrie};
use bgp_model::routemap::{MatchCond, RouteMap, RouteMapEntry, SetAction};
use bgp_model::sim::{simulate, SimOptions};
use bgp_model::trace::check_safety_axioms;
use bgp_model::{apply_route_map, AsPathRegex, Community, Policy, Route, Topology};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Prefix trie vs naive
// ---------------------------------------------------------------------------

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Ipv4Prefix::new(addr, len))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn trie_agrees_with_naive(
        prefixes in prop::collection::vec(arb_prefix(), 0..30),
        queries in prop::collection::vec(arb_prefix(), 0..10),
        addrs in prop::collection::vec(any::<u32>(), 0..10),
    ) {
        let mut trie = PrefixTrie::new();
        let mut naive: Vec<(Ipv4Prefix, usize)> = Vec::new();
        for (i, p) in prefixes.iter().enumerate() {
            trie.insert(*p, i);
            naive.retain(|(q, _)| q != p);
            naive.push((*p, i));
        }
        prop_assert_eq!(trie.len(), naive.len());

        for q in &queries {
            let expect = naive.iter().find(|(p, _)| p == q).map(|(_, v)| v);
            prop_assert_eq!(trie.get(q), expect);
            let expect_cover = naive.iter().any(|(p, _)| p.covers(q));
            prop_assert_eq!(trie.any_covering(q), expect_cover, "covering {}", q);
        }
        for &a in &addrs {
            let expect = naive
                .iter()
                .filter(|(p, _)| p.contains_addr(a))
                .max_by_key(|(p, _)| p.len)
                .map(|(p, v)| (*p, v));
            prop_assert_eq!(trie.longest_match(a), expect);
        }
    }
}

// ---------------------------------------------------------------------------
// AS-path regex vs naive backtracking
// ---------------------------------------------------------------------------

/// A tiny pattern AST we can both render to regex text and match naively.
#[derive(Clone, Debug)]
enum Pat {
    Lit(u32),
    Any,
    Range(u32, u32),
    Star(Box<Pat>),
    Plus(Box<Pat>),
    Opt(Box<Pat>),
    Seq(Vec<Pat>),
    Alt(Box<Pat>, Box<Pat>),
}

fn render(p: &Pat, out: &mut String) {
    match p {
        Pat::Lit(n) => out.push_str(&n.to_string()),
        Pat::Any => out.push('.'),
        Pat::Range(a, b) => out.push_str(&format!("[{a}-{b}]")),
        Pat::Star(x) => {
            out.push('(');
            render(x, out);
            out.push_str(")*");
        }
        Pat::Plus(x) => {
            out.push('(');
            render(x, out);
            out.push_str(")+");
        }
        Pat::Opt(x) => {
            out.push('(');
            render(x, out);
            out.push_str(")?");
        }
        Pat::Seq(xs) => {
            for x in xs {
                out.push('(');
                render(x, out);
                out.push(')');
            }
        }
        Pat::Alt(a, b) => {
            out.push('(');
            render(a, out);
            out.push('|');
            render(b, out);
            out.push(')');
        }
    }
}

/// Naive matcher: set of suffix positions reachable after consuming.
fn naive_match(p: &Pat, toks: &[u32], starts: &[usize]) -> Vec<usize> {
    let mut out: Vec<usize> = Vec::new();
    match p {
        Pat::Lit(n) => {
            for &s in starts {
                if toks.get(s) == Some(n) {
                    out.push(s + 1);
                }
            }
        }
        Pat::Any => {
            for &s in starts {
                if s < toks.len() {
                    out.push(s + 1);
                }
            }
        }
        Pat::Range(a, b) => {
            for &s in starts {
                if let Some(t) = toks.get(s) {
                    if (*a..=*b).contains(t) {
                        out.push(s + 1);
                    }
                }
            }
        }
        Pat::Star(x) => {
            let mut frontier: Vec<usize> = starts.to_vec();
            out.extend_from_slice(starts);
            loop {
                let next = naive_match(x, toks, &frontier);
                let new: Vec<usize> = next.into_iter().filter(|n| !out.contains(n)).collect();
                if new.is_empty() {
                    break;
                }
                out.extend_from_slice(&new);
                frontier = new;
            }
        }
        Pat::Plus(x) => {
            let once = naive_match(x, toks, starts);
            let star = naive_match(&Pat::Star(x.clone()), toks, &once);
            out = star;
        }
        Pat::Opt(x) => {
            out.extend_from_slice(starts);
            for n in naive_match(x, toks, starts) {
                if !out.contains(&n) {
                    out.push(n);
                }
            }
        }
        Pat::Seq(xs) => {
            let mut cur: Vec<usize> = starts.to_vec();
            for x in xs {
                cur = naive_match(x, toks, &cur);
                if cur.is_empty() {
                    break;
                }
            }
            out = cur;
        }
        Pat::Alt(a, b) => {
            out = naive_match(a, toks, starts);
            for n in naive_match(b, toks, starts) {
                if !out.contains(&n) {
                    out.push(n);
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Unanchored substring semantics like the engine's default.
fn naive_substring_match(p: &Pat, toks: &[u32]) -> bool {
    let starts: Vec<usize> = (0..=toks.len()).collect();
    !naive_match(p, toks, &starts).is_empty()
}

fn arb_pat() -> impl Strategy<Value = Pat> {
    let leaf = prop_oneof![
        (0u32..6).prop_map(Pat::Lit),
        Just(Pat::Any),
        (0u32..4, 0u32..4).prop_map(|(a, b)| Pat::Range(a.min(b), a.max(b))),
    ];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|x| Pat::Star(Box::new(x))),
            inner.clone().prop_map(|x| Pat::Plus(Box::new(x))),
            inner.clone().prop_map(|x| Pat::Opt(Box::new(x))),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Pat::Seq),
            (inner.clone(), inner).prop_map(|(a, b)| Pat::Alt(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn nfa_agrees_with_backtracking(
        pat in arb_pat(),
        path in prop::collection::vec(0u32..6, 0..8),
    ) {
        let mut text = String::new();
        render(&pat, &mut text);
        let re = AsPathRegex::compile(&text)
            .unwrap_or_else(|e| panic!("generated pattern {text:?} failed: {e}"));
        let expect = naive_substring_match(&pat, &path);
        prop_assert_eq!(re.matches(&path), expect, "pattern {} on {:?}", text, path);
    }
}

// ---------------------------------------------------------------------------
// Route maps and the simulator
// ---------------------------------------------------------------------------

fn arb_route() -> impl Strategy<Value = Route> {
    (
        arb_prefix(),
        prop::collection::btree_set(
            (0u16..3, 0u16..3).prop_map(|(h, l)| Community::new(h, l)),
            0..3,
        ),
        0u32..300,
        0u32..50,
    )
        .prop_map(|(p, comms, lp, med)| {
            let mut r = Route::new(p).with_local_pref(lp).with_med(med);
            r.communities = comms;
            r
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn permit_all_is_identity(route in arb_route()) {
        let m = RouteMap::permit_all("ALL");
        prop_assert_eq!(apply_route_map(&m, &route), Some(route));
    }

    #[test]
    fn deny_entry_rejects_everything_it_matches(route in arb_route()) {
        let mut m = RouteMap::new("D");
        m.push(RouteMapEntry::deny(10).matching(MatchCond::Always));
        m.push(RouteMapEntry::permit(20));
        prop_assert_eq!(apply_route_map(&m, &route), None);
    }

    #[test]
    fn set_then_match_consistent(route in arb_route(), lp in 0u32..300) {
        // Setting local-pref then matching it must behave like the
        // combined value.
        let mut m = RouteMap::new("S");
        m.push(
            RouteMapEntry::permit(10)
                .setting(SetAction::LocalPref(lp))
                .continuing(None),
        );
        m.push(
            RouteMapEntry::permit(20)
                .matching(MatchCond::LocalPref(lp))
                .setting(SetAction::Med(7)),
        );
        let out = apply_route_map(&m, &route).expect("permits");
        prop_assert_eq!(out.local_pref, lp);
        prop_assert_eq!(out.med, 7);
    }

    #[test]
    fn simulator_traces_always_satisfy_axioms(
        seed_routes in prop::collection::vec(arb_route(), 1..4),
        strip in any::<bool>(),
        lp in 100u32..200,
    ) {
        // Two routers, two externals, randomized import policy.
        let mut t = Topology::new();
        let r1 = t.add_router("R1", 65000);
        let r2 = t.add_router("R2", 65000);
        let x1 = t.add_external("X1", 1);
        let x2 = t.add_external("X2", 2);
        t.add_session(r1, r2);
        t.add_session(x1, r1);
        t.add_session(x2, r2);

        let mut pol = Policy::new();
        let mut m = RouteMap::new("IN");
        let mut entry = RouteMapEntry::permit(10).setting(SetAction::LocalPref(lp));
        if strip {
            entry = entry.setting(SetAction::ClearCommunities);
        }
        m.push(entry);
        pol.set_import(t.edge_between(x1, r1).unwrap(), m);

        let mut announcements = Vec::new();
        for (i, r) in seed_routes.iter().enumerate() {
            let edge = if i % 2 == 0 {
                t.edge_between(x1, r1).unwrap()
            } else {
                t.edge_between(x2, r2).unwrap()
            };
            announcements.push((edge, r.clone()));
        }
        let res = simulate(&t, &pol, &announcements, SimOptions::default());
        prop_assert!(res.converged);
        prop_assert!(check_safety_axioms(&res.trace, &t, &pol).is_ok());

        // Determinism.
        let res2 = simulate(&t, &pol, &announcements, SimOptions::default());
        prop_assert_eq!(res.trace.events, res2.trace.events);
    }
}
