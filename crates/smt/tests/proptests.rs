//! Property-based tests for the SMT substrate.
//!
//! Two core soundness/completeness properties:
//!
//! 1. The CDCL solver agrees with a brute-force enumeration on random small
//!    CNF formulas (both SAT answers and, for SAT, it returns a model that
//!    actually satisfies the formula).
//! 2. Bit-blasting agrees with direct 64-bit evaluation on random term DAGs:
//!    a random concrete assignment is asserted via equalities and the model
//!    returned by the solver evaluates every sub-term to the same value the
//!    concrete evaluator computes.
//! 3. Assumption-based incremental solving agrees with fresh per-query
//!    solving: one persistent instance answering a family of queries under
//!    assumptions returns the same answers as a cold solver per query, and
//!    reported unsat cores are genuinely unsatisfiable subsets.
//! 4. The solver-speed machinery is verdict-preserving: the full
//!    inprocessing configuration (phase saving, Luby restarts, on-the-fly
//!    subsumption, learnt-DB sweeps) and every jittered portfolio variant
//!    agree with the plain kernel query for query, their UNSAT cores
//!    replay to UNSAT on a plain solver, and a portfolio-racing session
//!    returns the same verdicts as a sequential one.

use proptest::prelude::*;
use smt::{
    solve, Cnf, IncrementalSession, Lit, PortfolioConfig, SatResult, SatSolver, SolveOutcome,
    SolverConfig, TermId, TermPool, Var,
};

// ---------------------------------------------------------------------------
// CDCL vs brute force
// ---------------------------------------------------------------------------

fn brute_force_sat(cnf: &Cnf) -> bool {
    let n = cnf.num_vars();
    assert!(n <= 16, "brute force limited to 16 vars");
    (0u32..(1 << n)).any(|bits| {
        let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        cnf.eval(&assignment)
    })
}

fn arb_cnf(max_vars: u32, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    let clause = prop::collection::vec((0..max_vars, any::<bool>()), 1..=3).prop_map(|lits| {
        lits.into_iter()
            .map(|(v, sign)| Var(v).lit(sign))
            .collect::<Vec<Lit>>()
    });
    prop::collection::vec(clause, 0..=max_clauses).prop_map(move |clauses| {
        let mut cnf = Cnf::new();
        for _ in 0..max_vars {
            cnf.fresh_var();
        }
        for c in clauses {
            cnf.add_clause(c);
        }
        cnf
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cdcl_agrees_with_brute_force(cnf in arb_cnf(8, 24)) {
        let expected = brute_force_sat(&cnf);
        let mut s = SatSolver::from_cnf(&cnf);
        let got = s.solve() == SolveOutcome::Sat;
        prop_assert_eq!(got, expected);
        if got {
            let assignment: Vec<bool> =
                (0..cnf.num_vars()).map(|i| s.value(Var(i))).collect();
            prop_assert!(cnf.eval(&assignment), "model does not satisfy formula");
        }
    }

    #[test]
    fn cdcl_agrees_on_denser_formulas(cnf in arb_cnf(12, 60)) {
        let expected = brute_force_sat(&cnf);
        let mut s = SatSolver::from_cnf(&cnf);
        let got = s.solve() == SolveOutcome::Sat;
        prop_assert_eq!(got, expected);
    }
}

// ---------------------------------------------------------------------------
// Incremental assumption solving vs fresh solving
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// One persistent instance, many assumption queries == one cold
    /// instance per query. Also checks core sanity: the reported failing
    /// assumptions are a subset of the given ones and are themselves
    /// unsatisfiable with the clause set.
    #[test]
    fn assumption_solving_matches_fresh_solving(
        cnf in arb_cnf(8, 20),
        queries in prop::collection::vec(
            prop::collection::vec((0u32..8, any::<bool>()), 0..=3), 1..=5),
    ) {
        let mut inc = SatSolver::from_cnf(&cnf);
        for q in &queries {
            let assumptions: Vec<Lit> =
                q.iter().map(|&(v, s)| Var(v).lit(s)).collect();
            // Fresh reference: the cnf plus one unit clause per assumption.
            let mut reference = cnf.clone();
            for &l in &assumptions {
                reference.add_clause(vec![l]);
            }
            let expected = brute_force_sat(&reference);
            let got = inc.solve_under_assumptions(&assumptions) == SolveOutcome::Sat;
            prop_assert_eq!(got, expected, "assumptions {:?}", assumptions);
            if got {
                let assignment: Vec<bool> =
                    (0..cnf.num_vars()).map(|i| inc.value(Var(i))).collect();
                prop_assert!(cnf.eval(&assignment), "model violates the clauses");
                for &l in &assumptions {
                    prop_assert_eq!(
                        assignment[l.var().0 as usize], l.is_pos(),
                        "model violates assumption {:?}", l
                    );
                }
            } else {
                let core = inc.failed_assumptions().to_vec();
                for l in &core {
                    prop_assert!(assumptions.contains(l), "core lit {:?} not assumed", l);
                }
                // The core (or the bare clause set when empty) is unsat.
                let mut with_core = cnf.clone();
                for &l in &core {
                    with_core.add_clause(vec![l]);
                }
                prop_assert!(!brute_force_sat(&with_core), "core is not a conflict");
            }
        }
    }

    /// The session facade agrees with one-shot term solving when the same
    /// query set is posed as activation-gated assumption solves.
    #[test]
    fn session_matches_one_shot_term_solving(
        base in 0u64..200, bound in 1u64..255,
        probes in prop::collection::vec(0u64..256, 1..=4),
    ) {
        let mut sess = IncrementalSession::new();
        let x = sess.pool_mut().bv_var("x", 8);
        let lo = sess.pool_mut().bv_const(base, 8);
        let hi = sess.pool_mut().bv_const(bound, 8);
        let above = sess.pool_mut().bv_ule(lo, x);
        let below = sess.pool_mut().bv_ult(x, hi);
        sess.assert(above);
        sess.assert(below);
        for &v in &probes {
            let cv = sess.pool_mut().bv_const(v, 8);
            let eq = sess.pool_mut().bv_eq(x, cv);
            let act = sess.activation(eq);
            let (got, _) = sess.solve_under(&[act]);

            let mut pool = TermPool::new();
            let fx = pool.bv_var("x", 8);
            let flo = pool.bv_const(base, 8);
            let fhi = pool.bv_const(bound, 8);
            let fabove = pool.bv_ule(flo, fx);
            let fbelow = pool.bv_ult(fx, fhi);
            let fcv = pool.bv_const(v, 8);
            let feq = pool.bv_eq(fx, fcv);
            let fresh = solve(&pool, &[fabove, fbelow, feq]);
            prop_assert_eq!(got.is_sat(), fresh.is_sat(), "probe {}", v);
        }
    }
}

// ---------------------------------------------------------------------------
// Bit-blaster vs concrete evaluation
// ---------------------------------------------------------------------------

/// A little expression language we generate randomly and build both as a
/// term DAG and as a concrete 64-bit computation.
#[derive(Clone, Debug)]
enum Expr {
    Var(u8),
    Const(u64),
    Add(Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
}

const WIDTH: u32 = 8;
const NVARS: u8 = 4;

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..NVARS).prop_map(Expr::Var),
        (0u64..256).prop_map(Expr::Const),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Expr::Not(Box::new(a))),
        ]
    })
}

fn build_term(pool: &mut TermPool, e: &Expr) -> TermId {
    match e {
        Expr::Var(i) => pool.bv_var(&format!("v{i}"), WIDTH),
        Expr::Const(c) => pool.bv_const(*c, WIDTH),
        Expr::Add(a, b) => {
            let (ta, tb) = (build_term(pool, a), build_term(pool, b));
            pool.bv_add(ta, tb)
        }
        Expr::And(a, b) => {
            let (ta, tb) = (build_term(pool, a), build_term(pool, b));
            pool.bv_and(ta, tb)
        }
        Expr::Or(a, b) => {
            let (ta, tb) = (build_term(pool, a), build_term(pool, b));
            pool.bv_or(ta, tb)
        }
        Expr::Xor(a, b) => {
            let (ta, tb) = (build_term(pool, a), build_term(pool, b));
            pool.bv_xor(ta, tb)
        }
        Expr::Not(a) => {
            let ta = build_term(pool, a);
            pool.bv_not(ta)
        }
    }
}

fn eval_expr(e: &Expr, env: &[u64]) -> u64 {
    let m = (1u64 << WIDTH) - 1;
    match e {
        Expr::Var(i) => env[*i as usize],
        Expr::Const(c) => c & m,
        Expr::Add(a, b) => (eval_expr(a, env).wrapping_add(eval_expr(b, env))) & m,
        Expr::And(a, b) => eval_expr(a, env) & eval_expr(b, env),
        Expr::Or(a, b) => eval_expr(a, env) | eval_expr(b, env),
        Expr::Xor(a, b) => eval_expr(a, env) ^ eval_expr(b, env),
        Expr::Not(a) => !eval_expr(a, env) & m,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bitblast_matches_concrete_eval(
        e in arb_expr(),
        env in prop::collection::vec(0u64..256, NVARS as usize),
    ) {
        let mut pool = TermPool::new();
        let t = build_term(&mut pool, &e);
        let expected = eval_expr(&e, &env);

        // Pin each variable to its concrete value and assert the composite
        // equals the concrete evaluation; must be SAT.
        let mut assertions = Vec::new();
        for i in 0..NVARS {
            let v = pool.bv_var(&format!("v{i}"), WIDTH);
            let c = pool.bv_const(env[i as usize], WIDTH);
            let eq = pool.bv_eq(v, c);
            assertions.push(eq);
        }
        let expc = pool.bv_const(expected, WIDTH);
        let eq_out = pool.bv_eq(t, expc);
        assertions.push(eq_out);
        prop_assert!(solve(&pool, &assertions).is_sat(), "expected value {expected} for {e:?}");

        // The negation must be UNSAT (the circuit is deterministic).
        let neq = pool.not(eq_out);
        let last = assertions.len() - 1;
        assertions[last] = neq;
        prop_assert!(!solve(&pool, &assertions).is_sat());
    }

    #[test]
    fn comparisons_match_concrete(
        a in 0u64..256, b in 0u64..256,
    ) {
        let mut pool = TermPool::new();
        let x = pool.bv_var("x", WIDTH);
        let y = pool.bv_var("y", WIDTH);
        let ca = pool.bv_const(a, WIDTH);
        let cb = pool.bv_const(b, WIDTH);
        let fix_x = pool.bv_eq(x, ca);
        let fix_y = pool.bv_eq(y, cb);
        let ult = pool.bv_ult(x, y);
        let ule = pool.bv_ule(x, y);

        let r = solve(&pool, &[fix_x, fix_y]);
        match r {
            SatResult::Sat(m) => {
                prop_assert_eq!(m.eval_bool(&pool, ult), Some(a < b));
                prop_assert_eq!(m.eval_bool(&pool, ule), Some(a <= b));
            }
            SatResult::Unsat => prop_assert!(false, "pinning must be sat"),
        }
    }
}

// ---------------------------------------------------------------------------
// Inprocessing / jitter / portfolio differential properties
// ---------------------------------------------------------------------------

fn solver_with(cnf: &Cnf, config: SolverConfig) -> SatSolver {
    let mut s = SatSolver::with_config(cnf.num_vars(), config);
    for c in cnf.clauses() {
        s.add_clause(c.clone());
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Phase saving, Luby restarts, subsumption, vivification sweeps and
    /// portfolio jitter are heuristics, not semantics: on a shared
    /// assumption-query stream, the tuned solver (with a sweep forced
    /// between queries) and three jittered variants must return exactly
    /// the verdicts of the plain kernel, and every UNSAT core they
    /// report must replay to UNSAT on a fresh plain solver.
    #[test]
    fn inprocessed_and_jittered_solvers_agree_with_plain(
        cnf in arb_cnf(10, 40),
        queries in prop::collection::vec(
            prop::collection::vec((0u32..10, any::<bool>()), 0..=4), 1..=6),
        seed in any::<u64>(),
    ) {
        let mut plain = solver_with(&cnf, SolverConfig::plain());
        let tuned_cfg = SolverConfig::default();
        let mut tuned = solver_with(&cnf, tuned_cfg.clone());
        let mut variants: Vec<SatSolver> = (1..4)
            .map(|i| solver_with(&cnf, tuned_cfg.jittered(i, seed)))
            .collect();
        for (qi, q) in queries.iter().enumerate() {
            let assumptions: Vec<Lit> =
                q.iter().map(|&(v, sgn)| Var(v).lit(sgn)).collect();
            if qi > 0 {
                // Exercise the learnt-DB sweep between queries, exactly
                // where a session would run it.
                tuned.inprocess_sweep();
            }
            let expected = plain.solve_under_assumptions(&assumptions) == SolveOutcome::Sat;
            for s in std::iter::once(&mut tuned).chain(variants.iter_mut()) {
                let got = s.solve_under_assumptions(&assumptions) == SolveOutcome::Sat;
                prop_assert_eq!(got, expected, "assumptions {:?}", assumptions);
                if !got {
                    let core = s.failed_assumptions().to_vec();
                    for l in &core {
                        prop_assert!(assumptions.contains(l), "core lit {:?} not assumed", l);
                    }
                    let mut replay = solver_with(&cnf, SolverConfig::plain());
                    prop_assert_eq!(
                        replay.solve_under_assumptions(&core),
                        SolveOutcome::Unsat,
                        "core {:?} does not replay to UNSAT", core
                    );
                }
            }
        }
    }

    /// A portfolio-racing session (thresholds forced to zero so every
    /// query races) returns the same verdicts as a sequential session,
    /// for any variant count and jitter seed.
    #[test]
    fn portfolio_session_matches_sequential_session(
        base in 0u64..200, bound in 1u64..255,
        probes in prop::collection::vec(0u64..256, 1..=4),
        seed in any::<u64>(),
        k in 2usize..=smt::PORTFOLIO_MAX_K,
    ) {
        let build = |portfolio: Option<PortfolioConfig>| {
            let mut sess = IncrementalSession::new();
            if let Some(p) = portfolio {
                sess = sess.with_portfolio(p);
            }
            let x = sess.pool_mut().bv_var("x", 8);
            let lo = sess.pool_mut().bv_const(base, 8);
            let hi = sess.pool_mut().bv_const(bound, 8);
            let above = sess.pool_mut().bv_ule(lo, x);
            let below = sess.pool_mut().bv_ult(x, hi);
            sess.assert(above);
            sess.assert(below);
            (sess, x)
        };
        let (mut seq, sx) = build(None);
        let (mut raced, rx) = build(Some(PortfolioConfig {
            k,
            min_clauses: 0,
            seed,
            ..PortfolioConfig::default()
        }));
        for &v in &probes {
            let cv = seq.pool_mut().bv_const(v, 8);
            let eq = seq.pool_mut().bv_eq(sx, cv);
            let act = seq.activation(eq);
            let (want, _) = seq.solve_under(&[act]);

            let cv = raced.pool_mut().bv_const(v, 8);
            let eq = raced.pool_mut().bv_eq(rx, cv);
            let act = raced.activation(eq);
            let (got, _) = raced.solve_under(&[act]);
            prop_assert_eq!(got.is_sat(), want.is_sat(), "probe {}", v);
        }
    }
}
