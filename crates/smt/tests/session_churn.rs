//! Session-churn stress: one [`IncrementalSession`] driven through
//! hundreds of activate / solve / retract cycles, the lifecycle a
//! long-lived re-verify loop or watch daemon subjects a group session
//! to. The point is not the verdicts (each cycle checks its own) but
//! the *asymptotics*: inprocessing sweeps must reclaim retracted
//! activation clauses, the learnt database must stay under its cap, the
//! watcher lists and clause arena must not grow without bound, and an
//! identical query re-posed late in the session must not cost more
//! search than it did the first time.
//!
//! All boundedness assertions are on deterministic work counters and
//! database gauges, never on wall time.

use smt::{IncrementalSession, SatResult, TermId, TermPool};

/// A small mixed bool/bitvector base problem plus a menu of query
/// predicates, some satisfiable alongside the base, some not.
fn base_and_queries(pool: &mut TermPool) -> (Vec<TermId>, Vec<TermId>) {
    let x = pool.bv_var("x", 16);
    let y = pool.bv_var("y", 16);
    let p = pool.bool_var("p");
    let base = {
        let c100 = pool.bv_const(100, 16);
        let lo = pool.bv_ult(c100, x); // 100 < x
        let hi_bound = pool.bv_const(60000, 16);
        let hi = pool.bv_ult(x, hi_bound); // x < 60000
        let sum = pool.bv_add(x, y);
        let c7 = pool.bv_const(7, 16);
        let sum_lo = pool.bv_ult(c7, sum); // 7 < x + y
        let gate = pool.implies(p, sum_lo);
        vec![lo, hi, gate]
    };
    let mut queries = Vec::new();
    for k in 0..16u64 {
        let c = pool.bv_const(200 + 37 * k, 16);
        queries.push(pool.bv_ult(x, c)); // sat for every k (x can be 101)
        let tiny = pool.bv_const(3 + (k % 5), 16);
        queries.push(pool.bv_ult(x, tiny)); // unsat: contradicts 100 < x
        let eq = pool.bv_const(5000 + k, 16);
        queries.push(pool.bv_eq(x, eq)); // sat point query
    }
    (base, queries)
}

#[test]
fn hundreds_of_solve_retract_cycles_stay_bounded() {
    let mut sess = IncrementalSession::new().with_learnt_cap(2_000);
    let (base, queries) = {
        let pool = sess.pool_mut();
        base_and_queries(pool)
    };
    for t in base {
        sess.assert(t);
    }

    // Warm-up pass: every query once, recording its verdict and its
    // search cost (conflicts + decisions) as the baseline.
    let mut baseline: Vec<(bool, u64)> = Vec::new();
    for &q in &queries {
        let act = sess.activation(q);
        let (r, st) = sess.solve_under(&[act]);
        sess.retract(act);
        baseline.push((r.is_sat(), st.sat.conflicts + st.sat.decisions));
    }
    let db_after_warmup = sess.sat_db_stats();

    // Churn: hundreds of cycles over the same query menu, fresh
    // activation literal each time (that is what retraction costs — a
    // retracted activation leaves a permanently-false literal and a
    // dead activation clause behind for the sweep to reclaim).
    let cycles = 400usize;
    let mut max_arena = 0u64;
    let mut max_watchers = 0u64;
    let mut max_learnts = 0u64;
    for i in 0..cycles {
        let q = queries[i % queries.len()];
        let act = sess.activation(q);
        let (r, _) = sess.solve_under(&[act]);
        sess.retract(act);
        assert_eq!(
            r.is_sat(),
            baseline[i % queries.len()].0,
            "cycle {i}: verdict flipped on an identical query"
        );
        let db = sess.sat_db_stats();
        max_arena = max_arena.max(db.arena_words);
        max_watchers = max_watchers.max(db.watcher_entries);
        max_learnts = max_learnts.max(db.live_long_learnts);
    }

    // Learnt DB respects the configured cap throughout.
    assert!(
        max_learnts <= 2_000,
        "learnt DB outgrew its cap: {max_learnts} live long learnts"
    );
    // The arena and watcher lists may grow past the warm-up size (each
    // cycle adds an activation var and clause) but must stay linear-ish
    // in the warm-up footprint, not in the cycle count: sweeps reclaim
    // dead activation clauses, compaction returns arena words, and
    // watcher rebuilds drop dead references. 400 cycles × ~tens of
    // words each would otherwise dwarf the base encoding.
    assert!(
        max_arena < db_after_warmup.arena_words * 3,
        "clause arena leaked: warm-up {} words, churn peak {max_arena}",
        db_after_warmup.arena_words
    );
    assert!(
        max_watchers < db_after_warmup.watcher_entries * 3,
        "watcher lists leaked: warm-up {} entries, churn peak {max_watchers}",
        db_after_warmup.watcher_entries
    );

    // Re-posing the menu after heavy churn must not cost more search
    // than the cold pass did. Individual queries (and even the exact
    // total) wobble a little — phase saving and VSIDS state moved
    // during churn, the learnt cap GC'd clauses — so the bound is on
    // the whole menu's conflicts + decisions staying within a small
    // constant factor of the cold pass: 400 cycles of retraction
    // clutter must not make identical queries systematically harder.
    let cold_total: u64 = baseline.iter().map(|&(_, w)| w).sum();
    let mut warm_total = 0u64;
    for (j, &q) in queries.iter().enumerate() {
        let act = sess.activation(q);
        let (r, st) = sess.solve_under(&[act]);
        sess.retract(act);
        assert_eq!(r.is_sat(), baseline[j].0, "query {j}: verdict drifted");
        warm_total += st.sat.conflicts + st.sat.decisions;
    }
    assert!(
        warm_total <= cold_total + cold_total / 4,
        "churn degraded search on identical queries ({warm_total} vs cold {cold_total})"
    );
}

/// The same churn loop with sweeping disabled must still answer
/// correctly — sweeps are an optimization, not a soundness crutch — and
/// the sweeping session must end with a no-larger clause arena, which
/// is the direct measurement of what inprocessing reclaims.
#[test]
fn sweeps_reclaim_what_churn_leaves_behind() {
    let run = |sweep: bool| -> (Vec<bool>, u64) {
        let cfg = smt::SolverConfig {
            sweep,
            sweep_every: 16,
            ..smt::SolverConfig::default()
        };
        let mut sess = IncrementalSession::new().with_config(cfg);
        let (base, queries) = base_and_queries(sess.pool_mut());
        for t in base {
            sess.assert(t);
        }
        let mut verdicts = Vec::new();
        for i in 0..200usize {
            let q = queries[i % queries.len()];
            let act = sess.activation(q);
            let (r, _) = sess.solve_under(&[act]);
            sess.retract(act);
            verdicts.push(r.is_sat());
        }
        (verdicts, sess.sat_db_stats().arena_words)
    };
    let (with_sweep, arena_swept) = run(true);
    let (without_sweep, arena_unswept) = run(false);
    assert_eq!(
        with_sweep, without_sweep,
        "sweeping changed a churn verdict"
    );
    assert!(
        arena_swept <= arena_unswept,
        "sweeping ended with a larger arena ({arena_swept} > {arena_unswept})"
    );
}

/// Retraction really disables a constraint: a query unsatisfiable under
/// an active assumption becomes satisfiable again once that activation
/// is retracted, across many interleavings.
#[test]
fn retraction_interleaving_is_sound() {
    let mut sess = IncrementalSession::new();
    let pool = sess.pool_mut();
    let x = pool.bv_var("x", 8);
    let c10 = pool.bv_const(10, 8);
    let c20 = pool.bv_const(20, 8);
    let lt10 = pool.bv_ult(x, c10);
    let gt20 = pool.bv_ult(c20, x);
    for round in 0..50u32 {
        let a = sess.activation(lt10);
        let b = sess.activation(gt20);
        // Together contradictory; alone each is satisfiable.
        let (both, _) = sess.solve_under(&[a, b]);
        assert!(matches!(both, SatResult::Unsat), "round {round}");
        let (only_a, _) = sess.solve_under(&[a]);
        assert!(only_a.is_sat(), "round {round}");
        sess.retract(a);
        let (only_b, _) = sess.solve_under(&[b]);
        assert!(only_b.is_sat(), "round {round}");
        sess.retract(b);
    }
}
