//! A from-scratch SMT substrate for quantifier-free formulas over booleans
//! and fixed-width bitvectors, decided by bit-blasting into CNF and solving
//! with a CDCL SAT solver.
//!
//! This crate plays the role that the Zen library + Z3 play in the Lightyear
//! paper (§6.1): route-map verification conditions are quantifier-free
//! formulas over route attributes (32-bit prefixes, 32-bit integers, finite
//! community sets), which is exactly the fragment that bit-blasting decides.
//!
//! # Architecture
//!
//! * [`term`] — hash-consed term DAG with smart constructors that perform
//!   local simplification (constant folding, flattening, negation pushing).
//! * [`bitblast`] — Tseitin conversion of the term DAG into CNF; bitvector
//!   operations are lowered to per-bit boolean circuits.
//! * [`sat`] — a MiniSat-style CDCL solver: two-watched-literal propagation,
//!   first-UIP conflict analysis, VSIDS decision heuristic with phase
//!   saving, Luby restarts and activity-driven learnt-clause reduction.
//! * [`solver`] — the public facade: assert [`TermId`]s, check satisfiability
//!   and extract models; also reports the statistics (variable and clause
//!   counts) used to regenerate Figure 3 of the paper.
//!
//! # Example
//!
//! ```
//! use smt::{TermPool, solve, SatResult};
//!
//! let mut pool = TermPool::new();
//! let x = pool.bv_var("x", 8);
//! let five = pool.bv_const(5, 8);
//! let c = pool.bv_ult(x, five); // x < 5
//! match solve(&pool, &[c]) {
//!     SatResult::Sat(model) => assert!(model.eval_bv(&pool, x).unwrap() < 5),
//!     _ => panic!("expected sat"),
//! }
//! ```

pub mod bitblast;
pub mod cnf;
pub mod sat;
pub mod solver;
pub mod term;

pub use bitblast::IncrementalBlaster;
pub use cnf::{Cnf, Lit, Var};
pub use sat::{
    DbStats, SatSolver, SatStats, SolveOutcome, SolverConfig, SolverError, ARENA_CAP_WORDS,
};
pub use solver::{
    solve, solve_with_stats, Assumption, IncrementalSession, Model, PortfolioConfig,
    PortfolioSlots, SatResult, SolverStats, Value, PORTFOLIO_MAX_K, PORTFOLIO_WIN_COUNTERS,
};
pub use term::{Sort, Term, TermId, TermPool};
