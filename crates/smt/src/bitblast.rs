//! Tseitin bit-blasting: lowers a term DAG into CNF.
//!
//! Boolean terms map to single SAT literals; bitvector terms map to vectors
//! of literals (least-significant bit first). Every composite node gets a
//! definitional encoding, memoized over the hash-consed [`TermId`] so shared
//! sub-formulas are encoded once.
//!
//! The workhorse is [`IncrementalBlaster`], which keeps its structural
//! cache (`TermId -> Lit`) *across* calls: terms added to the pool after a
//! first blast are lowered on demand while everything already encoded is
//! reused, which is what makes one persistent SAT instance able to serve a
//! whole group of related checks (see `solver::IncrementalSession`). The
//! cache is sound because [`crate::term::TermPool`] is append-only and
//! hash-consed: a `TermId` never changes meaning. The one-shot
//! [`bitblast`] entry point is a thin wrapper.
//!
//! Storage is flat for feed throughput: clauses live in one contiguous
//! literal buffer with an offset table (no per-clause allocation — Tseitin
//! output is hundreds of thousands of 2-3 literal clauses on WAN-scale
//! topologies, and the session streams them into the solver as borrowed
//! slices), and the structural caches are dense `TermId`-indexed vectors
//! rather than hash maps.

use crate::cnf::{Cnf, Lit, Var};
use crate::sat::SatSolver;
use crate::term::{Term, TermId, TermPool};

/// Sentinel for "term not blasted yet" in the dense boolean cache.
const NO_LIT: u32 = u32::MAX;

/// Bit-blast `assertions` (all boolean sorted) over `pool`, asserting each
/// one true. Returns the loaded blaster; build a solver from it with
/// [`IncrementalBlaster::feed`] and read models through its cache
/// accessors.
pub fn bitblast(pool: &TermPool, assertions: &[TermId]) -> IncrementalBlaster {
    let mut b = IncrementalBlaster::new();
    for &a in assertions {
        b.assert_true(pool, a);
    }
    b
}

/// A bit-blaster whose definitional encodings persist across calls.
///
/// Unlike the one-shot [`bitblast`], the blaster does not borrow the pool:
/// each call takes the pool by reference, so callers may interleave term
/// construction and blasting on the same growing pool.
#[derive(Default, Clone)]
pub struct IncrementalBlaster {
    /// All clause literals, concatenated.
    clause_lits: Vec<Lit>,
    /// End offset of each clause in `clause_lits` (start = previous end).
    clause_ends: Vec<u32>,
    num_vars: u32,
    /// Literal for each blasted boolean term, indexed by `TermId` (raw
    /// literal; `NO_LIT` = not blasted).
    bool_map: Vec<u32>,
    /// Bit literals (LSB first) for each blasted bitvector term, indexed
    /// by `TermId` (empty = not blasted; every real bitvector has width
    /// at least one).
    bv_map: Vec<Vec<Lit>>,
    true_lit: Option<Lit>,
}

impl IncrementalBlaster {
    /// An empty blaster.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of SAT variables allocated so far.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of clauses accumulated so far (clauses are only appended).
    pub fn num_clauses(&self) -> usize {
        self.clause_ends.len()
    }

    /// The `i`-th clause, as a borrowed slice into the flat buffer.
    pub fn clause(&self, i: usize) -> &[Lit] {
        let end = self.clause_ends[i] as usize;
        let start = if i == 0 {
            0
        } else {
            self.clause_ends[i - 1] as usize
        };
        &self.clause_lits[start..end]
    }

    /// Feed clauses `[from, num_clauses)` into `sat` as borrowed slices
    /// (no per-clause allocation), growing its variable tables first.
    /// Returns the new fed watermark. This is the incremental session's
    /// sync path; a `from` of 0 builds a fresh solver.
    pub fn feed(&self, sat: &mut SatSolver, from: usize) -> usize {
        sat.ensure_num_vars(self.num_vars);
        for i in from..self.num_clauses() {
            sat.add_clause_slice(self.clause(i));
        }
        self.num_clauses()
    }

    /// The accumulated formula as a classic [`Cnf`] (owned clause vectors;
    /// test/debug convenience, not a hot path).
    pub fn to_cnf(&self) -> Cnf {
        let mut cnf = Cnf::new();
        for _ in 0..self.num_vars {
            cnf.fresh_var();
        }
        for i in 0..self.num_clauses() {
            cnf.add_clause(self.clause(i).to_vec());
        }
        cnf
    }

    /// Literal of an already-blasted boolean term, if any.
    pub fn bool_lit(&self, t: TermId) -> Option<Lit> {
        match self.bool_map.get(t.0 as usize) {
            Some(&raw) if raw != NO_LIT => Some(Lit(raw)),
            _ => None,
        }
    }

    /// Bit literals of an already-blasted bitvector term, if any.
    pub fn bv_bits(&self, t: TermId) -> Option<&[Lit]> {
        match self.bv_map.get(t.0 as usize) {
            Some(bits) if !bits.is_empty() => Some(bits),
            _ => None,
        }
    }

    /// Blast `t` and assert it true at the top level.
    pub fn assert_true(&mut self, pool: &TermPool, t: TermId) {
        let l = self.blast_bool(pool, t);
        self.push_clause(&[l]);
    }

    /// A fresh literal with no attached meaning — the activation-literal
    /// primitive: gate a formula `f` per query via `clause(!a, blast(f))`
    /// and assume `a` only in the queries that want `f`.
    pub fn fresh_lit(&mut self) -> Lit {
        self.fresh()
    }

    /// Append a clause over already-created literals.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        self.push_clause(lits);
    }

    /// Append a clause to the flat store.
    fn push_clause(&mut self, lits: &[Lit]) {
        debug_assert!(
            lits.iter().all(|l| l.var().0 < self.num_vars),
            "clause references unallocated variable"
        );
        self.clause_lits.extend_from_slice(lits);
        self.clause_ends.push(self.clause_lits.len() as u32);
    }

    /// A literal constrained to be true (allocated lazily).
    fn tru(&mut self) -> Lit {
        if let Some(l) = self.true_lit {
            return l;
        }
        let l = self.fresh();
        self.push_clause(&[l]);
        self.true_lit = Some(l);
        l
    }

    fn fls(&mut self) -> Lit {
        !self.tru()
    }

    fn const_lit(&mut self, b: bool) -> Lit {
        if b {
            self.tru()
        } else {
            self.fls()
        }
    }

    fn fresh(&mut self) -> Lit {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        v.pos()
    }

    fn cache_bool(&mut self, t: TermId, l: Lit) {
        let i = t.0 as usize;
        if i >= self.bool_map.len() {
            self.bool_map.resize(i + 1, NO_LIT);
        }
        self.bool_map[i] = l.0;
    }

    fn cache_bv(&mut self, t: TermId, bits: Vec<Lit>) {
        debug_assert!(!bits.is_empty());
        let i = t.0 as usize;
        if i >= self.bv_map.len() {
            self.bv_map.resize(i + 1, Vec::new());
        }
        self.bv_map[i] = bits;
    }

    /// Blast a boolean-sorted term to a single literal.
    pub fn blast_bool(&mut self, pool: &TermPool, t: TermId) -> Lit {
        if let Some(l) = self.bool_lit(t) {
            return l;
        }
        let lit = match pool.term(t).clone() {
            Term::True => self.tru(),
            Term::False => self.fls(),
            Term::BoolVar(_) => self.fresh(),
            Term::Not(a) => !self.blast_bool(pool, a),
            Term::And(parts) => {
                let lits: Vec<Lit> = parts.iter().map(|&p| self.blast_bool(pool, p)).collect();
                self.encode_and(&lits)
            }
            Term::Or(parts) => {
                let lits: Vec<Lit> = parts.iter().map(|&p| !self.blast_bool(pool, p)).collect();
                !self.encode_and(&lits)
            }
            Term::Ite(c, a, b) => {
                // Boolean ite is normally rewritten away by the pool, but
                // handle it defensively.
                let lc = self.blast_bool(pool, c);
                let la = self.blast_bool(pool, a);
                let lb = self.blast_bool(pool, b);
                self.encode_mux(lc, la, lb)
            }
            Term::BvEq(a, b) => {
                let xa = self.blast_bv(pool, a);
                let xb = self.blast_bv(pool, b);
                let eqs: Vec<Lit> = xa
                    .iter()
                    .zip(xb.iter())
                    .map(|(&p, &q)| self.encode_xnor(p, q))
                    .collect();
                self.encode_and(&eqs)
            }
            Term::BvUlt(a, b) => {
                let xa = self.blast_bv(pool, a);
                let xb = self.blast_bv(pool, b);
                self.encode_ult(&xa, &xb)
            }
            Term::BvUle(a, b) => {
                let xa = self.blast_bv(pool, a);
                let xb = self.blast_bv(pool, b);
                let gt = self.encode_ult(&xb, &xa);
                !gt
            }
            other => panic!("blast_bool on non-boolean term {other:?}"),
        };
        self.cache_bool(t, lit);
        lit
    }

    /// Blast a bitvector-sorted term to a vector of literals (LSB first).
    fn blast_bv(&mut self, pool: &TermPool, t: TermId) -> Vec<Lit> {
        if let Some(bits) = self.bv_bits(t) {
            return bits.to_vec();
        }
        let bits: Vec<Lit> = match pool.term(t).clone() {
            Term::BvConst { width, value } => (0..width)
                .map(|i| {
                    let b = (value >> i) & 1 == 1;
                    self.const_lit(b)
                })
                .collect(),
            Term::BvVar { width, .. } => (0..width).map(|_| self.fresh()).collect(),
            Term::BvAnd(a, b) => {
                let (xa, xb) = (self.blast_bv(pool, a), self.blast_bv(pool, b));
                xa.iter()
                    .zip(xb.iter())
                    .map(|(&p, &q)| self.encode_and(&[p, q]))
                    .collect()
            }
            Term::BvOr(a, b) => {
                let (xa, xb) = (self.blast_bv(pool, a), self.blast_bv(pool, b));
                xa.iter()
                    .zip(xb.iter())
                    .map(|(&p, &q)| {
                        let n = self.encode_and(&[!p, !q]);
                        !n
                    })
                    .collect()
            }
            Term::BvXor(a, b) => {
                let (xa, xb) = (self.blast_bv(pool, a), self.blast_bv(pool, b));
                xa.iter()
                    .zip(xb.iter())
                    .map(|(&p, &q)| {
                        let xn = self.encode_xnor(p, q);
                        !xn
                    })
                    .collect()
            }
            Term::BvNot(a) => self.blast_bv(pool, a).iter().map(|&l| !l).collect(),
            Term::BvAdd(a, b) => {
                let (xa, xb) = (self.blast_bv(pool, a), self.blast_bv(pool, b));
                self.encode_adder(&xa, &xb)
            }
            Term::BvExtract { hi, lo, arg } => {
                let bits = self.blast_bv(pool, arg);
                bits[lo as usize..=hi as usize].to_vec()
            }
            Term::BvLshrConst { arg, amount } => {
                let bits = self.blast_bv(pool, arg);
                let w = bits.len();
                let mut out = Vec::with_capacity(w);
                for i in 0..w {
                    let src = i + amount as usize;
                    if src < w {
                        out.push(bits[src]);
                    } else {
                        out.push(self.fls());
                    }
                }
                out
            }
            Term::Ite(c, a, b) => {
                let lc = self.blast_bool(pool, c);
                let (xa, xb) = (self.blast_bv(pool, a), self.blast_bv(pool, b));
                xa.iter()
                    .zip(xb.iter())
                    .map(|(&p, &q)| self.encode_mux(lc, p, q))
                    .collect()
            }
            other => panic!("blast_bv on non-bitvector term {other:?}"),
        };
        self.cache_bv(t, bits.clone());
        bits
    }

    /// Definitional AND gate: out <-> /\ lits.
    fn encode_and(&mut self, lits: &[Lit]) -> Lit {
        match lits.len() {
            0 => self.tru(),
            1 => lits[0],
            _ => {
                let out = self.fresh();
                // out -> each lit
                for &l in lits {
                    self.push_clause(&[!out, l]);
                }
                // all lits -> out
                let mut cl: Vec<Lit> = lits.iter().map(|&l| !l).collect();
                cl.push(out);
                self.push_clause(&cl);
                out
            }
        }
    }

    /// Definitional XNOR gate: out <-> (a == b).
    fn encode_xnor(&mut self, a: Lit, b: Lit) -> Lit {
        let out = self.fresh();
        self.push_clause(&[!out, !a, b]);
        self.push_clause(&[!out, a, !b]);
        self.push_clause(&[out, a, b]);
        self.push_clause(&[out, !a, !b]);
        out
    }

    /// Definitional MUX gate: out <-> (c ? a : b).
    fn encode_mux(&mut self, c: Lit, a: Lit, b: Lit) -> Lit {
        let out = self.fresh();
        self.push_clause(&[!c, !a, out]);
        self.push_clause(&[!c, a, !out]);
        self.push_clause(&[c, !b, out]);
        self.push_clause(&[c, b, !out]);
        out
    }

    /// Unsigned less-than comparator: returns a literal true iff a < b.
    fn encode_ult(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        debug_assert_eq!(a.len(), b.len());
        // lt_i: comparing bits [0..=i], a < b. Built from LSB up:
        // lt_i = (!a_i & b_i) | (a_i==b_i & lt_{i-1})
        let mut lt = self.fls();
        for i in 0..a.len() {
            let (ai, bi) = (a[i], b[i]);
            let strictly = self.encode_and(&[!ai, bi]);
            let eq = self.encode_xnor(ai, bi);
            let carry = self.encode_and(&[eq, lt]);
            let n = self.encode_and(&[!strictly, !carry]);
            lt = !n;
        }
        lt
    }

    /// Ripple-carry adder (modular).
    fn encode_adder(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        debug_assert_eq!(a.len(), b.len());
        let mut out = Vec::with_capacity(a.len());
        let mut carry = self.fls();
        for i in 0..a.len() {
            // xnor(a,b); its negation is xor(a,b).
            let axb = self.encode_xnor(a[i], b[i]);
            // sum = xor(xor(a,b), carry) = !xnor(xor(a,b), carry)
            let s = !self.encode_xnor(!axb, carry);
            // carry_out = (a & b) | (carry & xor(a,b))
            let ab = self.encode_and(&[a[i], b[i]]);
            let cx = self.encode_and(&[carry, !axb]);
            let no = self.encode_and(&[!ab, !cx]);
            out.push(s);
            carry = !no;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{SatSolver, SolveOutcome};
    use crate::term::TermPool;

    fn is_sat(pool: &TermPool, assertions: &[TermId]) -> bool {
        let blasted = bitblast(pool, assertions);
        let mut s = SatSolver::new(0);
        blasted.feed(&mut s, 0);
        s.solve() == SolveOutcome::Sat
    }

    #[test]
    fn bool_var_sat() {
        let mut p = TermPool::new();
        let a = p.bool_var("a");
        assert!(is_sat(&p, &[a]));
        let na = p.not(a);
        assert!(!is_sat(&p, &[a, na]));
    }

    #[test]
    fn bv_eq_const() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 8);
        let c = p.bv_const(42, 8);
        let eq = p.bv_eq(x, c);
        assert!(is_sat(&p, &[eq]));
        // x == 42 and x == 43 is unsat.
        let c2 = p.bv_const(43, 8);
        let eq2 = p.bv_eq(x, c2);
        assert!(!is_sat(&p, &[eq, eq2]));
    }

    #[test]
    fn ult_antisymmetric() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 6);
        let y = p.bv_var("y", 6);
        let xy = p.bv_ult(x, y);
        let yx = p.bv_ult(y, x);
        assert!(is_sat(&p, &[xy]));
        assert!(!is_sat(&p, &[xy, yx]));
    }

    #[test]
    fn ule_total() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 4);
        let y = p.bv_var("y", 4);
        let xy = p.bv_ule(x, y);
        let yx = p.bv_ule(y, x);
        let nxy = p.not(xy);
        let nyx = p.not(yx);
        // !(x<=y) and !(y<=x) is unsat (totality).
        assert!(!is_sat(&p, &[nxy, nyx]));
    }

    #[test]
    fn adder_concrete() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 8);
        let a = p.bv_const(100, 8);
        let b = p.bv_const(56, 8);
        let sum = p.bv_add(x, b);
        let eq_in = p.bv_eq(x, a);
        let expect = p.bv_const(156, 8);
        let eq_out = p.bv_eq(sum, expect);
        let neq_out = p.not(eq_out);
        assert!(is_sat(&p, &[eq_in, eq_out]));
        assert!(!is_sat(&p, &[eq_in, neq_out]));
    }

    #[test]
    fn adder_wraps() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 8);
        let c = p.bv_const(200, 8);
        let sum = p.bv_add(x, c); // x + 200
        let eq_in = p.bv_eq(x, c); // x = 200
        let expect = p.bv_const(400 % 256, 8);
        let eq_out = p.bv_eq(sum, expect);
        let bad = p.not(eq_out);
        assert!(!is_sat(&p, &[eq_in, bad]));
    }

    #[test]
    fn bitwise_ops() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 8);
        let a = p.bv_const(0b1100, 8);
        let b = p.bv_const(0b1010, 8);
        let ex = p.bv_eq(x, a);
        for (op, expect) in [
            (p.bv_and(x, b), 0b1000u64),
            (p.bv_or(x, b), 0b1110),
            (p.bv_xor(x, b), 0b0110),
        ] {
            let e = p.bv_const(expect, 8);
            let eq = p.bv_eq(op, e);
            let ne = p.not(eq);
            assert!(!is_sat(&p, &[ex, ne]));
        }
    }

    #[test]
    fn extract_and_shift() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 8);
        let v = p.bv_const(0b1011_0110, 8);
        let ex = p.bv_eq(x, v);
        let hi = p.bv_extract(7, 4, x);
        let e_hi = p.bv_const(0b1011, 4);
        let eq_hi = p.bv_eq(hi, e_hi);
        let ne = p.not(eq_hi);
        assert!(!is_sat(&p, &[ex, ne]));

        let sh = p.bv_lshr_const(x, 3);
        let e_sh = p.bv_const(0b0001_0110, 8);
        let eq_sh = p.bv_eq(sh, e_sh);
        let ne2 = p.not(eq_sh);
        assert!(!is_sat(&p, &[ex, ne2]));
    }

    #[test]
    fn ite_bv() {
        let mut p = TermPool::new();
        let c = p.bool_var("c");
        let a = p.bv_const(1, 4);
        let b = p.bv_const(2, 4);
        let x = p.ite(c, a, b);
        let is_one = p.bv_eq(x, a);
        // c and x != 1 is unsat
        let ne = p.not(is_one);
        assert!(!is_sat(&p, &[c, ne]));
        // !c and x == 1 is unsat
        let nc = p.not(c);
        assert!(!is_sat(&p, &[nc, is_one]));
    }

    #[test]
    fn incremental_blaster_reuses_encodings() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 8);
        let c5 = p.bv_const(5, 8);
        let lt = p.bv_ult(x, c5);
        let mut b = IncrementalBlaster::new();
        b.assert_true(&p, lt);
        let vars_after_first = b.num_vars();
        // New term over the same sub-DAG: only the new comparator is
        // encoded, x's bits are reused.
        let c3 = p.bv_const(3, 8);
        let lt2 = p.bv_ult(x, c3);
        let l2 = b.blast_bool(&p, lt2);
        assert!(b.num_vars() > vars_after_first);
        // Re-blasting either term is free (cache hit, no new vars).
        let before = b.num_vars();
        let l2_again = b.blast_bool(&p, lt2);
        assert_eq!(l2, l2_again);
        assert_eq!(b.num_vars(), before);
        assert_eq!(b.bool_lit(lt2), Some(l2));
    }

    #[test]
    fn flat_store_round_trips_to_cnf() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 4);
        let c = p.bv_const(9, 4);
        let eq = p.bv_eq(x, c);
        let b = bitblast(&p, &[eq]);
        let cnf = b.to_cnf();
        assert_eq!(cnf.num_vars(), b.num_vars());
        assert_eq!(cnf.num_clauses(), b.num_clauses());
        for (i, cl) in cnf.clauses().iter().enumerate() {
            assert_eq!(cl.as_slice(), b.clause(i));
        }
        let mut s = SatSolver::from_cnf(&cnf);
        assert_eq!(s.solve(), SolveOutcome::Sat);
    }
}
