//! Tseitin bit-blasting: lowers a term DAG into CNF.
//!
//! Boolean terms map to single SAT literals; bitvector terms map to vectors
//! of literals (least-significant bit first). Every composite node gets a
//! definitional encoding, memoized over the hash-consed [`TermId`] so shared
//! sub-formulas are encoded once.
//!
//! The workhorse is [`IncrementalBlaster`], which keeps its structural
//! cache (`TermId -> Lit`) *across* calls: terms added to the pool after a
//! first blast are lowered on demand while everything already encoded is
//! reused, which is what makes one persistent SAT instance able to serve a
//! whole group of related checks (see `solver::IncrementalSession`). The
//! cache is sound because [`crate::term::TermPool`] is append-only and
//! hash-consed: a `TermId` never changes meaning. The one-shot
//! [`bitblast`] entry point is a thin wrapper.

use crate::cnf::{Cnf, Lit};
use crate::term::{Term, TermId, TermPool};
use std::collections::HashMap;

/// The result of bit-blasting a set of assertions.
pub struct Blasted {
    /// The CNF to hand to the SAT solver.
    pub cnf: Cnf,
    /// Literal for each boolean term encountered.
    pub bool_map: HashMap<TermId, Lit>,
    /// Bit literals (LSB first) for each bitvector term encountered.
    pub bv_map: HashMap<TermId, Vec<Lit>>,
}

/// Bit-blast `assertions` (all boolean sorted) over `pool` into CNF,
/// asserting each one true.
pub fn bitblast(pool: &TermPool, assertions: &[TermId]) -> Blasted {
    let mut b = IncrementalBlaster::new();
    for &a in assertions {
        b.assert_true(pool, a);
    }
    b.into_blasted()
}

/// A bit-blaster whose definitional encodings persist across calls.
///
/// Unlike the one-shot [`bitblast`], the blaster does not borrow the pool:
/// each call takes the pool by reference, so callers may interleave term
/// construction and blasting on the same growing pool.
#[derive(Default)]
pub struct IncrementalBlaster {
    cnf: Cnf,
    bool_map: HashMap<TermId, Lit>,
    bv_map: HashMap<TermId, Vec<Lit>>,
    true_lit: Option<Lit>,
}

impl IncrementalBlaster {
    /// An empty blaster.
    pub fn new() -> Self {
        Self::default()
    }

    /// The CNF accumulated so far (clauses are only ever appended).
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// Literals of boolean terms encoded so far.
    pub fn bool_map(&self) -> &HashMap<TermId, Lit> {
        &self.bool_map
    }

    /// Bit vectors of bitvector terms encoded so far.
    pub fn bv_map(&self) -> &HashMap<TermId, Vec<Lit>> {
        &self.bv_map
    }

    /// Blast `t` and assert it true at the top level.
    pub fn assert_true(&mut self, pool: &TermPool, t: TermId) {
        let l = self.blast_bool(pool, t);
        self.cnf.add_clause(vec![l]);
    }

    /// A fresh literal with no attached meaning — the activation-literal
    /// primitive: gate a formula `f` per query via `clause(!a, blast(f))`
    /// and assume `a` only in the queries that want `f`.
    pub fn fresh_lit(&mut self) -> Lit {
        self.cnf.fresh_var().pos()
    }

    /// Append a clause over already-created literals.
    pub fn add_clause(&mut self, lits: Vec<Lit>) {
        self.cnf.add_clause(lits);
    }

    /// Consume the blaster, yielding the classic [`Blasted`] triple.
    pub fn into_blasted(self) -> Blasted {
        Blasted {
            cnf: self.cnf,
            bool_map: self.bool_map,
            bv_map: self.bv_map,
        }
    }

    /// A literal constrained to be true (allocated lazily).
    fn tru(&mut self) -> Lit {
        if let Some(l) = self.true_lit {
            return l;
        }
        let v = self.cnf.fresh_var();
        let l = v.pos();
        self.cnf.add_clause(vec![l]);
        self.true_lit = Some(l);
        l
    }

    fn fls(&mut self) -> Lit {
        !self.tru()
    }

    fn const_lit(&mut self, b: bool) -> Lit {
        if b {
            self.tru()
        } else {
            self.fls()
        }
    }

    fn fresh(&mut self) -> Lit {
        self.cnf.fresh_var().pos()
    }

    /// Blast a boolean-sorted term to a single literal.
    pub fn blast_bool(&mut self, pool: &TermPool, t: TermId) -> Lit {
        if let Some(&l) = self.bool_map.get(&t) {
            return l;
        }
        let lit = match pool.term(t).clone() {
            Term::True => self.tru(),
            Term::False => self.fls(),
            Term::BoolVar(_) => self.fresh(),
            Term::Not(a) => !self.blast_bool(pool, a),
            Term::And(parts) => {
                let lits: Vec<Lit> = parts.iter().map(|&p| self.blast_bool(pool, p)).collect();
                self.encode_and(&lits)
            }
            Term::Or(parts) => {
                let lits: Vec<Lit> = parts.iter().map(|&p| self.blast_bool(pool, p)).collect();
                let neg: Vec<Lit> = lits.iter().map(|&l| !l).collect();
                !self.encode_and(&neg)
            }
            Term::Ite(c, a, b) => {
                // Boolean ite is normally rewritten away by the pool, but
                // handle it defensively.
                let lc = self.blast_bool(pool, c);
                let la = self.blast_bool(pool, a);
                let lb = self.blast_bool(pool, b);
                self.encode_mux(lc, la, lb)
            }
            Term::BvEq(a, b) => {
                let xa = self.blast_bv(pool, a);
                let xb = self.blast_bv(pool, b);
                let eqs: Vec<Lit> = xa
                    .iter()
                    .zip(xb.iter())
                    .map(|(&p, &q)| self.encode_xnor(p, q))
                    .collect();
                self.encode_and(&eqs)
            }
            Term::BvUlt(a, b) => {
                let xa = self.blast_bv(pool, a);
                let xb = self.blast_bv(pool, b);
                self.encode_ult(&xa, &xb)
            }
            Term::BvUle(a, b) => {
                let xa = self.blast_bv(pool, a);
                let xb = self.blast_bv(pool, b);
                let gt = self.encode_ult(&xb, &xa);
                !gt
            }
            other => panic!("blast_bool on non-boolean term {other:?}"),
        };
        self.bool_map.insert(t, lit);
        lit
    }

    /// Blast a bitvector-sorted term to a vector of literals (LSB first).
    fn blast_bv(&mut self, pool: &TermPool, t: TermId) -> Vec<Lit> {
        if let Some(bits) = self.bv_map.get(&t) {
            return bits.clone();
        }
        let bits = match pool.term(t).clone() {
            Term::BvConst { width, value } => (0..width)
                .map(|i| {
                    let b = (value >> i) & 1 == 1;
                    self.const_lit(b)
                })
                .collect(),
            Term::BvVar { width, .. } => (0..width).map(|_| self.fresh()).collect(),
            Term::BvAnd(a, b) => {
                let (xa, xb) = (self.blast_bv(pool, a), self.blast_bv(pool, b));
                xa.iter()
                    .zip(xb.iter())
                    .map(|(&p, &q)| self.encode_and(&[p, q]))
                    .collect()
            }
            Term::BvOr(a, b) => {
                let (xa, xb) = (self.blast_bv(pool, a), self.blast_bv(pool, b));
                xa.iter()
                    .zip(xb.iter())
                    .map(|(&p, &q)| {
                        let n = self.encode_and(&[!p, !q]);
                        !n
                    })
                    .collect()
            }
            Term::BvXor(a, b) => {
                let (xa, xb) = (self.blast_bv(pool, a), self.blast_bv(pool, b));
                xa.iter()
                    .zip(xb.iter())
                    .map(|(&p, &q)| {
                        let xn = self.encode_xnor(p, q);
                        !xn
                    })
                    .collect()
            }
            Term::BvNot(a) => self.blast_bv(pool, a).iter().map(|&l| !l).collect(),
            Term::BvAdd(a, b) => {
                let (xa, xb) = (self.blast_bv(pool, a), self.blast_bv(pool, b));
                self.encode_adder(&xa, &xb)
            }
            Term::BvExtract { hi, lo, arg } => {
                let bits = self.blast_bv(pool, arg);
                bits[lo as usize..=hi as usize].to_vec()
            }
            Term::BvLshrConst { arg, amount } => {
                let bits = self.blast_bv(pool, arg);
                let w = bits.len();
                let mut out = Vec::with_capacity(w);
                for i in 0..w {
                    let src = i + amount as usize;
                    if src < w {
                        out.push(bits[src]);
                    } else {
                        out.push(self.fls());
                    }
                }
                out
            }
            Term::Ite(c, a, b) => {
                let lc = self.blast_bool(pool, c);
                let (xa, xb) = (self.blast_bv(pool, a), self.blast_bv(pool, b));
                xa.iter()
                    .zip(xb.iter())
                    .map(|(&p, &q)| self.encode_mux(lc, p, q))
                    .collect()
            }
            other => panic!("blast_bv on non-bitvector term {other:?}"),
        };
        self.bv_map.insert(t, bits.clone());
        bits
    }

    /// Definitional AND gate: out <-> /\ lits.
    fn encode_and(&mut self, lits: &[Lit]) -> Lit {
        match lits.len() {
            0 => self.tru(),
            1 => lits[0],
            _ => {
                let out = self.fresh();
                // out -> each lit
                for &l in lits {
                    self.cnf.add_clause(vec![!out, l]);
                }
                // all lits -> out
                let mut cl: Vec<Lit> = lits.iter().map(|&l| !l).collect();
                cl.push(out);
                self.cnf.add_clause(cl);
                out
            }
        }
    }

    /// Definitional XNOR gate: out <-> (a == b).
    fn encode_xnor(&mut self, a: Lit, b: Lit) -> Lit {
        let out = self.fresh();
        self.cnf.add_clause(vec![!out, !a, b]);
        self.cnf.add_clause(vec![!out, a, !b]);
        self.cnf.add_clause(vec![out, a, b]);
        self.cnf.add_clause(vec![out, !a, !b]);
        out
    }

    /// Definitional MUX gate: out <-> (c ? a : b).
    fn encode_mux(&mut self, c: Lit, a: Lit, b: Lit) -> Lit {
        let out = self.fresh();
        self.cnf.add_clause(vec![!c, !a, out]);
        self.cnf.add_clause(vec![!c, a, !out]);
        self.cnf.add_clause(vec![c, !b, out]);
        self.cnf.add_clause(vec![c, b, !out]);
        out
    }

    /// Unsigned less-than comparator: returns a literal true iff a < b.
    fn encode_ult(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        debug_assert_eq!(a.len(), b.len());
        // lt_i: comparing bits [0..=i], a < b. Built from LSB up:
        // lt_i = (!a_i & b_i) | (a_i==b_i & lt_{i-1})
        let mut lt = self.fls();
        for i in 0..a.len() {
            let (ai, bi) = (a[i], b[i]);
            let strictly = self.encode_and(&[!ai, bi]);
            let eq = self.encode_xnor(ai, bi);
            let carry = self.encode_and(&[eq, lt]);
            let n = self.encode_and(&[!strictly, !carry]);
            lt = !n;
        }
        lt
    }

    /// Ripple-carry adder (modular).
    fn encode_adder(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        debug_assert_eq!(a.len(), b.len());
        let mut out = Vec::with_capacity(a.len());
        let mut carry = self.fls();
        for i in 0..a.len() {
            // xnor(a,b); its negation is xor(a,b).
            let axb = self.encode_xnor(a[i], b[i]);
            // sum = xor(xor(a,b), carry) = !xnor(xor(a,b), carry)
            let s = !self.encode_xnor(!axb, carry);
            // carry_out = (a & b) | (carry & xor(a,b))
            let ab = self.encode_and(&[a[i], b[i]]);
            let cx = self.encode_and(&[carry, !axb]);
            let no = self.encode_and(&[!ab, !cx]);
            out.push(s);
            carry = !no;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{SatSolver, SolveOutcome};
    use crate::term::TermPool;

    fn is_sat(pool: &TermPool, assertions: &[TermId]) -> bool {
        let blasted = bitblast(pool, assertions);
        let mut s = SatSolver::from_cnf(&blasted.cnf);
        s.solve() == SolveOutcome::Sat
    }

    #[test]
    fn bool_var_sat() {
        let mut p = TermPool::new();
        let a = p.bool_var("a");
        assert!(is_sat(&p, &[a]));
        let na = p.not(a);
        assert!(!is_sat(&p, &[a, na]));
    }

    #[test]
    fn bv_eq_const() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 8);
        let c = p.bv_const(42, 8);
        let eq = p.bv_eq(x, c);
        assert!(is_sat(&p, &[eq]));
        // x == 42 and x == 43 is unsat.
        let c2 = p.bv_const(43, 8);
        let eq2 = p.bv_eq(x, c2);
        assert!(!is_sat(&p, &[eq, eq2]));
    }

    #[test]
    fn ult_antisymmetric() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 6);
        let y = p.bv_var("y", 6);
        let xy = p.bv_ult(x, y);
        let yx = p.bv_ult(y, x);
        assert!(is_sat(&p, &[xy]));
        assert!(!is_sat(&p, &[xy, yx]));
    }

    #[test]
    fn ule_total() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 4);
        let y = p.bv_var("y", 4);
        let xy = p.bv_ule(x, y);
        let yx = p.bv_ule(y, x);
        let nxy = p.not(xy);
        let nyx = p.not(yx);
        // !(x<=y) and !(y<=x) is unsat (totality).
        assert!(!is_sat(&p, &[nxy, nyx]));
    }

    #[test]
    fn adder_concrete() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 8);
        let a = p.bv_const(100, 8);
        let b = p.bv_const(56, 8);
        let sum = p.bv_add(x, b);
        let eq_in = p.bv_eq(x, a);
        let expect = p.bv_const(156, 8);
        let eq_out = p.bv_eq(sum, expect);
        let neq_out = p.not(eq_out);
        assert!(is_sat(&p, &[eq_in, eq_out]));
        assert!(!is_sat(&p, &[eq_in, neq_out]));
    }

    #[test]
    fn adder_wraps() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 8);
        let c = p.bv_const(200, 8);
        let sum = p.bv_add(x, c); // x + 200
        let eq_in = p.bv_eq(x, c); // x = 200
        let expect = p.bv_const(400 % 256, 8);
        let eq_out = p.bv_eq(sum, expect);
        let bad = p.not(eq_out);
        assert!(!is_sat(&p, &[eq_in, bad]));
    }

    #[test]
    fn bitwise_ops() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 8);
        let a = p.bv_const(0b1100, 8);
        let b = p.bv_const(0b1010, 8);
        let ex = p.bv_eq(x, a);
        for (op, expect) in [
            (p.bv_and(x, b), 0b1000u64),
            (p.bv_or(x, b), 0b1110),
            (p.bv_xor(x, b), 0b0110),
        ] {
            let e = p.bv_const(expect, 8);
            let eq = p.bv_eq(op, e);
            let ne = p.not(eq);
            assert!(!is_sat(&p, &[ex, ne]));
        }
    }

    #[test]
    fn extract_and_shift() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 8);
        let v = p.bv_const(0b1011_0110, 8);
        let ex = p.bv_eq(x, v);
        let hi = p.bv_extract(7, 4, x);
        let e_hi = p.bv_const(0b1011, 4);
        let eq_hi = p.bv_eq(hi, e_hi);
        let ne = p.not(eq_hi);
        assert!(!is_sat(&p, &[ex, ne]));

        let sh = p.bv_lshr_const(x, 3);
        let e_sh = p.bv_const(0b0001_0110, 8);
        let eq_sh = p.bv_eq(sh, e_sh);
        let ne2 = p.not(eq_sh);
        assert!(!is_sat(&p, &[ex, ne2]));
    }

    #[test]
    fn ite_bv() {
        let mut p = TermPool::new();
        let c = p.bool_var("c");
        let a = p.bv_const(1, 4);
        let b = p.bv_const(2, 4);
        let x = p.ite(c, a, b);
        let is_one = p.bv_eq(x, a);
        // c and x != 1 is unsat
        let ne = p.not(is_one);
        assert!(!is_sat(&p, &[c, ne]));
        // !c and x == 1 is unsat
        let nc = p.not(c);
        assert!(!is_sat(&p, &[nc, is_one]));
    }

    #[test]
    fn incremental_blaster_reuses_encodings() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 8);
        let c5 = p.bv_const(5, 8);
        let lt = p.bv_ult(x, c5);
        let mut b = IncrementalBlaster::new();
        b.assert_true(&p, lt);
        let vars_after_first = b.cnf().num_vars();
        // New term over the same sub-DAG: only the new comparator is
        // encoded, x's bits are reused.
        let c3 = p.bv_const(3, 8);
        let lt2 = p.bv_ult(x, c3);
        let l2 = b.blast_bool(&p, lt2);
        assert!(b.cnf().num_vars() > vars_after_first);
        // Re-blasting either term is free (cache hit, no new vars).
        let before = b.cnf().num_vars();
        let l2_again = b.blast_bool(&p, lt2);
        assert_eq!(l2, l2_again);
        assert_eq!(b.cnf().num_vars(), before);
        assert_eq!(b.bool_map().get(&lt2), Some(&l2));
    }
}
