//! Public SMT facade: check satisfiability of a set of boolean terms and
//! extract models over the original term variables.
//!
//! Two entry points:
//!
//! * [`solve`] / [`solve_with_stats`] — one-shot: bit-blast the given
//!   assertions into a fresh CNF and decide it with a fresh SAT solver.
//! * [`IncrementalSession`] — persistent: one term pool, one blaster and
//!   one SAT instance serve a whole family of related queries. Shared
//!   assertions are encoded once ([`IncrementalSession::assert`]), each
//!   query is gated behind an activation literal
//!   ([`IncrementalSession::activation`]) and posed as an assumption
//!   solve, so learnt clauses and variable activities carry over between
//!   queries instead of being rebuilt from scratch.

use crate::bitblast::{bitblast, IncrementalBlaster};
use crate::cnf::Lit;
use crate::sat::{DbStats, SatSolver, SatStats, SolveOutcome, SolverConfig, SolverError};
use crate::term::{Sort, Term, TermId, TermPool};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A concrete value in a model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Value {
    /// Boolean value.
    Bool(bool),
    /// Bitvector value (zero-extended to 64 bits).
    Bv(u64),
}

/// A satisfying assignment, mapping variable terms to values, with an
/// evaluator for arbitrary terms.
///
/// Variables that never reached the solver (they appear in the pool but
/// in no assertion) are tracked as **don't-care**: evaluation still
/// yields the conventional defaults (`false` / `0`) so downstream code
/// keeps working, but [`Model::is_dont_care`] lets counterexample
/// printing distinguish a *witnessed* value from an arbitrary filler.
#[derive(Clone, Debug, Default)]
pub struct Model {
    values: HashMap<TermId, Value>,
    dont_care: HashSet<TermId>,
}

impl Model {
    /// Build a model from a blaster's caches and a satisfied solver.
    /// Variables absent from the caches were never encoded: they are
    /// recorded as don't-care rather than given a fabricated concrete
    /// value.
    ///
    /// `witnessed` (when given) further restricts which variables count
    /// as witnessed: on a shared incremental session the blast caches
    /// accumulate encodings from *every* query posed so far, but the
    /// model of one query must only claim variables in that query's own
    /// formula — anything else is don't-care even though a literal for
    /// it happens to exist.
    fn from_blaster(
        pool: &TermPool,
        blaster: &IncrementalBlaster,
        sat: &SatSolver,
        witnessed: Option<&HashSet<TermId>>,
    ) -> Model {
        let lit_val = |l: Lit| -> bool {
            let v = sat.value(l.var());
            if l.is_pos() {
                v
            } else {
                !v
            }
        };
        let in_scope = |t: TermId| witnessed.is_none_or(|w| w.contains(&t));
        let mut values = HashMap::new();
        let mut dont_care = HashSet::new();
        for &t in pool.bool_vars() {
            match blaster.bool_lit(t) {
                Some(l) if in_scope(t) => {
                    values.insert(t, Value::Bool(lit_val(l)));
                }
                // Variable not in this query's formula: any value
                // satisfies it, so no value is witnessed.
                _ => {
                    dont_care.insert(t);
                }
            }
        }
        for &t in pool.bv_vars() {
            match blaster.bv_bits(t) {
                Some(bits) if in_scope(t) => {
                    let mut v = 0u64;
                    for (i, &b) in bits.iter().enumerate() {
                        if lit_val(b) {
                            v |= 1 << i;
                        }
                    }
                    values.insert(t, Value::Bv(v));
                }
                _ => {
                    dont_care.insert(t);
                }
            }
        }
        Model { values, dont_care }
    }

    /// Construct a model directly from variable assignments (for tests).
    pub fn from_values(values: HashMap<TermId, Value>) -> Model {
        Model {
            values,
            dont_care: HashSet::new(),
        }
    }

    /// True when the variable term never reached the solver, i.e. its
    /// "value" in this model is an arbitrary default, not a witness.
    pub fn is_dont_care(&self, t: TermId) -> bool {
        self.dont_care.contains(&t)
    }

    /// Value of a boolean variable (or any term, by evaluation).
    pub fn eval_bool(&self, pool: &TermPool, t: TermId) -> Option<bool> {
        match self.eval(pool, t)? {
            Value::Bool(b) => Some(b),
            Value::Bv(_) => None,
        }
    }

    /// Value of a bitvector term under this model.
    pub fn eval_bv(&self, pool: &TermPool, t: TermId) -> Option<u64> {
        match self.eval(pool, t)? {
            Value::Bv(v) => Some(v),
            Value::Bool(_) => None,
        }
    }

    /// Evaluate an arbitrary term under this model.
    pub fn eval(&self, pool: &TermPool, t: TermId) -> Option<Value> {
        if let Some(&v) = self.values.get(&t) {
            return Some(v);
        }
        let width_mask = |w: u32| -> u64 {
            if w >= 64 {
                u64::MAX
            } else {
                (1 << w) - 1
            }
        };
        let v = match pool.term(t).clone() {
            Term::True => Value::Bool(true),
            Term::False => Value::Bool(false),
            Term::BoolVar(_) => Value::Bool(false), // unconstrained
            Term::BvVar { .. } => Value::Bv(0),     // unconstrained
            Term::Not(a) => Value::Bool(!self.eval_bool(pool, a)?),
            Term::And(parts) => {
                let mut acc = true;
                for p in parts {
                    acc &= self.eval_bool(pool, p)?;
                }
                Value::Bool(acc)
            }
            Term::Or(parts) => {
                let mut acc = false;
                for p in parts {
                    acc |= self.eval_bool(pool, p)?;
                }
                Value::Bool(acc)
            }
            Term::Ite(c, a, b) => {
                if self.eval_bool(pool, c)? {
                    self.eval(pool, a)?
                } else {
                    self.eval(pool, b)?
                }
            }
            Term::BvConst { value, .. } => Value::Bv(value),
            Term::BvEq(a, b) => Value::Bool(self.eval_bv(pool, a)? == self.eval_bv(pool, b)?),
            Term::BvUlt(a, b) => Value::Bool(self.eval_bv(pool, a)? < self.eval_bv(pool, b)?),
            Term::BvUle(a, b) => Value::Bool(self.eval_bv(pool, a)? <= self.eval_bv(pool, b)?),
            Term::BvAnd(a, b) => Value::Bv(self.eval_bv(pool, a)? & self.eval_bv(pool, b)?),
            Term::BvOr(a, b) => Value::Bv(self.eval_bv(pool, a)? | self.eval_bv(pool, b)?),
            Term::BvXor(a, b) => Value::Bv(self.eval_bv(pool, a)? ^ self.eval_bv(pool, b)?),
            Term::BvNot(a) => {
                let w = pool.sort(t).width();
                Value::Bv(!self.eval_bv(pool, a)? & width_mask(w))
            }
            Term::BvAdd(a, b) => {
                let w = pool.sort(t).width();
                Value::Bv(
                    self.eval_bv(pool, a)?.wrapping_add(self.eval_bv(pool, b)?) & width_mask(w),
                )
            }
            Term::BvExtract { hi, lo, arg } => {
                let v = self.eval_bv(pool, arg)?;
                Value::Bv((v >> lo) & width_mask(hi - lo + 1))
            }
            Term::BvLshrConst { arg, amount } => {
                let v = self.eval_bv(pool, arg)?;
                Value::Bv(if amount >= 64 { 0 } else { v >> amount })
            }
        };
        Some(v)
    }
}

/// Result of an SMT query.
#[derive(Clone, Debug)]
pub enum SatResult {
    /// Satisfiable, with a model over the pool's variables.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// True when satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

/// Size and effort statistics for one query (the Figure-3 metrics).
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverStats {
    /// SAT variables after bit-blasting.
    pub num_vars: u64,
    /// CNF clauses after bit-blasting.
    pub num_clauses: u64,
    /// Time spent bit-blasting.
    pub encode_time: Duration,
    /// Time spent in the SAT solver.
    pub solve_time: Duration,
    /// SAT-level counters.
    pub sat: SatStats,
}

/// Decide the conjunction of `assertions`.
pub fn solve(pool: &TermPool, assertions: &[TermId]) -> SatResult {
    solve_with_stats(pool, assertions).0
}

/// Decide the conjunction of `assertions`, also returning statistics.
pub fn solve_with_stats(pool: &TermPool, assertions: &[TermId]) -> (SatResult, SolverStats) {
    for &a in assertions {
        debug_assert_eq!(pool.sort(a), Sort::Bool, "assertions must be boolean");
    }
    let t0 = Instant::now();
    let blasted = bitblast(pool, assertions);
    let encode_time = t0.elapsed();
    let mut stats = SolverStats {
        num_vars: blasted.num_vars() as u64,
        num_clauses: blasted.num_clauses() as u64,
        encode_time,
        ..Default::default()
    };
    let t1 = Instant::now();
    let mut sat = SatSolver::new(0);
    blasted.feed(&mut sat, 0);
    let outcome = sat.solve();
    stats.solve_time = t1.elapsed();
    stats.sat = sat.stats();
    record_solve_metrics(&stats);
    let result = match outcome {
        SolveOutcome::Sat => SatResult::Sat(Model::from_blaster(pool, &blasted, &sat, None)),
        SolveOutcome::Unsat => SatResult::Unsat,
    };
    (result, stats)
}

/// Mirror one solve's statistics into the installed observability sink,
/// if any. The per-solve SAT counters are deltas, so registry totals
/// are exact cumulative counts across all sessions and one-shot solves.
fn record_solve_metrics(stats: &SolverStats) {
    if !obs::enabled() {
        return;
    }
    obs::add("smt.solves", 1);
    obs::add("smt.decisions", stats.sat.decisions);
    obs::add("smt.propagations", stats.sat.propagations);
    obs::add("smt.conflicts", stats.sat.conflicts);
    obs::add("smt.restarts", stats.sat.restarts);
    obs::gauge_max("smt.learnt_db", stats.sat.learnts);
    obs::add("smt.subsumed", stats.sat.subsumed);
    obs::add("smt.strengthened", stats.sat.strengthened);
    obs::add("smt.vivified", stats.sat.vivified);
    obs::add("smt.sweeps", stats.sat.sweeps);
    obs::add("smt.encode_ns", stats.encode_time.as_nanos() as u64);
    obs::add("smt.solve_ns", stats.solve_time.as_nanos() as u64);
    obs::observe("smt.solve_time", stats.solve_time);
}

/// Per-variant portfolio win counters (`&'static` names as the metrics
/// sink requires; the variant count is capped at the same bound as
/// [`PortfolioConfig::k`]).
/// Per-variant portfolio win counters (index = variant), public so
/// profile tooling can read the attribution back out of a snapshot.
pub const PORTFOLIO_WIN_COUNTERS: [&str; 4] = [
    "smt.portfolio_win_v0",
    "smt.portfolio_win_v1",
    "smt.portfolio_win_v2",
    "smt.portfolio_win_v3",
];

/// Hard bound on portfolio width (variant 0 plus up to three jittered
/// clones) — more rarely pays for the clone cost on this workload, and it
/// keeps the win-attribution counter set static.
pub const PORTFOLIO_MAX_K: usize = 4;

/// A shared budget of *extra* solver threads available to portfolio
/// races, so portfolio parallelism composes with group-level parallelism
/// instead of oversubscribing the machine: the engine sizes one slot
/// pool for the whole run (roughly `cores - workers`), every session
/// draws from it at solve time, and a race only happens when at least
/// one extra thread is actually free right now.
pub struct PortfolioSlots {
    free: AtomicUsize,
}

impl PortfolioSlots {
    /// A pool of `extra_threads` slots (0 disables racing through this
    /// pool entirely).
    pub fn new(extra_threads: usize) -> Arc<Self> {
        Arc::new(PortfolioSlots {
            free: AtomicUsize::new(extra_threads),
        })
    }

    /// Currently free slots (informational; racy by nature).
    pub fn available(&self) -> usize {
        self.free.load(Ordering::Relaxed)
    }

    /// Take up to `want` slots, returning how many were actually granted.
    fn try_take(&self, want: usize) -> usize {
        loop {
            let cur = self.free.load(Ordering::Relaxed);
            let take = cur.min(want);
            if take == 0 {
                return 0;
            }
            if self
                .free
                .compare_exchange(cur, cur - take, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return take;
            }
        }
    }

    fn release(&self, n: usize) {
        self.free.fetch_add(n, Ordering::AcqRel);
    }
}

/// Portfolio solving for an [`IncrementalSession`]: queries on sessions
/// whose encoding is large enough are raced on `k` solver clones with
/// jittered heuristics (see [`SolverConfig::jittered`]); the first
/// verdict wins and the winning clone — with everything it learnt — is
/// adopted as the session's solver, so later queries in the same session
/// benefit.
///
/// Verdicts are deterministic (every variant decides the same formula),
/// so SAT/UNSAT answers never depend on thread timing. Models and unsat
/// cores may legally differ from the sequential ones (a different but
/// equally valid witness/core); callers that require byte-identical
/// reports re-derive counterexamples on a fresh one-shot instance, which
/// is how the verification engine uses this.
#[derive(Clone)]
pub struct PortfolioConfig {
    /// Number of racing variants including the unjittered base (clamped
    /// to [`PORTFOLIO_MAX_K`]; effective width also depends on free
    /// slots).
    pub k: usize,
    /// Only race queries once the session's encoding has at least this
    /// many clauses — below that, cloning the solver costs more than the
    /// search itself.
    pub min_clauses: usize,
    /// Base seed for the per-variant heuristic jitter.
    pub seed: u64,
    /// Label for win-attribution metrics (the engine passes the check
    /// group's label; empty = no attribution span).
    pub label: String,
    /// Shared thread budget; `None` means "always race at full width"
    /// (bench/test use).
    pub slots: Option<Arc<PortfolioSlots>>,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            k: 3,
            min_clauses: 50_000,
            seed: 0x1179,
            label: String::new(),
            slots: None,
        }
    }
}

/// Check validity of `formula` (i.e. unsatisfiability of its negation),
/// returning `None` when valid or a counter-model otherwise.
pub fn check_valid(pool: &mut TermPool, formula: TermId) -> Option<Model> {
    let neg = pool.not(formula);
    match solve(pool, &[neg]) {
        SatResult::Sat(m) => Some(m),
        SatResult::Unsat => None,
    }
}

/// Opaque handle to a per-query activation literal created by
/// [`IncrementalSession::activation`]. Passing it to
/// [`IncrementalSession::solve_under`] switches the gated formula on for
/// that query only.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Assumption(Lit);

/// A persistent solving session: one encoding, many checks.
///
/// The session owns a [`TermPool`], an [`IncrementalBlaster`] whose
/// `TermId`-keyed structural cache persists across queries, and one
/// [`SatSolver`] that is never torn down. The intended protocol:
///
/// 1. build shared terms via [`IncrementalSession::pool_mut`] and assert
///    them once with [`IncrementalSession::assert`];
/// 2. per check, build the check-specific formula, wrap it with
///    [`IncrementalSession::activation`], and decide it with
///    [`IncrementalSession::solve_under`];
/// 3. repeat — newly-created terms are bit-blasted incrementally (only
///    the not-yet-encoded nodes are lowered), new clauses are fed to the
///    live solver, and learnt clauses from earlier checks prune the
///    search for later ones.
///
/// Soundness of reuse: an activation clause `!a ∨ f` is vacuous unless
/// `a` is assumed, assumptions never enter the clause database (they are
/// decided, not asserted), and Tseitin definitions here are full
/// bi-implications — so the clause set is one consistent theory shared by
/// every query, and anything learnt from it is valid for all of them.
pub struct IncrementalSession {
    pool: TermPool,
    blaster: IncrementalBlaster,
    sat: SatSolver,
    /// Clauses of `blaster.cnf()` already fed to `sat`.
    fed: usize,
    /// Assumption solves posed so far.
    solves: u64,
    /// Encoding time accrued since the last solve (reported in the next
    /// solve's stats so per-check stats stay meaningful).
    pending_encode: Duration,
    /// Terms asserted unconditionally (part of every query's formula).
    asserted: Vec<TermId>,
    /// Gated term behind each activation literal, so a solve can
    /// reconstruct exactly which formula the posed query consists of
    /// (assertions + the assumed activations' terms) and mark every
    /// other variable don't-care in the model.
    gated: HashMap<Lit, TermId>,
    /// Learnt-clause database bound applied after every solve (`None`:
    /// unbounded, the one-run default). Long-lived daemon sessions set
    /// this so memory does not grow without limit across re-verify
    /// rounds; see [`IncrementalSession::with_learnt_cap`].
    learnt_cap: Option<u64>,
    /// Portfolio racing, when enabled (see [`PortfolioConfig`]).
    portfolio: Option<PortfolioConfig>,
    /// Variant index that answered the most recent solve (0 also when
    /// the solve ran sequentially).
    last_winner: usize,
    /// Legacy clause-feed path (owned, sorted, deduplicated `Vec` per
    /// clause) kept as the honest ablation baseline for the solver
    /// benches; see [`IncrementalSession::with_buffered_feed`].
    buffered_feed: bool,
    /// The owned clauses the buffered feed has produced, held for the
    /// session's lifetime the way the old pipeline's `Cnf` held its
    /// `Vec<Vec<Lit>>` — the live-memory footprint is part of the cost
    /// the ablation reproduces. Always empty on the default path.
    buffered: Vec<Vec<Lit>>,
}

impl Default for IncrementalSession {
    fn default() -> Self {
        Self::new()
    }
}

impl IncrementalSession {
    /// An empty session.
    pub fn new() -> Self {
        IncrementalSession {
            pool: TermPool::new(),
            blaster: IncrementalBlaster::new(),
            sat: SatSolver::new(0),
            fed: 0,
            solves: 0,
            pending_encode: Duration::ZERO,
            asserted: Vec::new(),
            gated: HashMap::new(),
            learnt_cap: None,
            portfolio: None,
            last_winner: 0,
            buffered_feed: false,
            buffered: Vec::new(),
        }
    }

    /// Replace the solver's heuristic/inprocessing configuration. The
    /// session consults `config.sweep` / `config.sweep_every` to decide
    /// when to run [`SatSolver::inprocess_sweep`] between queries;
    /// [`SolverConfig::plain`] therefore reproduces the pre-inprocessing
    /// behavior end to end (bench ablation, differential tests).
    pub fn with_config(mut self, config: SolverConfig) -> Self {
        self.sat.set_config(config);
        self
    }

    /// Enable portfolio racing for this session's solves (see
    /// [`PortfolioConfig`]).
    pub fn with_portfolio(mut self, portfolio: PortfolioConfig) -> Self {
        self.portfolio = Some(portfolio);
        self
    }

    /// Use the legacy buffered clause feed (one owned, sorted,
    /// deduplicated `Vec` per clause instead of borrowed slices into the
    /// blaster's flat store). Strictly slower; exists so the solver
    /// benches can measure the feed-path win honestly.
    pub fn with_buffered_feed(mut self, buffered: bool) -> Self {
        self.buffered_feed = buffered;
        self
    }

    /// Bound the learnt-clause database: after every solve, the
    /// least-active learnt clauses beyond `cap` are garbage-collected
    /// (activity-based, like the solver's in-search reduction; binary
    /// and reason clauses are kept). Verdicts are unaffected — learnt
    /// clauses are derived facts — only later solves' warm-start quality
    /// trades against memory.
    pub fn with_learnt_cap(mut self, cap: u64) -> Self {
        self.learnt_cap = Some(cap);
        self
    }

    /// The configured learnt-clause bound, if any.
    pub fn learnt_cap(&self) -> Option<u64> {
        self.learnt_cap
    }

    /// Lower the underlying solver's clause-arena capacity (clamped to
    /// [`crate::sat::ARENA_CAP_WORDS`]). A test hook: capacity-refusal
    /// paths ([`IncrementalSession::try_solve_under`] returning `Err`)
    /// can be forced with a tiny cap instead of a 16 GiB arena.
    pub fn with_arena_cap_words(mut self, cap: u32) -> Self {
        self.sat.set_arena_cap_words(cap);
        self
    }

    /// The session's term pool.
    pub fn pool(&self) -> &TermPool {
        &self.pool
    }

    /// Mutable access to the term pool, for building formulas.
    pub fn pool_mut(&mut self) -> &mut TermPool {
        &mut self.pool
    }

    /// Number of assumption solves posed so far.
    pub fn num_solves(&self) -> u64 {
        self.solves
    }

    /// Learnt clauses currently held by the underlying SAT instance
    /// (after any [`IncrementalSession::with_learnt_cap`] GC).
    pub fn num_learnts(&self) -> u64 {
        self.sat.stats().learnts
    }

    /// Assert a boolean term unconditionally (shared by every subsequent
    /// query on this session).
    pub fn assert(&mut self, t: TermId) {
        debug_assert_eq!(self.pool.sort(t), Sort::Bool, "assertions must be boolean");
        let t0 = Instant::now();
        self.blaster.assert_true(&self.pool, t);
        self.asserted.push(t);
        self.pending_encode += t0.elapsed();
    }

    /// Gate a boolean term behind a fresh activation literal: the term is
    /// bit-blasted now (cached sub-structure reused), but only constrains
    /// queries that pass the returned [`Assumption`] to
    /// [`IncrementalSession::solve_under`].
    pub fn activation(&mut self, t: TermId) -> Assumption {
        debug_assert_eq!(self.pool.sort(t), Sort::Bool, "activations must be boolean");
        let t0 = Instant::now();
        let l = self.blaster.blast_bool(&self.pool, t);
        let act = self.blaster.fresh_lit();
        self.blaster.add_clause(&[!act, l]);
        self.gated.insert(act, t);
        self.pending_encode += t0.elapsed();
        Assumption(act)
    }

    /// Permanently retract an activation: the literal is asserted false,
    /// so every clause gating the formula behind it is satisfied at the
    /// root level and the formula can never constrain a query again.
    /// Used by long-lived sessions to drop obligations of past re-verify
    /// rounds (a retracted query's clauses become vacuous and cheap to
    /// skip; anything learnt from them remains valid because activation
    /// clauses are implications, not facts about the gated formula).
    pub fn retract(&mut self, a: Assumption) {
        if self.gated.remove(&a.0).is_some() {
            self.blaster.add_clause(&[!a.0]);
        }
    }

    /// Decide the session's assertions plus the gated formulas of the
    /// given assumptions. Statistics cover this query: sizes are the
    /// session's cumulative encoding, SAT counters are deltas.
    ///
    /// Panics when the solver refuses a verdict (clause arena
    /// exhausted); callers that can recover — by re-posing the query on
    /// a fresh instance or failing the check typed — use
    /// [`IncrementalSession::try_solve_under`].
    pub fn solve_under(&mut self, assumptions: &[Assumption]) -> (SatResult, SolverStats) {
        self.try_solve_under(assumptions)
            .unwrap_or_else(|e| panic!("SMT session refused a verdict: {e}"))
    }

    /// [`IncrementalSession::solve_under`], surfacing solver capacity
    /// failures as a typed [`SolverError`] instead of a panic. After an
    /// `Err` the session refuses every further verdict (the error is
    /// latched on the underlying solver), so callers should rebuild.
    pub fn try_solve_under(
        &mut self,
        assumptions: &[Assumption],
    ) -> Result<(SatResult, SolverStats), SolverError> {
        let t0 = Instant::now();
        self.sync();
        let before = self.sat.stats();
        // Periodic inprocessing: every `sweep_every` queries, simplify /
        // subsume / compact / vivify the clause database (accounted as
        // encode time — it is database maintenance, not search).
        let cfg = self.sat.config();
        if cfg.sweep && self.solves > 0 && self.solves.is_multiple_of(cfg.sweep_every) {
            self.sat.inprocess_sweep();
        }
        let sync_time = t0.elapsed();
        let lits: Vec<Lit> = assumptions.iter().map(|a| a.0).collect();
        let t1 = Instant::now();
        let outcome = match self.solve_racing(&lits) {
            Ok(o) => o,
            Err(e) => {
                obs::add("smt.arena_exhausted", 1);
                return Err(e);
            }
        };
        let solve_time = t1.elapsed();
        let after = self.sat.stats();
        let stats = SolverStats {
            num_vars: self.blaster.num_vars() as u64,
            num_clauses: self.blaster.num_clauses() as u64,
            encode_time: self.pending_encode + sync_time,
            solve_time,
            sat: SatStats {
                decisions: after.decisions - before.decisions,
                propagations: after.propagations - before.propagations,
                conflicts: after.conflicts - before.conflicts,
                restarts: after.restarts - before.restarts,
                learnts: after.learnts,
                subsumed: after.subsumed - before.subsumed,
                strengthened: after.strengthened - before.strengthened,
                vivified: after.vivified - before.vivified,
                sweeps: after.sweeps - before.sweeps,
                viv_propagations: after.viv_propagations - before.viv_propagations,
            },
        };
        self.pending_encode = Duration::ZERO;
        self.solves += 1;
        record_solve_metrics(&stats);
        if let Some(cap) = self.learnt_cap {
            self.sat.reduce_learnts_to(cap);
            if obs::enabled() {
                let kept = self.sat.stats().learnts;
                obs::add("smt.learnt_gc", stats.sat.learnts.saturating_sub(kept));
            }
        }
        let result = match outcome {
            SolveOutcome::Sat => {
                // The blast maps cover every query this session has seen;
                // the model of *this* query must only witness variables in
                // its own formula (assertions + assumed activations).
                let roots: Vec<TermId> = self
                    .asserted
                    .iter()
                    .copied()
                    .chain(
                        assumptions
                            .iter()
                            .filter_map(|a| self.gated.get(&a.0).copied()),
                    )
                    .collect();
                let witnessed = reachable_terms(&self.pool, &roots);
                SatResult::Sat(Model::from_blaster(
                    &self.pool,
                    &self.blaster,
                    &self.sat,
                    Some(&witnessed),
                ))
            }
            SolveOutcome::Unsat => SatResult::Unsat,
        };
        Ok((result, stats))
    }

    /// The subset of the last solve's assumptions shown inconsistent
    /// (valid after an `Unsat`; empty when the asserted base itself is
    /// unsatisfiable).
    pub fn failed_assumptions(&self) -> Vec<Assumption> {
        self.sat
            .failed_assumptions()
            .iter()
            .map(|&l| Assumption(l))
            .collect()
    }

    /// Feed clauses and variables created since the last solve into the
    /// live SAT instance.
    fn sync(&mut self) {
        let t0 = Instant::now();
        let n0 = self.fed;
        if self.buffered_feed {
            // Legacy path: the pre-flat-store pipeline allocated every
            // clause twice — once building the blaster's Vec-of-Vecs at
            // blast time, once cloning it into the solver at feed time —
            // then sorted and deduplicated. Reproduce both allocations
            // so the ablation bench measures the flat pipeline's win
            // against what the feed actually used to cost.
            self.sat.ensure_num_vars(self.blaster.num_vars());
            while self.fed < self.blaster.num_clauses() {
                let blasted = self.blaster.clause(self.fed).to_vec();
                let mut lits = blasted.clone();
                self.buffered.push(blasted);
                lits.sort();
                lits.dedup();
                self.sat.add_clause(lits);
                self.fed += 1;
            }
        } else {
            self.fed = self.blaster.feed(&mut self.sat, self.fed);
        }
        if obs::enabled() {
            obs::add("smt.sync_ns", t0.elapsed().as_nanos() as u64);
            obs::add("smt.sync_clauses", (self.fed - n0) as u64);
        }
    }

    /// Decide the assumption query, racing jittered clones when the
    /// portfolio is enabled, the encoding is large enough, and thread
    /// slots are free; otherwise solve sequentially in place. On a race,
    /// the winning clone becomes the session's solver (learnt clauses,
    /// activities and phases included) with its configuration reset to
    /// the base, so the race leaves only *extra* derived facts behind.
    ///
    /// `Err` when the solver refused a verdict on capacity grounds
    /// (clause arena exhausted) — on a race, only when *every* variant
    /// refused, since one surviving variant still yields a sound answer.
    fn solve_racing(&mut self, lits: &[Lit]) -> Result<SolveOutcome, SolverError> {
        self.last_winner = 0;
        let sequential = |sat: &mut SatSolver, lits: &[Lit]| {
            sat.solve_under_assumptions_abortable(lits, None)
                .ok_or_else(|| latched_arena_error(sat))
        };
        let Some(pf) = self.portfolio.clone() else {
            return sequential(&mut self.sat, lits);
        };
        let width = pf.k.min(PORTFOLIO_MAX_K);
        if width < 2 || self.blaster.num_clauses() < pf.min_clauses {
            return sequential(&mut self.sat, lits);
        }
        let granted = match &pf.slots {
            Some(slots) => slots.try_take(width - 1),
            None => width - 1,
        };
        if granted == 0 {
            return sequential(&mut self.sat, lits);
        }
        let base_cfg = self.sat.config().clone();
        let mut variants: Vec<SatSolver> = Vec::with_capacity(granted + 1);
        variants.push(self.sat.clone());
        for i in 1..=granted {
            let mut s = self.sat.clone();
            // Vary the seed per solve so a query that defeats one jitter
            // set meets a different one next time.
            s.set_config(base_cfg.jittered(i, pf.seed ^ self.solves.wrapping_mul(0x9e37)));
            s.apply_jitter();
            variants.push(s);
        }
        let abort = AtomicBool::new(false);
        let winner: Mutex<Option<(usize, SolveOutcome)>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for (i, solver) in variants.iter_mut().enumerate() {
                let abort = &abort;
                let winner = &winner;
                scope.spawn(move || {
                    if let Some(out) = solver.solve_under_assumptions_abortable(lits, Some(abort)) {
                        let mut w = winner.lock().unwrap();
                        if w.is_none() {
                            *w = Some((i, out));
                            abort.store(true, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        if let Some(slots) = &pf.slots {
            slots.release(granted);
        }
        let Some((wi, outcome)) = winner.into_inner().unwrap() else {
            // No variant posted a result. Aborts only happen after a
            // winner posts, so every variant refused on capacity: adopt
            // the base clone so the latched error stays observable.
            let mut adopted = variants.swap_remove(0);
            adopted.set_config(base_cfg);
            let err = latched_arena_error(&adopted);
            self.sat = adopted;
            return Err(err);
        };
        let mut adopted = variants.swap_remove(wi);
        adopted.set_config(base_cfg);
        self.sat = adopted;
        self.last_winner = wi;
        if obs::enabled() {
            obs::add("smt.portfolio_races", 1);
            obs::add(PORTFOLIO_WIN_COUNTERS[wi.min(PORTFOLIO_MAX_K - 1)], 1);
            if !pf.label.is_empty() {
                // Zero-duration span: span totals key on (name, first
                // arg), giving a per-(group, variant) win count for the
                // profile attribution table.
                drop(obs::span_with(
                    "portfolio_win",
                    vec![("group", format!("{}/v{}", pf.label, wi))],
                ));
            }
        }
        Ok(outcome)
    }

    /// Which portfolio variant answered the most recent solve (0 when the
    /// solve ran sequentially or the unjittered base won).
    pub fn last_portfolio_winner(&self) -> usize {
        self.last_winner
    }

    /// Clause-arena and watcher occupancy of the underlying solver, for
    /// memory-bound assertions on long-lived sessions.
    pub fn sat_db_stats(&self) -> DbStats {
        self.sat.db_stats()
    }
}

/// The capacity error a solver latched when it refused a non-aborted
/// verdict. A refusal with no latch would be a logic bug.
fn latched_arena_error(sat: &SatSolver) -> SolverError {
    sat.arena_error()
        .cloned()
        .expect("a refused non-aborted solve implies a latched arena error")
}

/// Every term reachable from `roots` in the pool's DAG (the cone of the
/// formula they span). Used to scope a shared session's model to one
/// query's variables.
fn reachable_terms(pool: &TermPool, roots: &[TermId]) -> HashSet<TermId> {
    let mut seen: HashSet<TermId> = HashSet::new();
    let mut stack: Vec<TermId> = roots.to_vec();
    while let Some(t) = stack.pop() {
        if !seen.insert(t) {
            continue;
        }
        match pool.term(t) {
            Term::True
            | Term::False
            | Term::BoolVar(_)
            | Term::BvVar { .. }
            | Term::BvConst { .. } => {}
            Term::Not(a) | Term::BvNot(a) => stack.push(*a),
            Term::BvExtract { arg, .. } | Term::BvLshrConst { arg, .. } => stack.push(*arg),
            Term::And(parts) | Term::Or(parts) => stack.extend(parts.iter().copied()),
            Term::Ite(c, a, b) => {
                stack.push(*c);
                stack.push(*a);
                stack.push(*b);
            }
            Term::BvEq(a, b)
            | Term::BvUlt(a, b)
            | Term::BvUle(a, b)
            | Term::BvAnd(a, b)
            | Term::BvOr(a, b)
            | Term::BvXor(a, b)
            | Term::BvAdd(a, b) => {
                stack.push(*a);
                stack.push(*b);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat_with_model() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 8);
        let lo = p.bv_const(10, 8);
        let hi = p.bv_const(20, 8);
        let c1 = p.bv_ult(lo, x);
        let c2 = p.bv_ult(x, hi);
        match solve(&p, &[c1, c2]) {
            SatResult::Sat(m) => {
                let v = m.eval_bv(&p, x).unwrap();
                assert!(v > 10 && v < 20, "model value {v} out of range");
            }
            SatResult::Unsat => panic!("expected sat"),
        }
    }

    #[test]
    fn unsat_range() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 8);
        let lo = p.bv_const(20, 8);
        let hi = p.bv_const(10, 8);
        let c1 = p.bv_ult(lo, x);
        let c2 = p.bv_ult(x, hi);
        assert!(!solve(&p, &[c1, c2]).is_sat());
    }

    #[test]
    fn model_evaluates_composites() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 8);
        let y = p.bv_var("y", 8);
        let c5 = p.bv_const(5, 8);
        let c7 = p.bv_const(7, 8);
        let a1 = p.bv_eq(x, c5);
        let a2 = p.bv_eq(y, c7);
        match solve(&p, &[a1, a2]) {
            SatResult::Sat(m) => {
                let sum = p.bv_add(x, y);
                assert_eq!(m.eval_bv(&p, sum), Some(12));
                let lt = p.bv_ult(x, y);
                assert_eq!(m.eval_bool(&p, lt), Some(true));
            }
            SatResult::Unsat => panic!("expected sat"),
        }
    }

    #[test]
    fn check_valid_tautology() {
        let mut p = TermPool::new();
        let a = p.bool_var("a");
        let na = p.not(a);
        let taut = p.or2(a, na);
        assert!(check_valid(&mut p, taut).is_none());
        // 'a' alone is not valid; counter-model sets a=false.
        let cm = check_valid(&mut p, a).expect("not valid");
        assert_eq!(cm.eval_bool(&p, a), Some(false));
    }

    #[test]
    fn unconstrained_vars_get_default_values() {
        let mut p = TermPool::new();
        let a = p.bool_var("a");
        let b = p.bool_var("b");
        let x = p.bv_var("x", 8);
        match solve(&p, &[a]) {
            SatResult::Sat(m) => {
                // `a` is witnessed; `b` and `x` never reached the solver:
                // they evaluate to the defaults but are don't-care.
                assert_eq!(m.eval_bool(&p, a), Some(true));
                assert!(!m.is_dont_care(a));
                assert_eq!(m.eval_bool(&p, b), Some(false));
                assert!(m.is_dont_care(b));
                assert_eq!(m.eval_bv(&p, x), Some(0));
                assert!(m.is_dont_care(x));
            }
            SatResult::Unsat => panic!(),
        }
    }

    #[test]
    fn session_arena_cap_surfaces_typed_error() {
        // A tiny synthetic cap: encoding a non-trivial bitvector
        // constraint overflows the arena during the feed, and the next
        // query must surface the typed capacity error, not a wrapped
        // offset or a panic.
        let mut sess = IncrementalSession::new().with_arena_cap_words(64);
        let x = sess.pool_mut().bv_var("x", 32);
        let y = sess.pool_mut().bv_var("y", 32);
        let sum = sess.pool_mut().bv_add(x, y);
        let c = sess.pool_mut().bv_const(12345, 32);
        let eq = sess.pool_mut().bv_eq(sum, c);
        sess.assert(eq);
        match sess.try_solve_under(&[]) {
            Err(SolverError::ArenaExhausted { cap_words, .. }) => assert_eq!(cap_words, 64),
            Ok(_) => panic!("a 64-word arena cannot hold a 32-bit adder"),
        }
        // The refusal is sticky: later queries refuse too.
        assert!(sess.try_solve_under(&[]).is_err());
    }

    #[test]
    fn incremental_session_matches_fresh_solves() {
        // One encoding, three checks: 10 < x, x < 20 asserted; per-check
        // pin x to a value and compare against one-shot solving.
        let mut sess = IncrementalSession::new();
        let x = sess.pool_mut().bv_var("x", 8);
        let lo = sess.pool_mut().bv_const(10, 8);
        let hi = sess.pool_mut().bv_const(20, 8);
        let c1 = sess.pool_mut().bv_ult(lo, x);
        let c2 = sess.pool_mut().bv_ult(x, hi);
        sess.assert(c1);
        sess.assert(c2);
        for v in [5u64, 15, 25] {
            let cv = sess.pool_mut().bv_const(v, 8);
            let eq = sess.pool_mut().bv_eq(x, cv);
            let a = sess.activation(eq);
            let (res, stats) = sess.solve_under(&[a]);
            let expect = v > 10 && v < 20;
            assert_eq!(res.is_sat(), expect, "x = {v}");
            assert!(stats.num_vars > 0);
            if let SatResult::Sat(m) = res {
                assert_eq!(m.eval_bv(sess.pool(), x), Some(v));
            }
        }
        assert_eq!(sess.num_solves(), 3);
    }

    #[test]
    fn session_unsat_core_names_the_failing_activations() {
        let mut sess = IncrementalSession::new();
        let a = sess.pool_mut().bool_var("a");
        let b = sess.pool_mut().bool_var("b");
        let na = sess.pool_mut().not(a);
        let ga = sess.activation(a);
        let gna = sess.activation(na);
        let gb = sess.activation(b);
        let (res, _) = sess.solve_under(&[ga, gb, gna]);
        assert!(!res.is_sat());
        let core = sess.failed_assumptions();
        assert!(core.contains(&ga) && core.contains(&gna));
        assert!(!core.contains(&gb), "b is irrelevant to the conflict");
        // The same session still answers consistent queries.
        let (res2, _) = sess.solve_under(&[ga, gb]);
        assert!(res2.is_sat());
    }

    #[test]
    fn session_models_scope_to_the_posed_query() {
        // Two gated queries over disjoint variables: query 2's model must
        // not claim a witnessed value for query 1's variable even though
        // the shared session has a literal for it.
        let mut sess = IncrementalSession::new();
        let a = sess.pool_mut().bool_var("a");
        let b = sess.pool_mut().bool_var("b");
        let ga = sess.activation(a);
        let gb = sess.activation(b);
        let (r1, _) = sess.solve_under(&[ga]);
        match r1 {
            SatResult::Sat(m) => {
                assert_eq!(m.eval_bool(sess.pool(), a), Some(true));
                assert!(!m.is_dont_care(a));
                assert!(m.is_dont_care(b), "b is not part of query 1");
            }
            SatResult::Unsat => panic!("expected sat"),
        }
        let (r2, _) = sess.solve_under(&[gb]);
        match r2 {
            SatResult::Sat(m) => {
                assert_eq!(m.eval_bool(sess.pool(), b), Some(true));
                assert!(!m.is_dont_care(b));
                assert!(
                    m.is_dont_care(a),
                    "a was encoded for query 1 only; query 2 must not witness it"
                );
            }
            SatResult::Unsat => panic!("expected sat"),
        }
    }

    #[test]
    fn retracted_activations_stop_constraining() {
        let mut sess = IncrementalSession::new();
        let a = sess.pool_mut().bool_var("a");
        let na = sess.pool_mut().not(a);
        let ga = sess.activation(a);
        let gna = sess.activation(na);
        let (r, _) = sess.solve_under(&[ga, gna]);
        assert!(!r.is_sat(), "a ∧ ¬a");
        // Retract the ¬a query: a alone must be satisfiable again, and
        // the model must witness `a` (assumed) but not treat the
        // retracted query's formula as part of anything.
        sess.retract(gna);
        let (r2, _) = sess.solve_under(&[ga]);
        match r2 {
            SatResult::Sat(m) => assert_eq!(m.eval_bool(sess.pool(), a), Some(true)),
            SatResult::Unsat => panic!("retracted activation still constrains"),
        }
        // Retraction is idempotent.
        sess.retract(gna);
        let (r3, _) = sess.solve_under(&[ga]);
        assert!(r3.is_sat());
    }

    #[test]
    fn learnt_cap_bounds_a_long_lived_session() {
        // The same query sequence on a capped and an uncapped session:
        // verdicts must agree (learnt clauses are derived facts; dropping
        // them cannot change answers) and the capped database must never
        // exceed the uncapped one. The hard per-reduction guarantee (all
        // non-binary unlocked learnts GCed) is pinned at the SAT layer.
        let run = |cap: Option<u64>| -> (Vec<bool>, u64) {
            let mut sess = match cap {
                Some(c) => IncrementalSession::new().with_learnt_cap(c),
                None => IncrementalSession::new(),
            };
            assert_eq!(sess.learnt_cap(), cap);
            let n = 6usize;
            let vars: Vec<TermId> = (0..n * n)
                .map(|i| sess.pool_mut().bool_var(&format!("p{i}")))
                .collect();
            // Each pigeon sits in one of n-1 holes (asserted base).
            for p in 0..n {
                let row: Vec<TermId> = (0..n - 1).map(|h| vars[p * n + h]).collect();
                let any = sess.pool_mut().or(&row);
                sess.assert(any);
            }
            let mut verdicts = Vec::new();
            let mut max_learnts = 0;
            for round in 0..3usize {
                // Pairwise exclusion on every hole but `round`: unsat
                // when it excludes all remaining holes... posed as a
                // gated query so each round re-learns from scratch
                // unless the database carries over.
                let mut conj = Vec::new();
                for h in 0..(n - 1) {
                    if h == round {
                        continue;
                    }
                    for p1 in 0..n {
                        for p2 in (p1 + 1)..n {
                            let a = sess.pool_mut().not(vars[p1 * n + h]);
                            let b = sess.pool_mut().not(vars[p2 * n + h]);
                            conj.push(sess.pool_mut().or2(a, b));
                        }
                    }
                }
                let q = sess.pool_mut().and(&conj);
                let act = sess.activation(q);
                let (r, _) = sess.solve_under(&[act]);
                verdicts.push(r.is_sat());
                max_learnts = max_learnts.max(sess.num_learnts());
                sess.retract(act);
            }
            (verdicts, max_learnts)
        };
        let (capped_verdicts, capped_max) = run(Some(4));
        let (free_verdicts, free_max) = run(None);
        assert_eq!(
            capped_verdicts, free_verdicts,
            "GC must not change verdicts"
        );
        assert!(
            capped_max <= free_max,
            "capped session grew past uncapped: {capped_max} > {free_max}"
        );
    }

    #[test]
    fn session_base_unsat_has_empty_core() {
        let mut sess = IncrementalSession::new();
        let a = sess.pool_mut().bool_var("a");
        let na = sess.pool_mut().not(a);
        sess.assert(a);
        sess.assert(na);
        let g = sess.activation(a);
        let (res, _) = sess.solve_under(&[g]);
        assert!(!res.is_sat());
        assert!(sess.failed_assumptions().is_empty());
    }

    #[test]
    fn session_grows_after_solves() {
        // Clause addition after a solve: the hallmark of incrementality.
        let mut sess = IncrementalSession::new();
        let x = sess.pool_mut().bv_var("x", 8);
        let c10 = sess.pool_mut().bv_const(10, 8);
        let lt = sess.pool_mut().bv_ult(x, c10);
        sess.assert(lt);
        let (r1, _) = sess.solve_under(&[]);
        assert!(r1.is_sat());
        // Strengthen: x > 3 (new terms blasted after the first solve).
        let c3 = sess.pool_mut().bv_const(3, 8);
        let gt = sess.pool_mut().bv_ult(c3, x);
        sess.assert(gt);
        let (r2, _) = sess.solve_under(&[]);
        match r2 {
            SatResult::Sat(m) => {
                let v = m.eval_bv(sess.pool(), x).unwrap();
                assert!(v > 3 && v < 10, "witness {v}");
            }
            SatResult::Unsat => panic!("expected sat"),
        }
        // Contradictory permanent assertion: unsat forever after.
        let c2t = sess.pool_mut().bv_const(2, 8);
        let eq2 = sess.pool_mut().bv_eq(x, c2t);
        sess.assert(eq2);
        let (r3, _) = sess.solve_under(&[]);
        assert!(!r3.is_sat());
    }

    #[test]
    fn stats_reported() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 16);
        let y = p.bv_var("y", 16);
        let c = p.bv_ult(x, y);
        let (r, stats) = solve_with_stats(&p, &[c]);
        assert!(r.is_sat());
        assert!(stats.num_vars > 16);
        assert!(stats.num_clauses > 0);
    }
}
