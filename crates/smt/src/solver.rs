//! Public SMT facade: check satisfiability of a set of boolean terms and
//! extract models over the original term variables.

use crate::bitblast::{bitblast, Blasted};
use crate::cnf::Lit;
use crate::sat::{SatSolver, SatStats, SolveOutcome};
use crate::term::{Sort, Term, TermId, TermPool};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// A concrete value in a model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Value {
    /// Boolean value.
    Bool(bool),
    /// Bitvector value (zero-extended to 64 bits).
    Bv(u64),
}

/// A satisfying assignment, mapping variable terms to values, with an
/// evaluator for arbitrary terms.
#[derive(Clone, Debug, Default)]
pub struct Model {
    values: HashMap<TermId, Value>,
}

impl Model {
    fn from_blasted(pool: &TermPool, blasted: &Blasted, sat: &SatSolver) -> Model {
        let lit_val = |l: Lit| -> bool {
            let v = sat.value(l.var());
            if l.is_pos() {
                v
            } else {
                !v
            }
        };
        let mut values = HashMap::new();
        for &t in pool.bool_vars() {
            if let Some(&l) = blasted.bool_map.get(&t) {
                values.insert(t, Value::Bool(lit_val(l)));
            } else {
                // Variable never appeared in the assertions: value is free.
                values.insert(t, Value::Bool(false));
            }
        }
        for &t in pool.bv_vars() {
            if let Some(bits) = blasted.bv_map.get(&t) {
                let mut v = 0u64;
                for (i, &b) in bits.iter().enumerate() {
                    if lit_val(b) {
                        v |= 1 << i;
                    }
                }
                values.insert(t, Value::Bv(v));
            } else {
                values.insert(t, Value::Bv(0));
            }
        }
        Model { values }
    }

    /// Construct a model directly from variable assignments (for tests).
    pub fn from_values(values: HashMap<TermId, Value>) -> Model {
        Model { values }
    }

    /// Value of a boolean variable (or any term, by evaluation).
    pub fn eval_bool(&self, pool: &TermPool, t: TermId) -> Option<bool> {
        match self.eval(pool, t)? {
            Value::Bool(b) => Some(b),
            Value::Bv(_) => None,
        }
    }

    /// Value of a bitvector term under this model.
    pub fn eval_bv(&self, pool: &TermPool, t: TermId) -> Option<u64> {
        match self.eval(pool, t)? {
            Value::Bv(v) => Some(v),
            Value::Bool(_) => None,
        }
    }

    /// Evaluate an arbitrary term under this model.
    pub fn eval(&self, pool: &TermPool, t: TermId) -> Option<Value> {
        if let Some(&v) = self.values.get(&t) {
            return Some(v);
        }
        let width_mask = |w: u32| -> u64 {
            if w >= 64 {
                u64::MAX
            } else {
                (1 << w) - 1
            }
        };
        let v = match pool.term(t).clone() {
            Term::True => Value::Bool(true),
            Term::False => Value::Bool(false),
            Term::BoolVar(_) => Value::Bool(false), // unconstrained
            Term::BvVar { .. } => Value::Bv(0),     // unconstrained
            Term::Not(a) => Value::Bool(!self.eval_bool(pool, a)?),
            Term::And(parts) => {
                let mut acc = true;
                for p in parts {
                    acc &= self.eval_bool(pool, p)?;
                }
                Value::Bool(acc)
            }
            Term::Or(parts) => {
                let mut acc = false;
                for p in parts {
                    acc |= self.eval_bool(pool, p)?;
                }
                Value::Bool(acc)
            }
            Term::Ite(c, a, b) => {
                if self.eval_bool(pool, c)? {
                    self.eval(pool, a)?
                } else {
                    self.eval(pool, b)?
                }
            }
            Term::BvConst { value, .. } => Value::Bv(value),
            Term::BvEq(a, b) => Value::Bool(self.eval_bv(pool, a)? == self.eval_bv(pool, b)?),
            Term::BvUlt(a, b) => Value::Bool(self.eval_bv(pool, a)? < self.eval_bv(pool, b)?),
            Term::BvUle(a, b) => Value::Bool(self.eval_bv(pool, a)? <= self.eval_bv(pool, b)?),
            Term::BvAnd(a, b) => Value::Bv(self.eval_bv(pool, a)? & self.eval_bv(pool, b)?),
            Term::BvOr(a, b) => Value::Bv(self.eval_bv(pool, a)? | self.eval_bv(pool, b)?),
            Term::BvXor(a, b) => Value::Bv(self.eval_bv(pool, a)? ^ self.eval_bv(pool, b)?),
            Term::BvNot(a) => {
                let w = pool.sort(t).width();
                Value::Bv(!self.eval_bv(pool, a)? & width_mask(w))
            }
            Term::BvAdd(a, b) => {
                let w = pool.sort(t).width();
                Value::Bv(
                    self.eval_bv(pool, a)?.wrapping_add(self.eval_bv(pool, b)?) & width_mask(w),
                )
            }
            Term::BvExtract { hi, lo, arg } => {
                let v = self.eval_bv(pool, arg)?;
                Value::Bv((v >> lo) & width_mask(hi - lo + 1))
            }
            Term::BvLshrConst { arg, amount } => {
                let v = self.eval_bv(pool, arg)?;
                Value::Bv(if amount >= 64 { 0 } else { v >> amount })
            }
        };
        Some(v)
    }
}

/// Result of an SMT query.
#[derive(Clone, Debug)]
pub enum SatResult {
    /// Satisfiable, with a model over the pool's variables.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// True when satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

/// Size and effort statistics for one query (the Figure-3 metrics).
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverStats {
    /// SAT variables after bit-blasting.
    pub num_vars: u64,
    /// CNF clauses after bit-blasting.
    pub num_clauses: u64,
    /// Time spent bit-blasting.
    pub encode_time: Duration,
    /// Time spent in the SAT solver.
    pub solve_time: Duration,
    /// SAT-level counters.
    pub sat: SatStats,
}

/// Decide the conjunction of `assertions`.
pub fn solve(pool: &TermPool, assertions: &[TermId]) -> SatResult {
    solve_with_stats(pool, assertions).0
}

/// Decide the conjunction of `assertions`, also returning statistics.
pub fn solve_with_stats(pool: &TermPool, assertions: &[TermId]) -> (SatResult, SolverStats) {
    for &a in assertions {
        debug_assert_eq!(pool.sort(a), Sort::Bool, "assertions must be boolean");
    }
    let t0 = Instant::now();
    let blasted = bitblast(pool, assertions);
    let encode_time = t0.elapsed();
    let mut stats = SolverStats {
        num_vars: blasted.cnf.num_vars() as u64,
        num_clauses: blasted.cnf.num_clauses() as u64,
        encode_time,
        ..Default::default()
    };
    let t1 = Instant::now();
    let mut sat = SatSolver::from_cnf(&blasted.cnf);
    let outcome = sat.solve();
    stats.solve_time = t1.elapsed();
    stats.sat = sat.stats();
    let result = match outcome {
        SolveOutcome::Sat => SatResult::Sat(Model::from_blasted(pool, &blasted, &sat)),
        SolveOutcome::Unsat => SatResult::Unsat,
    };
    (result, stats)
}

/// Check validity of `formula` (i.e. unsatisfiability of its negation),
/// returning `None` when valid or a counter-model otherwise.
pub fn check_valid(pool: &mut TermPool, formula: TermId) -> Option<Model> {
    let neg = pool.not(formula);
    match solve(pool, &[neg]) {
        SatResult::Sat(m) => Some(m),
        SatResult::Unsat => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat_with_model() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 8);
        let lo = p.bv_const(10, 8);
        let hi = p.bv_const(20, 8);
        let c1 = p.bv_ult(lo, x);
        let c2 = p.bv_ult(x, hi);
        match solve(&p, &[c1, c2]) {
            SatResult::Sat(m) => {
                let v = m.eval_bv(&p, x).unwrap();
                assert!(v > 10 && v < 20, "model value {v} out of range");
            }
            SatResult::Unsat => panic!("expected sat"),
        }
    }

    #[test]
    fn unsat_range() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 8);
        let lo = p.bv_const(20, 8);
        let hi = p.bv_const(10, 8);
        let c1 = p.bv_ult(lo, x);
        let c2 = p.bv_ult(x, hi);
        assert!(!solve(&p, &[c1, c2]).is_sat());
    }

    #[test]
    fn model_evaluates_composites() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 8);
        let y = p.bv_var("y", 8);
        let c5 = p.bv_const(5, 8);
        let c7 = p.bv_const(7, 8);
        let a1 = p.bv_eq(x, c5);
        let a2 = p.bv_eq(y, c7);
        match solve(&p, &[a1, a2]) {
            SatResult::Sat(m) => {
                let sum = p.bv_add(x, y);
                assert_eq!(m.eval_bv(&p, sum), Some(12));
                let lt = p.bv_ult(x, y);
                assert_eq!(m.eval_bool(&p, lt), Some(true));
            }
            SatResult::Unsat => panic!("expected sat"),
        }
    }

    #[test]
    fn check_valid_tautology() {
        let mut p = TermPool::new();
        let a = p.bool_var("a");
        let na = p.not(a);
        let taut = p.or2(a, na);
        assert!(check_valid(&mut p, taut).is_none());
        // 'a' alone is not valid; counter-model sets a=false.
        let cm = check_valid(&mut p, a).expect("not valid");
        assert_eq!(cm.eval_bool(&p, a), Some(false));
    }

    #[test]
    fn unconstrained_vars_get_default_values() {
        let mut p = TermPool::new();
        let a = p.bool_var("a");
        let x = p.bv_var("x", 8);
        let t = p.tru();
        match solve(&p, &[t]) {
            SatResult::Sat(m) => {
                assert_eq!(m.eval_bool(&p, a), Some(false));
                assert_eq!(m.eval_bv(&p, x), Some(0));
            }
            SatResult::Unsat => panic!(),
        }
    }

    #[test]
    fn stats_reported() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 16);
        let y = p.bv_var("y", 16);
        let c = p.bv_ult(x, y);
        let (r, stats) = solve_with_stats(&p, &[c]);
        assert!(r.is_sat());
        assert!(stats.num_vars > 16);
        assert!(stats.num_clauses > 0);
    }
}
