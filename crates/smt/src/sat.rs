//! A MiniSat-style CDCL SAT solver.
//!
//! Features: two-watched-literal unit propagation, first-UIP conflict
//! analysis with clause minimization, VSIDS variable activities with an
//! indexed binary heap, phase saving, Luby-sequence restarts and
//! activity-driven learnt-clause database reduction.
//!
//! The solver is **incremental**: every solve backtracks to the root
//! decision level instead of tearing the instance down, so callers can
//! keep adding clauses ([`SatSolver::add_clause`]) and variables
//! ([`SatSolver::ensure_num_vars`]) between solves while learnt clauses,
//! variable activities and saved phases carry over. Related queries are
//! posed with [`SatSolver::solve_under_assumptions`], which decides the
//! given literals first (MiniSat's assumption mechanism); on an
//! assumption-caused `Unsat` the failing-assumption core is available
//! through [`SatSolver::failed_assumptions`].
//!
//! The solver is deliberately self-contained (no `unsafe`, no external
//! dependencies) — it is the substrate on which every Lightyear local check
//! and every Minesweeper monolithic query in this workspace is decided.

use crate::cnf::{Cnf, Lit, Var};

/// Tri-state assignment value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    fn from_bool(b: bool) -> Self {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

/// Result of a satisfiability query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveOutcome {
    /// A satisfying assignment was found (read it via [`SatSolver::value`]).
    Sat,
    /// The formula is unsatisfiable.
    Unsat,
}

/// Reference to a clause in the solver's arena.
type ClauseRef = u32;
const REASON_NONE: ClauseRef = u32::MAX;

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f32,
    deleted: bool,
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    /// A literal from the clause other than the watched one; if it is
    /// already true the clause is satisfied and the watch scan can skip it.
    blocker: Lit,
}

/// Cumulative counters exposed for benchmarking (Figure 3c/3d).
#[derive(Clone, Copy, Debug, Default)]
pub struct SatStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of conflicts found.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnts: u64,
}

/// The CDCL solver.
pub struct SatSolver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>, // indexed by Lit::index()
    assigns: Vec<LBool>,        // indexed by var
    phase: Vec<bool>,           // saved phases
    level: Vec<u32>,
    reason: Vec<ClauseRef>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f32,
    heap: OrderHeap,
    seen: Vec<bool>,
    ok: bool, // false once a top-level conflict is found
    stats: SatStats,
    max_learnts: f64,
    /// Assignment snapshot from the most recent `Sat` answer; solves
    /// backtrack to the root level before returning, so the model must
    /// outlive the trail.
    model: Vec<LBool>,
    /// On an assumption-caused `Unsat`: the subset of the assumptions
    /// that is jointly inconsistent with the clauses. Empty when the
    /// clause set itself is unsatisfiable.
    conflict_core: Vec<Lit>,
}

impl SatSolver {
    /// Create a solver over `num_vars` variables.
    pub fn new(num_vars: u32) -> Self {
        let n = num_vars as usize;
        SatSolver {
            clauses: Vec::new(),
            watches: vec![Vec::new(); 2 * n],
            assigns: vec![LBool::Undef; n],
            phase: vec![false; n],
            level: vec![0; n],
            reason: vec![REASON_NONE; n],
            trail: Vec::with_capacity(n),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; n],
            var_inc: 1.0,
            cla_inc: 1.0,
            heap: OrderHeap::new(n),
            seen: vec![false; n],
            ok: true,
            stats: SatStats::default(),
            max_learnts: 0.0,
            model: Vec::new(),
            conflict_core: Vec::new(),
        }
    }

    /// Number of variables the solver currently knows about.
    pub fn num_vars(&self) -> u32 {
        self.assigns.len() as u32
    }

    /// Grow the variable tables to hold at least `n` variables. New
    /// variables start unassigned with zero activity. Used by incremental
    /// callers whose formula grows between solves.
    pub fn ensure_num_vars(&mut self, n: u32) {
        let n = n as usize;
        let cur = self.assigns.len();
        if n <= cur {
            return;
        }
        self.watches.resize(2 * n, Vec::new());
        self.assigns.resize(n, LBool::Undef);
        self.phase.resize(n, false);
        self.level.resize(n, 0);
        self.reason.resize(n, REASON_NONE);
        self.activity.resize(n, 0.0);
        self.seen.resize(n, false);
        for v in cur..n {
            self.heap.push_new(v);
        }
    }

    /// Build a solver directly from a [`Cnf`].
    pub fn from_cnf(cnf: &Cnf) -> Self {
        let mut s = SatSolver::new(cnf.num_vars());
        for c in cnf.clauses() {
            s.add_clause(c.clone());
        }
        s
    }

    /// Solver statistics so far.
    pub fn stats(&self) -> SatStats {
        self.stats
    }

    fn value_lit(&self, l: Lit) -> LBool {
        match self.assigns[l.var().0 as usize] {
            LBool::Undef => LBool::Undef,
            LBool::True => LBool::from_bool(l.is_pos()),
            LBool::False => LBool::from_bool(!l.is_pos()),
        }
    }

    /// Value of a variable in the satisfying assignment (valid after `Sat`).
    pub fn value(&self, v: Var) -> bool {
        // Solves backtrack to the root before returning, so read the
        // snapshot taken at the moment of the `Sat` answer.
        match self.model.get(v.0 as usize) {
            Some(&m) => m == LBool::True,
            None => self.assigns[v.0 as usize] == LBool::True,
        }
    }

    /// The subset of the last solve's assumptions shown inconsistent with
    /// the clause set (valid after an `Unsat` answer from
    /// [`SatSolver::solve_under_assumptions`]). An empty slice means the
    /// clauses are unsatisfiable regardless of assumptions.
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.conflict_core
    }

    /// Add a clause. Returns `false` if the formula became trivially
    /// unsatisfiable (conflict at decision level 0).
    pub fn add_clause(&mut self, mut lits: Vec<Lit>) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return false;
        }
        // Normalize: drop duplicate and false literals, detect tautology.
        lits.sort();
        lits.dedup();
        let mut i = 0;
        while i < lits.len() {
            let l = lits[i];
            if i + 1 < lits.len() && lits[i + 1] == !l {
                return true; // tautology: x \/ !x
            }
            match self.value_lit(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {
                    lits.remove(i);
                }
                LBool::Undef => i += 1,
            }
        }
        match lits.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(lits[0], REASON_NONE);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach_clause(lits, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as ClauseRef;
        let w0 = Watcher {
            cref,
            blocker: lits[1],
        };
        let w1 = Watcher {
            cref,
            blocker: lits[0],
        };
        self.watches[(!lits[0]).index()].push(w0);
        self.watches[(!lits[1]).index()].push(w1);
        self.clauses.push(Clause {
            lits,
            learnt,
            activity: 0.0,
            deleted: false,
        });
        if learnt {
            self.stats.learnts += 1;
        }
        cref
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: ClauseRef) {
        let v = l.var().0 as usize;
        debug_assert_eq!(self.assigns[v], LBool::Undef);
        self.assigns[v] = LBool::from_bool(l.is_pos());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut i = 0;
            let mut conflict = None;
            'watchers: while i < ws.len() {
                let w = ws[i];
                // Fast path: blocker already true.
                if self.value_lit(w.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let cref = w.cref;
                if self.clauses[cref as usize].deleted {
                    ws.swap_remove(i);
                    continue;
                }
                // Make sure the false literal (!p) is at position 1.
                {
                    let c = &mut self.clauses[cref as usize];
                    if c.lits[0] == !p {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], !p);
                }
                let first = self.clauses[cref as usize].lits[0];
                if first != w.blocker && self.value_lit(first) == LBool::True {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses[cref as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cref as usize].lits[k];
                    if self.value_lit(lk) != LBool::False {
                        let c = &mut self.clauses[cref as usize];
                        c.lits.swap(1, k);
                        self.watches[(!lk).index()].push(Watcher {
                            cref,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting.
                if self.value_lit(first) == LBool::False {
                    // Conflict: keep remaining watchers, restore and bail.
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    break;
                } else {
                    self.unchecked_enqueue(first, cref);
                    i += 1;
                }
            }
            // Put back the (possibly shrunk) watcher list, preserving any
            // watchers that were appended to the fresh list during the scan
            // (can happen when a clause watches both p and !p's variable).
            let appended = std::mem::take(&mut self.watches[p.index()]);
            ws.extend(appended);
            self.watches[p.index()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn var_bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.update(v, &self.activity);
    }

    fn var_decay(&mut self) {
        self.var_inc /= 0.95;
    }

    fn cla_bump(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut cref = confl;
        let cur_level = self.decision_level();

        loop {
            self.cla_bump(cref);
            let start = usize::from(p.is_some());
            for k in start..self.clauses[cref as usize].lits.len() {
                let q = self.clauses[cref as usize].lits[k];
                let v = q.var().0 as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.var_bump(v);
                    if self.level[v] >= cur_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next seen literal on the trail.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().0 as usize] {
                    break;
                }
            }
            let pl = self.trail[index];
            let v = pl.var().0 as usize;
            self.seen[v] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(pl);
                break;
            }
            cref = self.reason[v];
            debug_assert_ne!(cref, REASON_NONE);
            p = Some(pl);
        }
        learnt[0] = !p.unwrap();

        // Clause minimization: drop literals implied by the rest. Keep a
        // copy so the `seen` flags of *removed* literals are cleared too.
        let to_clear = learnt.clone();
        let mut j = 1;
        for i in 1..learnt.len() {
            let l = learnt[i];
            if !self.lit_redundant(l) {
                learnt[j] = l;
                j += 1;
            }
        }
        learnt.truncate(j);

        // Compute backtrack level = second-highest level in the clause.
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().0 as usize]
                    > self.level[learnt[max_i].var().0 as usize]
                {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().0 as usize]
        };

        // Clear the `seen` flags we set on clause literals.
        for &l in &to_clear {
            self.seen[l.var().0 as usize] = false;
        }
        (learnt, bt_level)
    }

    /// Simple (non-recursive) redundancy test: a literal is redundant if its
    /// reason clause exists and all the reason's other literals are already
    /// seen (i.e. already in the learnt clause) or at level 0.
    fn lit_redundant(&self, l: Lit) -> bool {
        let v = l.var().0 as usize;
        let r = self.reason[v];
        if r == REASON_NONE {
            return false;
        }
        self.clauses[r as usize].lits.iter().skip(1).all(|&q| {
            let qv = q.var().0 as usize;
            self.seen[qv] || self.level[qv] == 0
        })
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level as usize];
        for i in (bound..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().0 as usize;
            self.phase[v] = l.is_pos();
            self.assigns[v] = LBool::Undef;
            self.reason[v] = REASON_NONE;
            self.heap.insert(v, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.heap.pop(&self.activity) {
            if self.assigns[v] == LBool::Undef {
                return Some(Var(v as u32));
            }
        }
        None
    }

    /// Remove the less active half of the (non-binary, unlocked) learnt
    /// clauses — the in-search reduction, expressed as a cap.
    fn reduce_db(&mut self) {
        let half = self
            .clauses
            .iter()
            .filter(|c| c.learnt && !c.deleted && c.lits.len() > 2)
            .count() as u64
            / 2;
        self.reduce_learnts_to(self.stats.learnts.saturating_sub(half));
    }

    /// Shrink the learnt-clause database to at most `cap` clauses,
    /// deleting least-active learnts first (this one routine backs both
    /// the in-search reduction and the session-level GC, so the activity
    /// order and locked-clause rules cannot drift apart). Binary learnt
    /// clauses and clauses currently the reason for an assignment are
    /// kept, so the cap is a target, not a hard guarantee. A deleted
    /// clause's literal storage is freed immediately and its watcher
    /// entries are dropped on the next visit — a capped long-lived
    /// session's memory stays proportional to the live clause set plus
    /// empty tombstone headers, no matter how many queries it answered.
    pub fn reduce_learnts_to(&mut self, cap: u64) {
        if self.stats.learnts <= cap {
            return;
        }
        let mut learnt_refs: Vec<ClauseRef> = (0..self.clauses.len() as ClauseRef)
            .filter(|&c| {
                let cl = &self.clauses[c as usize];
                cl.learnt && !cl.deleted && cl.lits.len() > 2
            })
            .collect();
        learnt_refs.sort_by(|&a, &b| {
            self.clauses[a as usize]
                .activity
                .partial_cmp(&self.clauses[b as usize].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for &c in &learnt_refs {
            if self.stats.learnts <= cap {
                break;
            }
            let locked = self.clauses[c as usize].lits[..2]
                .iter()
                .any(|&l| self.reason[l.var().0 as usize] == c && self.value_lit(l) == LBool::True);
            if locked {
                continue;
            }
            let cl = &mut self.clauses[c as usize];
            cl.deleted = true;
            cl.lits = Vec::new();
            self.stats.learnts = self.stats.learnts.saturating_sub(1);
        }
    }

    /// Solve the formula. Returns `Sat` or `Unsat`; on `Sat` the model is
    /// available through [`SatSolver::value`]. The solver backtracks to
    /// the root level afterwards, so clauses may be added and the solver
    /// re-queried (learnt clauses and activities are kept).
    pub fn solve(&mut self) -> SolveOutcome {
        self.solve_under_assumptions(&[])
    }

    /// Solve the formula under the given assumption literals: a model (if
    /// any) must make every assumption true. Assumptions are decided
    /// before any free decision, MiniSat-style, so the clause database —
    /// including everything learnt here — never depends on them and
    /// remains valid for later solves under different assumptions.
    ///
    /// On `Unsat` caused by the assumptions, the failing subset is
    /// available via [`SatSolver::failed_assumptions`]; if the clause set
    /// itself is unsatisfiable the core is empty and every later solve
    /// answers `Unsat` immediately.
    pub fn solve_under_assumptions(&mut self, assumptions: &[Lit]) -> SolveOutcome {
        debug_assert_eq!(self.decision_level(), 0);
        self.model.clear();
        self.conflict_core.clear();
        if !self.ok {
            return SolveOutcome::Unsat;
        }
        self.max_learnts = (self.clauses.len() as f64 * 0.3).max(1000.0);
        let mut restart_idx = 0u64;
        let mut conflicts_budget = 100 * luby(restart_idx);

        let outcome = 'search: loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    break 'search SolveOutcome::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.cancel_until(bt);
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], REASON_NONE);
                } else {
                    let asserting = learnt[0];
                    let cref = self.attach_clause(learnt, true);
                    self.unchecked_enqueue(asserting, cref);
                }
                self.var_decay();
                self.cla_inc *= 1.001;
                conflicts_budget = conflicts_budget.saturating_sub(1);
            } else {
                if conflicts_budget == 0 {
                    // Restart (assumptions are re-decided below).
                    self.stats.restarts += 1;
                    restart_idx += 1;
                    conflicts_budget = 100 * luby(restart_idx);
                    self.cancel_until(0);
                }
                if self.stats.learnts as f64 > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= 1.3;
                }
                // Decide assumptions before any free decision.
                while (self.decision_level() as usize) < assumptions.len() {
                    let p = assumptions[self.decision_level() as usize];
                    match self.value_lit(p) {
                        LBool::True => {
                            // Already implied: open a dummy level so the
                            // level-to-assumption indexing stays aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            self.analyze_final(p);
                            break 'search SolveOutcome::Unsat;
                        }
                        LBool::Undef => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(p, REASON_NONE);
                            continue 'search; // propagate before the next one
                        }
                    }
                }
                match self.pick_branch_var() {
                    None => break 'search SolveOutcome::Sat,
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let phase = self.phase[v.0 as usize];
                        self.unchecked_enqueue(v.lit(phase), REASON_NONE);
                    }
                }
            }
        };
        if outcome == SolveOutcome::Sat {
            self.model = self.assigns.clone();
        }
        // Return to the root so the instance stays reusable: clauses can
        // be added and new (assumption) queries posed.
        self.cancel_until(0);
        outcome
    }

    /// Compute the failing-assumption core when assumption `p` is found
    /// false: walk the implication graph from `!p` back to the assumption
    /// decisions responsible. Every decision on the trail at this point
    /// is an assumption (assumptions are decided before free decisions,
    /// and we only get here while still enqueuing them).
    fn analyze_final(&mut self, p: Lit) {
        self.conflict_core.clear();
        self.conflict_core.push(p);
        if self.decision_level() == 0 {
            // `!p` is implied by the clauses alone; the core is `{p}`.
            self.conflict_core.sort();
            return;
        }
        self.seen[p.var().0 as usize] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().0 as usize;
            if !self.seen[v] {
                continue;
            }
            if self.reason[v] == REASON_NONE {
                debug_assert!(self.level[v] > 0);
                self.conflict_core.push(l);
            } else {
                let r = self.reason[v] as usize;
                for k in 1..self.clauses[r].lits.len() {
                    let q = self.clauses[r].lits[k];
                    if self.level[q.var().0 as usize] > 0 {
                        self.seen[q.var().0 as usize] = true;
                    }
                }
            }
            self.seen[v] = false;
        }
        self.seen[p.var().0 as usize] = false;
        self.conflict_core.sort();
        self.conflict_core.dedup();
    }
}

/// The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
fn luby(x: u64) -> u64 {
    // Find the finite subsequence that contains index x and its size.
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut x = x;
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

/// Indexed binary max-heap over variable activities.
struct OrderHeap {
    heap: Vec<usize>,
    /// Position of each variable in `heap`, or `usize::MAX` if absent.
    pos: Vec<usize>,
}

impl OrderHeap {
    fn new(n: usize) -> Self {
        OrderHeap {
            heap: (0..n).collect(),
            pos: (0..n).collect(),
        }
    }

    fn contains(&self, v: usize) -> bool {
        self.pos[v] != usize::MAX
    }

    /// Register a brand-new variable (index = current table size) and
    /// queue it for decision. Zero activity keeps the heap ordered with
    /// the new entry at the bottom.
    fn push_new(&mut self, v: usize) {
        debug_assert_eq!(v, self.pos.len());
        self.pos.push(self.heap.len());
        self.heap.push(v);
    }

    fn insert(&mut self, v: usize, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn update(&mut self, v: usize, act: &[f64]) {
        if self.contains(v) {
            self.sift_up(self.pos[v], act);
        }
    }

    fn pop(&mut self, act: &[f64]) -> Option<usize> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().unwrap();
        self.pos[top] = usize::MAX;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i]] <= act[self.heap[parent]] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l]] > act[self.heap[best]] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r]] > act[self.heap[best]] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i]] = i;
        self.pos[self.heap[j]] = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Cnf;

    fn solve_clauses(num_vars: u32, clauses: &[&[i32]]) -> SolveOutcome {
        let mut s = SatSolver::new(num_vars);
        for c in clauses {
            let lits: Vec<Lit> = c
                .iter()
                .map(|&x| {
                    let v = Var(x.unsigned_abs() - 1);
                    v.lit(x > 0)
                })
                .collect();
            if !s.add_clause(lits) {
                return SolveOutcome::Unsat;
            }
        }
        s.solve()
    }

    #[test]
    fn trivially_sat() {
        assert_eq!(solve_clauses(1, &[&[1]]), SolveOutcome::Sat);
    }

    #[test]
    fn trivially_unsat() {
        assert_eq!(solve_clauses(1, &[&[1], &[-1]]), SolveOutcome::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        assert_eq!(solve_clauses(3, &[]), SolveOutcome::Sat);
    }

    #[test]
    fn simple_implication_chain_unsat() {
        // a, a->b, b->c, !c
        assert_eq!(
            solve_clauses(3, &[&[1], &[-1, 2], &[-2, 3], &[-3]]),
            SolveOutcome::Unsat
        );
    }

    #[test]
    fn xor_chain_sat() {
        // (a xor b), (b xor c): satisfiable
        assert_eq!(
            solve_clauses(3, &[&[1, 2], &[-1, -2], &[2, 3], &[-2, -3]]),
            SolveOutcome::Sat
        );
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p_ij: pigeon i in hole j. vars: p11=1,p12=2,p21=3,p22=4,p31=5,p32=6
        let clauses: &[&[i32]] = &[
            &[1, 2],
            &[3, 4],
            &[5, 6],
            // no two pigeons share hole 1
            &[-1, -3],
            &[-1, -5],
            &[-3, -5],
            // no two pigeons share hole 2
            &[-2, -4],
            &[-2, -6],
            &[-4, -6],
        ];
        assert_eq!(solve_clauses(6, clauses), SolveOutcome::Unsat);
    }

    #[test]
    fn model_satisfies_formula() {
        let mut cnf = Cnf::new();
        let vars: Vec<Var> = (0..8).map(|_| cnf.fresh_var()).collect();
        // Random-ish structured formula.
        cnf.add_clause(vec![vars[0].pos(), vars[1].neg(), vars[2].pos()]);
        cnf.add_clause(vec![vars[3].neg(), vars[4].pos()]);
        cnf.add_clause(vec![vars[5].pos(), vars[6].pos(), vars[7].neg()]);
        cnf.add_clause(vec![vars[0].neg(), vars[3].pos()]);
        cnf.add_clause(vec![vars[2].neg(), vars[5].neg()]);
        let mut s = SatSolver::from_cnf(&cnf);
        assert_eq!(s.solve(), SolveOutcome::Sat);
        let assignment: Vec<bool> = vars.iter().map(|&v| s.value(v)).collect();
        assert!(cnf.eval(&assignment));
    }

    #[test]
    fn luby_sequence_prefix() {
        let expect = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        // (a \/ a) dedups to the unit clause (a); (a \/ !a) is dropped as a
        // tautology; then (!a) conflicts at level 0 -> Unsat.
        let mut s = SatSolver::new(1);
        assert!(s.add_clause(vec![Var(0).pos(), Var(0).pos()]));
        assert!(s.add_clause(vec![Var(0).pos(), Var(0).neg()]));
        assert!(!s.add_clause(vec![Var(0).neg()]));
        assert_eq!(s.solve(), SolveOutcome::Unsat);

        // Tautology alone stays satisfiable either way.
        let mut s2 = SatSolver::new(2);
        assert!(s2.add_clause(vec![Var(0).pos(), Var(0).neg()]));
        assert!(s2.add_clause(vec![Var(1).neg()]));
        assert_eq!(s2.solve(), SolveOutcome::Sat);
        assert!(!s2.value(Var(1)));
    }

    #[test]
    fn assumptions_flip_outcomes_on_one_instance() {
        // (a -> b), (b -> c): solve the same instance under different
        // assumption sets without rebuilding anything.
        let mut s = SatSolver::new(3);
        let (a, b, c) = (Var(0), Var(1), Var(2));
        assert!(s.add_clause(vec![a.neg(), b.pos()]));
        assert!(s.add_clause(vec![b.neg(), c.pos()]));
        assert_eq!(
            s.solve_under_assumptions(&[a.pos(), c.neg()]),
            SolveOutcome::Unsat
        );
        let core = s.failed_assumptions().to_vec();
        assert!(core.contains(&a.pos()) && core.contains(&c.neg()));
        // Same instance, satisfiable assumptions; model respects them.
        assert_eq!(
            s.solve_under_assumptions(&[a.pos(), c.pos()]),
            SolveOutcome::Sat
        );
        assert!(s.value(a) && s.value(b) && s.value(c));
        // And with no assumptions it is still satisfiable.
        assert_eq!(s.solve(), SolveOutcome::Sat);
    }

    #[test]
    fn failed_assumption_core_is_minimal_here() {
        // x1..x4 free; clause (!x1 \/ !x2). Assume all four positively:
        // the core must mention only x1 and x2.
        let mut s = SatSolver::new(4);
        assert!(s.add_clause(vec![Var(0).neg(), Var(1).neg()]));
        let assumptions: Vec<Lit> = (0..4).map(|i| Var(i).pos()).collect();
        assert_eq!(s.solve_under_assumptions(&assumptions), SolveOutcome::Unsat);
        let core = s.failed_assumptions().to_vec();
        assert!(core.contains(&Var(0).pos()) && core.contains(&Var(1).pos()));
        assert!(!core.contains(&Var(2).pos()) && !core.contains(&Var(3).pos()));
        // The core itself must be jointly unsatisfiable.
        let mut s2 = SatSolver::new(4);
        assert!(s2.add_clause(vec![Var(0).neg(), Var(1).neg()]));
        assert_eq!(s2.solve_under_assumptions(&core), SolveOutcome::Unsat);
    }

    #[test]
    fn base_unsat_yields_empty_core() {
        let mut s = SatSolver::new(2);
        assert!(s.add_clause(vec![Var(0).pos()]));
        assert!(!s.add_clause(vec![Var(0).neg()]));
        assert_eq!(
            s.solve_under_assumptions(&[Var(1).pos()]),
            SolveOutcome::Unsat
        );
        assert!(s.failed_assumptions().is_empty());
    }

    #[test]
    fn clauses_added_between_solves() {
        // Incremental use: solve, learn the answer, constrain, solve again.
        let mut s = SatSolver::new(3);
        assert!(s.add_clause(vec![Var(0).pos(), Var(1).pos()]));
        assert_eq!(s.solve(), SolveOutcome::Sat);
        assert!(s.add_clause(vec![Var(0).neg()]));
        assert_eq!(s.solve(), SolveOutcome::Sat);
        assert!(s.value(Var(1)));
        assert!(!s.add_clause(vec![Var(1).neg()]) || s.solve() == SolveOutcome::Unsat);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
    }

    #[test]
    fn variables_grow_between_solves() {
        let mut s = SatSolver::new(1);
        assert!(s.add_clause(vec![Var(0).pos()]));
        assert_eq!(s.solve(), SolveOutcome::Sat);
        s.ensure_num_vars(3);
        assert_eq!(s.num_vars(), 3);
        assert!(s.add_clause(vec![Var(0).neg(), Var(2).pos()]));
        assert_eq!(s.solve(), SolveOutcome::Sat);
        assert!(s.value(Var(0)) && s.value(Var(2)));
    }

    #[test]
    fn reduce_learnts_to_bounds_the_database() {
        // A formula hard enough to learn from: pigeonhole 4 into 3.
        let pigeons = 4u32;
        let holes = 3u32;
        let var = |p: u32, h: u32| Var(p * holes + h);
        let mut s = SatSolver::new(pigeons * holes);
        for p in 0..pigeons {
            assert!(s.add_clause((0..holes).map(|h| var(p, h).pos()).collect()));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    assert!(s.add_clause(vec![var(p1, h).neg(), var(p2, h).neg()]));
                }
            }
        }
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        // Whatever was learnt, the GC caps it (binary learnts may stay).
        s.reduce_learnts_to(0);
        let non_binary_learnts = s
            .clauses
            .iter()
            .filter(|c| c.learnt && !c.deleted && c.lits.len() > 2)
            .count();
        assert_eq!(non_binary_learnts, 0, "non-binary learnts must be GCed");
    }

    #[test]
    fn at_most_one_constraints() {
        // Exactly-one over 4 vars, forced to var 2.
        let mut clauses: Vec<Vec<i32>> = vec![vec![1, 2, 3, 4]];
        for i in 1..=4 {
            for j in (i + 1)..=4 {
                clauses.push(vec![-i, -j]);
            }
        }
        clauses.push(vec![-1]);
        clauses.push(vec![-3]);
        clauses.push(vec![-4]);
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = SatSolver::new(4);
        for c in &refs {
            let lits: Vec<Lit> = c
                .iter()
                .map(|&x| Var(x.unsigned_abs() - 1).lit(x > 0))
                .collect();
            assert!(s.add_clause(lits));
        }
        assert_eq!(s.solve(), SolveOutcome::Sat);
        assert!(s.value(Var(1)));
    }
}
