//! A MiniSat-style CDCL SAT solver.
//!
//! Features: two-watched-literal unit propagation over struct-of-arrays
//! watcher lists with inlined blocker literals, a flat clause arena (one
//! contiguous `u32` buffer instead of one heap allocation per clause),
//! first-UIP conflict analysis with clause minimization, VSIDS variable
//! activities with an indexed binary heap, phase saving, Luby-sequence
//! restarts, activity-driven learnt-clause database reduction, on-the-fly
//! binary-clause subsumption, and an inprocessing sweep
//! ([`SatSolver::inprocess_sweep`]) that simplifies, subsumes,
//! strengthens and vivifies the clause database between queries.
//!
//! The solver is **incremental**: every solve backtracks to the root
//! decision level instead of tearing the instance down, so callers can
//! keep adding clauses ([`SatSolver::add_clause_slice`]) and variables
//! ([`SatSolver::ensure_num_vars`]) between solves while learnt clauses,
//! variable activities and saved phases carry over. Related queries are
//! posed with [`SatSolver::solve_under_assumptions`], which decides the
//! given literals first (MiniSat's assumption mechanism); on an
//! assumption-caused `Unsat` the failing-assumption core is available
//! through [`SatSolver::failed_assumptions`].
//!
//! Heuristics are configurable through [`SolverConfig`] — restart base
//! and offset, initial-phase polarity seeding, activity-noise seeding —
//! which is what the portfolio layer in [`crate::solver`] varies across
//! racing clones. A solve can be cancelled from another thread via
//! [`SatSolver::solve_under_assumptions_abortable`].
//!
//! The solver is deliberately self-contained (no `unsafe`, no external
//! dependencies) — it is the substrate on which every Lightyear local check
//! and every Minesweeper monolithic query in this workspace is decided.

use crate::cnf::{Cnf, Lit, Var};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

/// Tri-state assignment value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    fn from_bool(b: bool) -> Self {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

/// Result of a satisfiability query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveOutcome {
    /// A satisfying assignment was found (read it via [`SatSolver::value`]).
    Sat,
    /// The formula is unsatisfiable.
    Unsat,
}

/// Reference to a clause: the word offset of its header in the arena.
type ClauseRef = u32;
const REASON_NONE: ClauseRef = u32::MAX;

/// Hard ceiling on clause-arena size, in `u32` words: one below
/// `u32::MAX` so every valid clause offset stays distinguishable from
/// the `REASON_NONE` sentinel.
pub const ARENA_CAP_WORDS: u32 = u32::MAX - 1;

/// A typed solver failure. Before this existed, the flat clause arena
/// grew unchecked: past `u32::MAX` words the `as u32` offset cast
/// silently wrapped, aliasing fresh clauses onto old ones and
/// corrupting the watcher lists — a wrong-verdict bug, not a crash.
/// Allocation is now checked, and an exhausted arena latches this error
/// on the solver: the instance refuses every further verdict instead of
/// risking one derived from a dropped or aliased clause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolverError {
    /// The flat clause arena hit its addressing cap (the real `u32`
    /// ceiling, or a synthetic test cap from
    /// [`SatSolver::set_arena_cap_words`]).
    ArenaExhausted {
        /// Words the arena would have needed for the failed allocation.
        requested_words: u64,
        /// The cap in force when the allocation failed.
        cap_words: u32,
    },
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::ArenaExhausted {
                requested_words,
                cap_words,
            } => write!(
                f,
                "clause arena exhausted: allocation needs {requested_words} words, \
                 cap is {cap_words} words"
            ),
        }
    }
}

impl std::error::Error for SolverError {}

/// Heuristic and inprocessing knobs. [`SolverConfig::default`] is the
/// tuned configuration every production path uses;
/// [`SolverConfig::plain`] disables the inprocessing features (the
/// ablation baseline the benches and differential proptests compare
/// against); [`SolverConfig::jittered`] derives the perturbed variants
/// the portfolio races.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Conflicts allowed before the first restart (scaled by Luby).
    pub restart_base: u64,
    /// Starting index into the Luby sequence (portfolio jitter).
    pub restart_offset: u64,
    /// Initial saved phase for fresh variables.
    pub init_phase: bool,
    /// When nonzero, fresh variables get pseudorandom initial phases
    /// seeded here instead of `init_phase` (portfolio jitter).
    pub phase_seed: u64,
    /// When nonzero, fresh variables get tiny pseudorandom initial
    /// activities, perturbing the VSIDS tie-break order (portfolio
    /// jitter: a different exploration order over equal-activity vars).
    pub activity_seed: u64,
    /// VSIDS decay factor.
    pub var_decay: f64,
    /// Learn through an existing binary clause instead of attaching a
    /// subsumed learnt clause (on-the-fly binary subsumption).
    pub otf_subsume: bool,
    /// Enable the periodic inprocessing sweep (consulted by the session
    /// layer; the solver itself sweeps only when asked).
    pub sweep: bool,
    /// Queries between sweeps (session layer).
    pub sweep_every: u64,
    /// Unit-propagation budget per sweep for vivification.
    pub viv_budget: u64,
    /// Only vivify learnt clauses up to this many literals.
    pub viv_max_len: usize,
    /// Vivify at most this many clauses per sweep (most active first).
    pub viv_max_clauses: usize,
    /// Bypass the watcher lists' inline slots and heap-allocate every
    /// list (the pre-flat-layout `Vec`-per-literal behavior). Strictly
    /// slower; exists so [`SolverConfig::plain`] reproduces the old
    /// feed cost and the ablation benches measure the layout win
    /// honestly.
    pub spill_watchers: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            restart_base: 100,
            restart_offset: 0,
            init_phase: false,
            phase_seed: 0,
            activity_seed: 0,
            var_decay: 0.95,
            otf_subsume: true,
            sweep: true,
            sweep_every: 32,
            viv_budget: 2000,
            viv_max_len: 16,
            viv_max_clauses: 64,
            spill_watchers: false,
        }
    }
}

impl SolverConfig {
    /// The plain CDCL loop: no on-the-fly subsumption, no sweeps. The
    /// pre-inprocessing baseline for ablation benches and differential
    /// proptests.
    pub fn plain() -> Self {
        SolverConfig {
            otf_subsume: false,
            sweep: false,
            spill_watchers: true,
            ..SolverConfig::default()
        }
    }

    /// The `variant`-th jittered configuration for a portfolio race
    /// seeded by `seed`. Variant 0 is the base configuration unchanged
    /// (so a race is never strictly worse than the sequential solver on
    /// the search it would have run); higher variants perturb polarity,
    /// restart schedule, and VSIDS decay.
    pub fn jittered(&self, variant: usize, seed: u64) -> Self {
        if variant == 0 {
            return self.clone();
        }
        let decays = [0.95, 0.92, 0.975, 0.90];
        let mut cfg = self.clone();
        cfg.restart_offset = self.restart_offset + variant as u64;
        cfg.phase_seed = splitmix64(seed ^ (variant as u64).wrapping_mul(0x9e37_79b9)).max(1);
        cfg.activity_seed = splitmix64(cfg.phase_seed).max(1);
        cfg.var_decay = decays[variant % decays.len()];
        cfg
    }
}

/// One round of splitmix64 — the solver's only pseudorandomness, used
/// for seeded phase/activity jitter. Deterministic per seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Cumulative counters exposed for benchmarking (Figure 3c/3d) and the
/// `lightyear profile` solver section.
#[derive(Clone, Copy, Debug, Default)]
pub struct SatStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of conflicts found.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnts: u64,
    /// Learnt clauses dropped because an existing binary clause
    /// subsumes them (on-the-fly at learn time, plus sweep passes).
    pub subsumed: u64,
    /// Literals removed from learnt clauses by binary self-subsumption
    /// during sweeps.
    pub strengthened: u64,
    /// Learnt clauses shortened by propagation-based vivification.
    pub vivified: u64,
    /// Inprocessing sweeps performed.
    pub sweeps: u64,
    /// Unit propagations spent inside vivification (not counted in
    /// `propagations`, so per-query deltas stay meaningful).
    pub viv_propagations: u64,
}

/// Arena and watcher occupancy, for memory-bound assertions (the
/// session-churn stress tests) and the profile report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Live (non-deleted) clauses in the arena.
    pub live_clauses: u64,
    /// Live learnt clauses.
    pub live_learnts: u64,
    /// Live learnt clauses longer than two literals.
    pub live_long_learnts: u64,
    /// Total arena words, including tombstoned clauses awaiting
    /// compaction.
    pub arena_words: u64,
    /// Arena words wasted by tombstones.
    pub wasted_words: u64,
    /// Total entries across all watcher lists.
    pub watcher_entries: u64,
}

/// Flat clause storage: every clause is `[header, activity, lits...]`
/// in one contiguous `u32` buffer. The header packs `len << 4 | flags`;
/// deleting a clause sets a flag and leaves a tombstone whose space is
/// reclaimed by [`SatSolver::inprocess_sweep`]'s compaction.
#[derive(Clone, Default)]
struct ClauseDb {
    data: Vec<u32>,
    wasted: u64,
}

const FLAG_DELETED: u32 = 1;
const FLAG_LEARNT: u32 = 2;
const HEADER_WORDS: usize = 2;

impl ClauseDb {
    /// Allocate a clause, refusing — with **no partial state** — when
    /// the arena would grow past `cap` words. `ClauseRef` offsets are
    /// `u32`; unchecked growth past that range used to wrap the offset
    /// cast and alias earlier clauses.
    fn alloc(&mut self, lits: &[Lit], learnt: bool, cap: u32) -> Option<ClauseRef> {
        debug_assert!(lits.len() >= 2);
        let needed = self.data.len() as u64 + (HEADER_WORDS + lits.len()) as u64;
        if needed > cap as u64 {
            return None;
        }
        let c = self.data.len() as ClauseRef;
        let flags = if learnt { FLAG_LEARNT } else { 0 };
        self.data.push((lits.len() as u32) << 4 | flags);
        self.data.push(0f32.to_bits());
        self.data.extend(lits.iter().map(|l| l.0));
        Some(c)
    }

    fn len(&self, c: ClauseRef) -> usize {
        (self.data[c as usize] >> 4) as usize
    }

    fn is_deleted(&self, c: ClauseRef) -> bool {
        self.data[c as usize] & FLAG_DELETED != 0
    }

    fn is_learnt(&self, c: ClauseRef) -> bool {
        self.data[c as usize] & FLAG_LEARNT != 0
    }

    fn delete(&mut self, c: ClauseRef) {
        debug_assert!(!self.is_deleted(c));
        self.data[c as usize] |= FLAG_DELETED;
        self.wasted += (HEADER_WORDS + self.len(c)) as u64;
    }

    fn lit(&self, c: ClauseRef, k: usize) -> Lit {
        Lit(self.data[c as usize + HEADER_WORDS + k])
    }

    fn swap_lits(&mut self, c: ClauseRef, i: usize, j: usize) {
        let base = c as usize + HEADER_WORDS;
        self.data.swap(base + i, base + j);
    }

    fn activity(&self, c: ClauseRef) -> f32 {
        f32::from_bits(self.data[c as usize + 1])
    }

    fn set_activity(&mut self, c: ClauseRef, a: f32) {
        self.data[c as usize + 1] = a.to_bits();
    }

    /// Offset of the clause following `c` (tombstones keep their length,
    /// so the arena stays walkable).
    fn next(&self, c: ClauseRef) -> ClauseRef {
        c + (HEADER_WORDS + self.len(c)) as ClauseRef
    }

    /// Visit every live clause header offset.
    fn for_each_live(&self, mut f: impl FnMut(ClauseRef)) {
        let mut c = 0u32;
        while (c as usize) < self.data.len() {
            if !self.is_deleted(c) {
                f(c);
            }
            c = self.next(c);
        }
    }
}

/// One literal's watcher list: each entry packs the blocker literal
/// (high word) next to the clause reference (low word), so the hot path
/// — most watched clauses are already satisfied through their blocker —
/// streams through one dense array without touching the clause arena.
///
/// The first two entries live inline in the list itself: most literals
/// watch at most a couple of clauses, so on a fresh feed the bulk of
/// watcher attachment never touches the heap at all (feeding a 50-router
/// WAN otherwise performs one small allocation per watching literal,
/// which dominates the feed). Entries beyond two spill into a `Vec`,
/// and indexed access resolves against the inline count with a single
/// predictable branch.
#[derive(Clone, Default)]
struct WatchList {
    head_len: u8,
    head: [u64; 2], // blocker (raw Lit) << 32 | cref
    spill: Vec<u64>,
}

impl WatchList {
    fn len(&self) -> usize {
        self.head_len as usize + self.spill.len()
    }

    #[inline]
    fn get(&self, i: usize) -> u64 {
        // Entries are head[0..head_len] followed by the spill, in
        // either attachment mode.
        let h = self.head_len as usize;
        if i < h {
            self.head[i]
        } else {
            self.spill[i - h]
        }
    }

    #[inline]
    fn set(&mut self, i: usize, e: u64) {
        let h = self.head_len as usize;
        if i < h {
            self.head[i] = e;
        } else {
            self.spill[i - h] = e;
        }
    }

    /// Append an entry. `spill` forces the heap path (the
    /// [`SolverConfig::spill_watchers`] ablation); the inline slots are
    /// otherwise only skipped once the spill is in use, keeping the
    /// head-then-spill order contiguous.
    #[inline]
    fn push_entry(&mut self, e: u64, spill: bool) {
        if !spill && self.head_len < 2 && self.spill.is_empty() {
            self.head[self.head_len as usize] = e;
            self.head_len += 1;
        } else {
            self.spill.push(e);
        }
    }

    fn push(&mut self, cref: ClauseRef, blocker: Lit, spill: bool) {
        self.push_entry((blocker.0 as u64) << 32 | cref as u64, spill);
    }

    fn cref(&self, i: usize) -> ClauseRef {
        self.get(i) as u32
    }

    fn blocker(&self, i: usize) -> Lit {
        Lit((self.get(i) >> 32) as u32)
    }

    fn set_blocker(&mut self, i: usize, b: Lit) {
        let e = self.get(i);
        self.set(i, (b.0 as u64) << 32 | (e & 0xffff_ffff));
    }

    fn swap_remove(&mut self, i: usize) {
        let last = match self.spill.pop() {
            Some(e) => e,
            None => {
                self.head_len -= 1;
                self.head[self.head_len as usize]
            }
        };
        if i < self.len() {
            self.set(i, last);
        }
    }

    fn clear(&mut self) {
        self.head_len = 0;
        self.spill.clear();
    }

    fn append_from(&mut self, other: &WatchList, spill: bool) {
        for i in 0..other.len() {
            self.push_entry(other.get(i), spill);
        }
    }
}

/// The CDCL solver.
#[derive(Clone)]
pub struct SatSolver {
    db: ClauseDb,
    watches: Vec<WatchList>, // indexed by Lit::index()
    assigns: Vec<LBool>,     // indexed by var
    phase: Vec<bool>,        // saved phases
    level: Vec<u32>,
    reason: Vec<ClauseRef>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f32,
    heap: OrderHeap,
    seen: Vec<bool>,
    scratch: Vec<Lit>, // add_clause normalization buffer
    ok: bool,          // false once a top-level conflict is found
    stats: SatStats,
    max_learnts: f64,
    config: SolverConfig,
    /// Clause-arena size ceiling in words ([`ARENA_CAP_WORDS`] in
    /// production; tests lower it to force near-capacity growth).
    arena_cap: u32,
    /// Latched capacity failure: once set, every solve refuses a
    /// verdict (the abortable entry point returns `None`).
    arena_error: Option<SolverError>,
    /// Assignment snapshot from the most recent `Sat` answer; solves
    /// backtrack to the root level before returning, so the model must
    /// outlive the trail.
    model: Vec<LBool>,
    /// On an assumption-caused `Unsat`: the subset of the assumptions
    /// that is jointly inconsistent with the clauses. Empty when the
    /// clause set itself is unsatisfiable.
    conflict_core: Vec<Lit>,
}

fn pair_key(a: Lit, b: Lit) -> u64 {
    let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
    (lo as u64) << 32 | hi as u64
}

impl SatSolver {
    /// Create a solver over `num_vars` variables with the default
    /// configuration.
    pub fn new(num_vars: u32) -> Self {
        SatSolver::with_config(num_vars, SolverConfig::default())
    }

    /// Create a solver with an explicit [`SolverConfig`].
    pub fn with_config(num_vars: u32, config: SolverConfig) -> Self {
        let mut s = SatSolver {
            db: ClauseDb::default(),
            watches: Vec::new(),
            assigns: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            heap: OrderHeap::new(0),
            seen: Vec::new(),
            scratch: Vec::new(),
            ok: true,
            stats: SatStats::default(),
            max_learnts: 0.0,
            config,
            arena_cap: ARENA_CAP_WORDS,
            arena_error: None,
            model: Vec::new(),
            conflict_core: Vec::new(),
        };
        s.ensure_num_vars(num_vars);
        s
    }

    /// The active configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Replace the configuration (heuristic knobs only; sound at any
    /// point between solves).
    pub fn set_config(&mut self, config: SolverConfig) {
        self.config = config;
    }

    /// Re-seed heuristic state on an existing solver per the configured
    /// phase/activity seeds — how a freshly cloned portfolio variant
    /// diverges from its siblings. Touches saved phases and VSIDS
    /// activities only; verdicts are unaffected.
    pub fn apply_jitter(&mut self) {
        if self.config.phase_seed != 0 {
            for v in 0..self.phase.len() {
                if self.assigns[v] == LBool::Undef {
                    self.phase[v] = splitmix64(self.config.phase_seed ^ v as u64) & 1 == 1;
                }
            }
        }
        if self.config.activity_seed != 0 {
            for v in 0..self.activity.len() {
                let r = splitmix64(self.config.activity_seed ^ v as u64);
                self.activity[v] += (r % 1024) as f64 * (self.var_inc / 1_000_000.0);
            }
            self.heap.heapify(&self.activity);
        }
    }

    /// Number of variables the solver currently knows about.
    pub fn num_vars(&self) -> u32 {
        self.assigns.len() as u32
    }

    /// Grow the variable tables to hold at least `n` variables. New
    /// variables start unassigned; their initial phase and activity
    /// follow the configured polarity/activity seeds. Used by
    /// incremental callers whose formula grows between solves.
    pub fn ensure_num_vars(&mut self, n: u32) {
        let n = n as usize;
        let cur = self.assigns.len();
        if n <= cur {
            return;
        }
        self.watches.resize_with(2 * n, WatchList::default);
        self.assigns.resize(n, LBool::Undef);
        self.phase.resize(n, self.config.init_phase);
        if self.config.phase_seed != 0 {
            for v in cur..n {
                self.phase[v] = splitmix64(self.config.phase_seed ^ v as u64) & 1 == 1;
            }
        }
        self.level.resize(n, 0);
        self.reason.resize(n, REASON_NONE);
        self.activity.resize(n, 0.0);
        if self.config.activity_seed != 0 {
            for v in cur..n {
                // Tiny noise: reorders equal-activity ties without
                // outweighing a single real bump.
                let r = splitmix64(self.config.activity_seed ^ v as u64);
                self.activity[v] = (r % 1024) as f64 * (self.var_inc / 1_000_000.0);
            }
        }
        self.seen.resize(n, false);
        for v in cur..n {
            self.heap.push_new(v);
        }
        if self.config.activity_seed != 0 {
            self.heap.heapify(&self.activity);
        }
    }

    /// Build a solver directly from a [`Cnf`].
    pub fn from_cnf(cnf: &Cnf) -> Self {
        let mut s = SatSolver::new(cnf.num_vars());
        for c in cnf.clauses() {
            s.add_clause_slice(c);
        }
        s
    }

    /// Solver statistics so far.
    pub fn stats(&self) -> SatStats {
        self.stats
    }

    /// Clause-arena and watcher-list occupancy (memory accounting).
    pub fn db_stats(&self) -> DbStats {
        let mut d = DbStats {
            arena_words: self.db.data.len() as u64,
            wasted_words: self.db.wasted,
            watcher_entries: self.watches.iter().map(|w| w.len() as u64).sum(),
            ..DbStats::default()
        };
        self.db.for_each_live(|c| {
            d.live_clauses += 1;
            if self.db.is_learnt(c) {
                d.live_learnts += 1;
                if self.db.len(c) > 2 {
                    d.live_long_learnts += 1;
                }
            }
        });
        d
    }

    fn value_lit(&self, l: Lit) -> LBool {
        match self.assigns[l.var().0 as usize] {
            LBool::Undef => LBool::Undef,
            LBool::True => LBool::from_bool(l.is_pos()),
            LBool::False => LBool::from_bool(!l.is_pos()),
        }
    }

    /// Value of a variable in the satisfying assignment (valid after `Sat`).
    pub fn value(&self, v: Var) -> bool {
        // Solves backtrack to the root before returning, so read the
        // snapshot taken at the moment of the `Sat` answer.
        match self.model.get(v.0 as usize) {
            Some(&m) => m == LBool::True,
            None => self.assigns[v.0 as usize] == LBool::True,
        }
    }

    /// The subset of the last solve's assumptions shown inconsistent with
    /// the clause set (valid after an `Unsat` answer from
    /// [`SatSolver::solve_under_assumptions`]). An empty slice means the
    /// clauses are unsatisfiable regardless of assumptions.
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.conflict_core
    }

    /// Add a clause. Returns `false` if the formula became trivially
    /// unsatisfiable (conflict at decision level 0).
    pub fn add_clause(&mut self, lits: Vec<Lit>) -> bool {
        self.add_clause_slice(&lits)
    }

    /// Add a clause from a borrowed slice — the allocation-free feed the
    /// incremental session uses to stream bit-blaster output straight
    /// into the arena. Returns `false` if the formula became trivially
    /// unsatisfiable (conflict at decision level 0).
    pub fn add_clause_slice(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return false;
        }
        // Normalize into the scratch buffer: drop duplicate and false
        // literals, detect tautologies and satisfied clauses. Clauses
        // are short (Tseitin output is 2-3 literals), so the quadratic
        // duplicate scan beats sorting an owned copy.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let mut ok = true;
        'lits: for &l in lits {
            match self.value_lit(l) {
                LBool::True => {
                    ok = false; // satisfied at level 0: drop the clause
                    break;
                }
                LBool::False => continue,
                LBool::Undef => {}
            }
            for &k in scratch.iter() {
                if k == l {
                    continue 'lits; // duplicate
                }
                if k == !l {
                    ok = false; // tautology
                    break 'lits;
                }
            }
            scratch.push(l);
        }
        if !ok {
            self.scratch = scratch;
            return true;
        }
        let result = match scratch.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(scratch[0], REASON_NONE);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                // On arena exhaustion the clause is NOT recorded, but the
                // latched error already blocks every future verdict, so
                // the dropped clause can never be observed.
                let _ = self.attach_clause(&scratch, false);
                true
            }
        };
        self.scratch = scratch;
        result
    }

    /// `None` when the clause arena is full: nothing is allocated, no
    /// watcher is pushed, and the capacity error is latched on the
    /// solver. Callers must not derive a verdict past a `None`.
    #[must_use]
    fn attach_clause(&mut self, lits: &[Lit], learnt: bool) -> Option<ClauseRef> {
        debug_assert!(lits.len() >= 2);
        let Some(cref) = self.db.alloc(lits, learnt, self.arena_cap) else {
            self.arena_error = Some(SolverError::ArenaExhausted {
                requested_words: self.db.data.len() as u64 + (HEADER_WORDS + lits.len()) as u64,
                cap_words: self.arena_cap,
            });
            return None;
        };
        let spill = self.config.spill_watchers;
        self.watches[(!lits[0]).index()].push(cref, lits[1], spill);
        self.watches[(!lits[1]).index()].push(cref, lits[0], spill);
        if learnt {
            self.stats.learnts += 1;
        }
        Some(cref)
    }

    /// Lower the clause-arena capacity (clamped to
    /// [`ARENA_CAP_WORDS`]). A test hook: forcing near-capacity growth
    /// with a tiny synthetic cap exercises the same refusal path the
    /// real `u32` ceiling would, without gigabytes of clauses.
    pub fn set_arena_cap_words(&mut self, cap: u32) {
        self.arena_cap = cap.min(ARENA_CAP_WORDS);
    }

    /// The latched capacity error, if the arena ever filled. Once set,
    /// [`SatSolver::solve_under_assumptions_abortable`] returns `None`
    /// without searching and the non-abortable entry points panic with
    /// the typed message instead of returning a possibly-unsound
    /// verdict.
    pub fn arena_error(&self) -> Option<&SolverError> {
        self.arena_error.as_ref()
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: ClauseRef) {
        let v = l.var().0 as usize;
        debug_assert_eq!(self.assigns[v], LBool::Undef);
        self.assigns[v] = LBool::from_bool(l.is_pos());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        let spill = self.config.spill_watchers;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut i = 0;
            let mut conflict = None;
            'watchers: while i < ws.len() {
                // Fast path: blocker already true. Only the watcher
                // array is touched until a clause actually needs work.
                let blocker = ws.blocker(i);
                if self.value_lit(blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let cref = ws.cref(i);
                if self.db.is_deleted(cref) {
                    ws.swap_remove(i);
                    continue;
                }
                // Make sure the false literal (!p) is at position 1.
                if self.db.lit(cref, 0) == !p {
                    self.db.swap_lits(cref, 0, 1);
                }
                debug_assert_eq!(self.db.lit(cref, 1), !p);
                let first = self.db.lit(cref, 0);
                if first != blocker && self.value_lit(first) == LBool::True {
                    ws.set_blocker(i, first);
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.db.len(cref);
                for k in 2..len {
                    let lk = self.db.lit(cref, k);
                    if self.value_lit(lk) != LBool::False {
                        self.db.swap_lits(cref, 1, k);
                        self.watches[(!lk).index()].push(cref, first, spill);
                        ws.swap_remove(i);
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting.
                if self.value_lit(first) == LBool::False {
                    // Conflict: keep remaining watchers, restore and bail.
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    break;
                } else {
                    self.unchecked_enqueue(first, cref);
                    i += 1;
                }
            }
            // Put back the (possibly shrunk) watcher list, preserving any
            // watchers that were appended to the fresh list during the scan
            // (can happen when a clause watches both p and !p's variable).
            let appended = std::mem::take(&mut self.watches[p.index()]);
            ws.append_from(&appended, spill);
            self.watches[p.index()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn var_bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.update(v, &self.activity);
    }

    fn var_decay(&mut self) {
        self.var_inc /= self.config.var_decay;
    }

    fn cla_bump(&mut self, cref: ClauseRef) {
        let a = self.db.activity(cref) + self.cla_inc;
        self.db.set_activity(cref, a);
        if a > 1e20 {
            let mut c = 0u32;
            while (c as usize) < self.db.data.len() {
                let scaled = self.db.activity(c) * 1e-20;
                self.db.set_activity(c, scaled);
                c = self.db.next(c);
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut cref = confl;
        let cur_level = self.decision_level();

        loop {
            self.cla_bump(cref);
            let start = usize::from(p.is_some());
            for k in start..self.db.len(cref) {
                let q = self.db.lit(cref, k);
                let v = q.var().0 as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.var_bump(v);
                    if self.level[v] >= cur_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next seen literal on the trail.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().0 as usize] {
                    break;
                }
            }
            let pl = self.trail[index];
            let v = pl.var().0 as usize;
            self.seen[v] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(pl);
                break;
            }
            cref = self.reason[v];
            debug_assert_ne!(cref, REASON_NONE);
            p = Some(pl);
        }
        learnt[0] = !p.unwrap();

        // Clause minimization: drop literals implied by the rest. Keep a
        // copy so the `seen` flags of *removed* literals are cleared too.
        let to_clear = learnt.clone();
        let mut j = 1;
        for i in 1..learnt.len() {
            let l = learnt[i];
            if !self.lit_redundant(l) {
                learnt[j] = l;
                j += 1;
            }
        }
        learnt.truncate(j);

        // Compute backtrack level = second-highest level in the clause.
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().0 as usize]
                    > self.level[learnt[max_i].var().0 as usize]
                {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().0 as usize]
        };

        // Clear the `seen` flags we set on clause literals.
        for &l in &to_clear {
            self.seen[l.var().0 as usize] = false;
        }
        (learnt, bt_level)
    }

    /// Simple (non-recursive) redundancy test: a literal is redundant if its
    /// reason clause exists and all the reason's other literals are already
    /// seen (i.e. already in the learnt clause) or at level 0.
    fn lit_redundant(&self, l: Lit) -> bool {
        let v = l.var().0 as usize;
        let r = self.reason[v];
        if r == REASON_NONE {
            return false;
        }
        (1..self.db.len(r)).all(|k| {
            let qv = self.db.lit(r, k).var().0 as usize;
            self.seen[qv] || self.level[qv] == 0
        })
    }

    /// An existing binary clause `{learnt[0], q}` (for some other
    /// `q` in the learnt clause) subsumes the clause about to be learnt
    /// and — because `q` is false after the backjump — can serve
    /// directly as the asserting reason. Binaries watch both their
    /// literals forever (a two-literal clause has no third literal to
    /// migrate to), so scanning `learnt[0]`'s watcher list finds every
    /// candidate without any auxiliary index on the clause-feed path.
    /// Returns the binary's cref with `learnt[0]` moved to position 0.
    fn subsuming_binary(&mut self, learnt: &[Lit]) -> Option<ClauseRef> {
        if !self.config.otf_subsume || learnt.len() < 3 || learnt.len() > 32 {
            return None;
        }
        let l0 = learnt[0];
        let ws = &self.watches[(!l0).index()];
        let mut found = None;
        for k in 0..ws.len() {
            let cref = ws.cref(k);
            if self.db.is_deleted(cref) || self.db.len(cref) != 2 {
                continue;
            }
            let (a, b) = (self.db.lit(cref, 0), self.db.lit(cref, 1));
            let other = if a == l0 {
                b
            } else if b == l0 {
                a
            } else {
                continue;
            };
            if learnt[1..].contains(&other) {
                found = Some(cref);
                break;
            }
        }
        let bref = found?;
        // Binary watch lists are symmetric in both literals, so swapping
        // positions keeps the watch invariant intact.
        if self.db.lit(bref, 0) != l0 {
            self.db.swap_lits(bref, 0, 1);
        }
        Some(bref)
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level as usize];
        for i in (bound..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().0 as usize;
            self.phase[v] = l.is_pos();
            self.assigns[v] = LBool::Undef;
            self.reason[v] = REASON_NONE;
            self.heap.insert(v, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.heap.pop(&self.activity) {
            if self.assigns[v] == LBool::Undef {
                return Some(Var(v as u32));
            }
        }
        None
    }

    /// Remove the less active half of the (non-binary, unlocked) learnt
    /// clauses — the in-search reduction, expressed as a cap.
    fn reduce_db(&mut self) {
        let mut long_learnts = 0u64;
        self.db.for_each_live(|c| {
            if self.db.is_learnt(c) && self.db.len(c) > 2 {
                long_learnts += 1;
            }
        });
        self.reduce_learnts_to(self.stats.learnts.saturating_sub(long_learnts / 2));
    }

    /// Shrink the learnt-clause database to at most `cap` clauses,
    /// deleting least-active learnts first (this one routine backs both
    /// the in-search reduction and the session-level GC, so the activity
    /// order and locked-clause rules cannot drift apart). Binary learnt
    /// clauses and clauses currently the reason for an assignment are
    /// kept, so the cap is a target, not a hard guarantee. Deletion
    /// tombstones the clause in the arena; when called at the root level
    /// with enough accumulated waste, the arena is compacted and the
    /// watcher lists rebuilt, so a capped long-lived session's memory
    /// stays proportional to its live clause set.
    pub fn reduce_learnts_to(&mut self, cap: u64) {
        if self.stats.learnts > cap {
            let mut learnt_refs: Vec<ClauseRef> = Vec::new();
            self.db.for_each_live(|c| {
                if self.db.is_learnt(c) && self.db.len(c) > 2 {
                    learnt_refs.push(c);
                }
            });
            learnt_refs.sort_by(|&a, &b| {
                self.db
                    .activity(a)
                    .partial_cmp(&self.db.activity(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for &c in &learnt_refs {
                if self.stats.learnts <= cap {
                    break;
                }
                let locked = (0..2).any(|k| {
                    let l = self.db.lit(c, k);
                    self.reason[l.var().0 as usize] == c && self.value_lit(l) == LBool::True
                });
                if locked {
                    continue;
                }
                self.db.delete(c);
                self.stats.learnts = self.stats.learnts.saturating_sub(1);
            }
        }
        // Reclaim tombstone space once it dominates; root level only,
        // since compaction rewrites the reason references.
        if self.decision_level() == 0 && self.db.wasted * 4 > self.db.data.len() as u64 {
            self.compact();
        }
    }

    /// Rebuild the arena without tombstones and the watcher lists from
    /// scratch. Root level only. Reasons of root-level assignments are
    /// dropped (they are never dereferenced: conflict analysis skips
    /// level-0 variables).
    fn compact(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        for &l in &self.trail {
            self.reason[l.var().0 as usize] = REASON_NONE;
        }
        let old = std::mem::take(&mut self.db);
        let mut live: Vec<ClauseRef> = Vec::new();
        old.for_each_live(|c| live.push(c));
        self.db.data.reserve(old.data.len() - old.wasted as usize);
        for w in &mut self.watches {
            w.clear();
        }
        let spill = self.config.spill_watchers;
        for c in live {
            let len = old.len(c);
            let start = c as usize + HEADER_WORDS;
            let lits: Vec<Lit> = old.data[start..start + len]
                .iter()
                .map(|&r| Lit(r))
                .collect();
            let learnt = old.is_learnt(c);
            let nc = self
                .db
                .alloc(&lits, learnt, ARENA_CAP_WORDS)
                .expect("compaction never grows the arena");
            self.db.set_activity(nc, old.activity(c));
            self.watches[(!lits[0]).index()].push(nc, lits[1], spill);
            self.watches[(!lits[1]).index()].push(nc, lits[0], spill);
        }
    }

    /// One inprocessing sweep over the clause database, between queries
    /// (root level only; no-op otherwise):
    ///
    /// 1. **Simplify** by the root-level assignment: clauses with a true
    ///    literal are deleted (this is what reclaims the clauses of
    ///    retracted activation groups), false literals are removed.
    /// 2. **Subsume / strengthen** long learnt clauses against the
    ///    binary-clause map (backward subsumption and binary
    ///    self-subsumption).
    /// 3. **Compact** the arena and rebuild the watcher lists.
    /// 4. **Vivify** the most active long learnt clauses under a
    ///    propagation budget: re-derive each clause by asserting the
    ///    negation of its literals one at a time; a conflict or implied
    ///    literal along the way proves a shorter clause.
    pub fn inprocess_sweep(&mut self) {
        if self.decision_level() != 0 || !self.ok {
            return;
        }
        self.stats.sweeps += 1;
        // Transient binary index for the subsumption passes, built once
        // per sweep (the feed path deliberately maintains no such index).
        let mut bin_map: HashMap<u64, ClauseRef> = HashMap::new();
        self.db.for_each_live(|c| {
            if self.db.len(c) == 2 {
                bin_map
                    .entry(pair_key(self.db.lit(c, 0), self.db.lit(c, 1)))
                    .or_insert(c);
            }
        });
        // Pass 1+2: mark deletions and rewrites.
        let mut rewrites: Vec<(ClauseRef, Vec<Lit>)> = Vec::new();
        let mut units: Vec<Lit> = Vec::new();
        let mut empty = false;
        let mut to_delete: Vec<ClauseRef> = Vec::new();
        let mut lits: Vec<Lit> = Vec::new();
        let end = self.db.data.len();
        let mut c = 0u32;
        while (c as usize) < end {
            let cref = c;
            c = self.db.next(cref);
            if self.db.is_deleted(cref) {
                continue;
            }
            let len = self.db.len(cref);
            lits.clear();
            let mut satisfied = false;
            for k in 0..len {
                let l = self.db.lit(cref, k);
                match self.value_lit(l) {
                    LBool::True => {
                        satisfied = true;
                        break;
                    }
                    LBool::False => continue,
                    LBool::Undef => lits.push(l),
                }
            }
            if satisfied {
                to_delete.push(cref);
                continue;
            }
            let learnt = self.db.is_learnt(cref);
            // Binary-map passes for long learnt clauses.
            if learnt && lits.len() >= 3 && lits.len() <= 32 {
                let mut subsumed = false;
                'pairs: for i in 0..lits.len() {
                    for j in (i + 1)..lits.len() {
                        if let Some(&bref) = bin_map.get(&pair_key(lits[i], lits[j])) {
                            if bref != cref && !self.db.is_deleted(bref) {
                                subsumed = true;
                                break 'pairs;
                            }
                        }
                    }
                }
                if subsumed {
                    self.stats.subsumed += 1;
                    to_delete.push(cref);
                    continue;
                }
                // Self-subsumption: a binary {!l, q} with q also in the
                // clause resolves away l.
                let mut i = 0;
                while i < lits.len() {
                    let l = lits[i];
                    let mut drop = false;
                    for (j, &q) in lits.iter().enumerate() {
                        if j == i {
                            continue;
                        }
                        if let Some(&bref) = bin_map.get(&pair_key(!l, q)) {
                            if !self.db.is_deleted(bref) {
                                drop = true;
                                break;
                            }
                        }
                    }
                    if drop {
                        lits.swap_remove(i);
                        self.stats.strengthened += 1;
                    } else {
                        i += 1;
                    }
                }
            }
            match lits.len().cmp(&len) {
                std::cmp::Ordering::Equal => {}
                _ => {
                    match lits.len() {
                        0 => empty = true,
                        1 => units.push(lits[0]),
                        _ => rewrites.push((cref, lits.clone())),
                    }
                    to_delete.push(cref);
                }
            }
        }
        for cref in to_delete {
            if self.db.is_learnt(cref) {
                self.stats.learnts = self.stats.learnts.saturating_sub(1);
            }
            self.db.delete(cref);
        }
        for (cref, new_lits) in rewrites {
            let learnt = self.db.is_learnt(cref);
            let act = self.db.activity(cref);
            match self.attach_clause(&new_lits, learnt) {
                Some(nc) => self.db.set_activity(nc, act),
                // Arena full mid-rewrite: the original clause is already
                // tombstoned, but the latched error blocks every future
                // verdict, so stop sweeping and bail out.
                None => return,
            }
        }
        if empty {
            self.ok = false;
            return;
        }
        // Pass 3: compact and rebuild watches.
        self.compact();
        for u in units {
            if self.value_lit(u) == LBool::False {
                self.ok = false;
                return;
            }
            if self.value_lit(u) == LBool::Undef {
                self.unchecked_enqueue(u, REASON_NONE);
            }
        }
        if self.propagate().is_some() {
            self.ok = false;
            return;
        }
        // Pass 4: vivification, under a propagation budget. Phases are
        // snapshotted so the probe assignments don't pollute phase
        // saving (keeps the subsequent search deterministic w.r.t. a
        // sweep-free run of the same query order).
        if self.config.viv_budget > 0 {
            self.vivify();
        }
    }

    fn vivify(&mut self) {
        let mut candidates: Vec<(ClauseRef, f32)> = Vec::new();
        self.db.for_each_live(|c| {
            let len = self.db.len(c);
            if self.db.is_learnt(c) && len >= 3 && len <= self.config.viv_max_len {
                candidates.push((c, self.db.activity(c)));
            }
        });
        candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        candidates.truncate(self.config.viv_max_clauses);
        if candidates.is_empty() {
            return;
        }
        let saved_phase = self.phase.clone();
        let saved = self.stats;
        let budget = self.config.viv_budget;
        let mut spent = 0u64;
        for (cref, _) in candidates {
            if spent >= budget || !self.ok {
                break;
            }
            if self.db.is_deleted(cref) {
                continue;
            }
            let len = self.db.len(cref);
            let lits: Vec<Lit> = (0..len).map(|k| self.db.lit(cref, k)).collect();
            let before = self.stats.propagations;
            let mut kept: Vec<Lit> = Vec::with_capacity(len);
            let mut changed = false;
            for &l in &lits {
                match self.value_lit(l) {
                    LBool::True => {
                        // (kept -> l) is implied: the clause shrinks to
                        // kept + l.
                        kept.push(l);
                        changed = true;
                        break;
                    }
                    LBool::False => {
                        // !l is implied by the kept prefix: drop l.
                        changed = true;
                        continue;
                    }
                    LBool::Undef => {
                        self.trail_lim.push(self.trail.len());
                        self.unchecked_enqueue(!l, REASON_NONE);
                        let confl = self.propagate().is_some();
                        kept.push(l);
                        if confl {
                            changed = kept.len() < lits.len();
                            break;
                        }
                    }
                }
            }
            self.cancel_until(0);
            spent += self.stats.propagations - before;
            if changed && kept.len() < lits.len() {
                self.db.delete(cref);
                self.stats.vivified += 1;
                match kept.len() {
                    0 => {
                        self.ok = false;
                    }
                    1 => {
                        self.stats.learnts = self.stats.learnts.saturating_sub(1);
                        match self.value_lit(kept[0]) {
                            LBool::False => self.ok = false,
                            LBool::True => {}
                            LBool::Undef => {
                                self.unchecked_enqueue(kept[0], REASON_NONE);
                                if self.propagate().is_some() {
                                    self.ok = false;
                                }
                            }
                        }
                    }
                    _ => {
                        let act = self.db.activity(cref);
                        let Some(nc) = self.attach_clause(&kept, true) else {
                            break; // arena full: latched, stop vivifying
                        };
                        // attach_clause counted a new learnt; the old one
                        // was deleted, so the net count is unchanged.
                        self.stats.learnts = self.stats.learnts.saturating_sub(1);
                        self.db.set_activity(nc, act);
                    }
                }
            }
        }
        // Vivification work is accounted separately so per-query deltas
        // (and differential stats tests) stay meaningful.
        let viv_props = self.stats.propagations - saved.propagations;
        self.stats.propagations = saved.propagations;
        self.stats.decisions = saved.decisions;
        self.stats.viv_propagations += viv_props;
        self.phase = saved_phase;
    }

    /// Solve the formula. Returns `Sat` or `Unsat`; on `Sat` the model is
    /// available through [`SatSolver::value`]. The solver backtracks to
    /// the root level afterwards, so clauses may be added and the solver
    /// re-queried (learnt clauses and activities are kept).
    pub fn solve(&mut self) -> SolveOutcome {
        self.solve_under_assumptions(&[])
    }

    /// Solve the formula under the given assumption literals: a model (if
    /// any) must make every assumption true. Assumptions are decided
    /// before any free decision, MiniSat-style, so the clause database —
    /// including everything learnt here — never depends on them and
    /// remains valid for later solves under different assumptions.
    ///
    /// On `Unsat` caused by the assumptions, the failing subset is
    /// available via [`SatSolver::failed_assumptions`]; if the clause set
    /// itself is unsatisfiable the core is empty and every later solve
    /// answers `Unsat` immediately.
    pub fn solve_under_assumptions(&mut self, assumptions: &[Lit]) -> SolveOutcome {
        match self.solve_under_assumptions_abortable(assumptions, None) {
            Some(outcome) => outcome,
            None => match self.arena_error() {
                Some(e) => panic!("SAT solver refused a verdict: {e}"),
                None => unreachable!("non-abortable solve cannot be aborted"),
            },
        }
    }

    /// [`SatSolver::solve_under_assumptions`] with a cooperative abort
    /// flag: when `abort` is set (by a racing portfolio sibling), the
    /// search unwinds to the root and returns `None`. All state stays
    /// consistent — clauses learnt before the abort are kept and the
    /// solver remains usable.
    ///
    /// Also returns `None` — before and after any search — once the
    /// clause arena has hit its capacity cap; the typed reason is then
    /// available via [`SatSolver::arena_error`].
    pub fn solve_under_assumptions_abortable(
        &mut self,
        assumptions: &[Lit],
        abort: Option<&AtomicBool>,
    ) -> Option<SolveOutcome> {
        debug_assert_eq!(self.decision_level(), 0);
        self.model.clear();
        self.conflict_core.clear();
        if self.arena_error.is_some() {
            // A past allocation failure may have dropped a clause; any
            // verdict from this instance would be untrustworthy.
            return None;
        }
        if !self.ok {
            return Some(SolveOutcome::Unsat);
        }
        self.max_learnts = (self.db.data.len() as f64 / 16.0).max(1000.0);
        let mut restart_idx = self.config.restart_offset;
        let mut conflicts_budget = self.config.restart_base * luby(restart_idx);
        let mut abort_check = 0u32;

        let outcome = 'search: loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    break 'search SolveOutcome::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.cancel_until(bt);
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], REASON_NONE);
                } else if let Some(bref) = self.subsuming_binary(&learnt) {
                    // On-the-fly binary subsumption: the binary clause
                    // both subsumes the would-be learnt clause and is
                    // asserting after the backjump, so learn nothing and
                    // use it as the reason directly.
                    self.stats.subsumed += 1;
                    self.unchecked_enqueue(learnt[0], bref);
                } else {
                    let asserting = learnt[0];
                    match self.attach_clause(&learnt, true) {
                        Some(cref) => self.unchecked_enqueue(asserting, cref),
                        None => {
                            // Arena full: the learnt clause cannot be
                            // attached, and the asserting literal has no
                            // reason without it. Unwind and refuse.
                            self.cancel_until(0);
                            return None;
                        }
                    }
                }
                self.var_decay();
                self.cla_inc *= 1.001;
                conflicts_budget = conflicts_budget.saturating_sub(1);
                abort_check += 1;
                if abort_check >= 64 {
                    abort_check = 0;
                    if let Some(flag) = abort {
                        if flag.load(Ordering::Relaxed) {
                            self.cancel_until(0);
                            return None;
                        }
                    }
                }
            } else {
                if conflicts_budget == 0 {
                    // Restart (assumptions are re-decided below).
                    self.stats.restarts += 1;
                    restart_idx += 1;
                    conflicts_budget = self.config.restart_base * luby(restart_idx);
                    self.cancel_until(0);
                    if let Some(flag) = abort {
                        if flag.load(Ordering::Relaxed) {
                            return None;
                        }
                    }
                }
                if self.stats.learnts as f64 > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= 1.3;
                }
                // Decide assumptions before any free decision.
                while (self.decision_level() as usize) < assumptions.len() {
                    let p = assumptions[self.decision_level() as usize];
                    match self.value_lit(p) {
                        LBool::True => {
                            // Already implied: open a dummy level so the
                            // level-to-assumption indexing stays aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            self.analyze_final(p);
                            break 'search SolveOutcome::Unsat;
                        }
                        LBool::Undef => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(p, REASON_NONE);
                            continue 'search; // propagate before the next one
                        }
                    }
                }
                match self.pick_branch_var() {
                    None => break 'search SolveOutcome::Sat,
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let phase = self.phase[v.0 as usize];
                        self.unchecked_enqueue(v.lit(phase), REASON_NONE);
                    }
                }
            }
        };
        if outcome == SolveOutcome::Sat {
            self.model = self.assigns.clone();
        }
        // Return to the root so the instance stays reusable: clauses can
        // be added and new (assumption) queries posed.
        self.cancel_until(0);
        Some(outcome)
    }

    /// Compute the failing-assumption core when assumption `p` is found
    /// false: walk the implication graph from `!p` back to the assumption
    /// decisions responsible. Every decision on the trail at this point
    /// is an assumption (assumptions are decided before free decisions,
    /// and we only get here while still enqueuing them).
    fn analyze_final(&mut self, p: Lit) {
        self.conflict_core.clear();
        self.conflict_core.push(p);
        if self.decision_level() == 0 {
            // `!p` is implied by the clauses alone; the core is `{p}`.
            self.conflict_core.sort();
            return;
        }
        self.seen[p.var().0 as usize] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().0 as usize;
            if !self.seen[v] {
                continue;
            }
            if self.reason[v] == REASON_NONE {
                debug_assert!(self.level[v] > 0);
                self.conflict_core.push(l);
            } else {
                let r = self.reason[v];
                for k in 1..self.db.len(r) {
                    let q = self.db.lit(r, k);
                    if self.level[q.var().0 as usize] > 0 {
                        self.seen[q.var().0 as usize] = true;
                    }
                }
            }
            self.seen[v] = false;
        }
        self.seen[p.var().0 as usize] = false;
        self.conflict_core.sort();
        self.conflict_core.dedup();
    }
}

/// The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
fn luby(x: u64) -> u64 {
    // Find the finite subsequence that contains index x and its size.
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut x = x;
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

/// Indexed binary max-heap over variable activities.
#[derive(Clone)]
struct OrderHeap {
    heap: Vec<usize>,
    /// Position of each variable in `heap`, or `usize::MAX` if absent.
    pos: Vec<usize>,
}

impl OrderHeap {
    fn new(n: usize) -> Self {
        OrderHeap {
            heap: (0..n).collect(),
            pos: (0..n).collect(),
        }
    }

    fn contains(&self, v: usize) -> bool {
        self.pos[v] != usize::MAX
    }

    /// Register a brand-new variable (index = current table size) and
    /// queue it for decision. Zero activity keeps the heap ordered with
    /// the new entry at the bottom.
    fn push_new(&mut self, v: usize) {
        debug_assert_eq!(v, self.pos.len());
        self.pos.push(self.heap.len());
        self.heap.push(v);
    }

    /// Restore the heap property after a batch of out-of-band activity
    /// writes (seeded jitter).
    fn heapify(&mut self, act: &[f64]) {
        for i in (0..self.heap.len() / 2).rev() {
            self.sift_down(i, act);
        }
    }

    fn insert(&mut self, v: usize, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn update(&mut self, v: usize, act: &[f64]) {
        if self.contains(v) {
            self.sift_up(self.pos[v], act);
        }
    }

    fn pop(&mut self, act: &[f64]) -> Option<usize> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().unwrap();
        self.pos[top] = usize::MAX;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i]] <= act[self.heap[parent]] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l]] > act[self.heap[best]] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r]] > act[self.heap[best]] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i]] = i;
        self.pos[self.heap[j]] = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Cnf;

    fn solve_clauses(num_vars: u32, clauses: &[&[i32]]) -> SolveOutcome {
        let mut s = SatSolver::new(num_vars);
        for c in clauses {
            let lits: Vec<Lit> = c
                .iter()
                .map(|&x| {
                    let v = Var(x.unsigned_abs() - 1);
                    v.lit(x > 0)
                })
                .collect();
            if !s.add_clause(lits) {
                return SolveOutcome::Unsat;
            }
        }
        s.solve()
    }

    #[test]
    fn trivially_sat() {
        assert_eq!(solve_clauses(1, &[&[1]]), SolveOutcome::Sat);
    }

    #[test]
    fn trivially_unsat() {
        assert_eq!(solve_clauses(1, &[&[1], &[-1]]), SolveOutcome::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        assert_eq!(solve_clauses(3, &[]), SolveOutcome::Sat);
    }

    #[test]
    fn simple_implication_chain_unsat() {
        // a, a->b, b->c, !c
        assert_eq!(
            solve_clauses(3, &[&[1], &[-1, 2], &[-2, 3], &[-3]]),
            SolveOutcome::Unsat
        );
    }

    #[test]
    fn xor_chain_sat() {
        // (a xor b), (b xor c): satisfiable
        assert_eq!(
            solve_clauses(3, &[&[1, 2], &[-1, -2], &[2, 3], &[-2, -3]]),
            SolveOutcome::Sat
        );
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p_ij: pigeon i in hole j. vars: p11=1,p12=2,p21=3,p22=4,p31=5,p32=6
        let clauses: &[&[i32]] = &[
            &[1, 2],
            &[3, 4],
            &[5, 6],
            // no two pigeons share hole 1
            &[-1, -3],
            &[-1, -5],
            &[-3, -5],
            // no two pigeons share hole 2
            &[-2, -4],
            &[-2, -6],
            &[-4, -6],
        ];
        assert_eq!(solve_clauses(6, clauses), SolveOutcome::Unsat);
    }

    #[test]
    fn arena_cap_latches_typed_error_instead_of_wrapping() {
        // A tiny synthetic cap forces the same refusal path the real
        // u32 ceiling would. Cap = 8 words: one ternary clause (2
        // header + 3 lits = 5 words) fits, the next does not.
        let mut s = SatSolver::new(6);
        s.set_arena_cap_words(8);
        assert!(s.add_clause(vec![Var(0).pos(), Var(1).pos(), Var(2).pos()]));
        assert!(s.arena_error().is_none());
        assert!(s.add_clause(vec![Var(3).pos(), Var(4).pos(), Var(5).pos()]));
        let err = s.arena_error().cloned().expect("cap must latch");
        match err {
            SolverError::ArenaExhausted {
                requested_words,
                cap_words,
            } => {
                assert_eq!(cap_words, 8);
                assert_eq!(requested_words, 10); // 5 live + 5 requested
            }
        }
        // Every further solve refuses a verdict; state stays consistent.
        assert_eq!(s.solve_under_assumptions_abortable(&[], None), None);
        assert_eq!(
            s.solve_under_assumptions_abortable(&[Var(0).pos()], None),
            None
        );
        assert!(s.arena_error().is_some());
    }

    #[test]
    #[should_panic(expected = "clause arena exhausted")]
    fn arena_cap_panics_typed_on_non_abortable_entry() {
        let mut s = SatSolver::new(4);
        s.set_arena_cap_words(5);
        assert!(s.add_clause(vec![Var(0).pos(), Var(1).pos()]));
        assert!(s.add_clause(vec![Var(2).pos(), Var(3).pos()]));
        let _ = s.solve();
    }

    #[test]
    fn arena_cap_learnt_clause_refuses_mid_search() {
        // Leave room for the original clauses but nothing else, then
        // pose a query that must learn: the learn-path allocation fails
        // and the solve refuses rather than mis-attach.
        let clauses: &[&[i32]] = &[
            &[1, 2],
            &[3, 4],
            &[5, 6],
            &[-1, -3],
            &[-1, -5],
            &[-3, -5],
            &[-2, -4],
            &[-2, -6],
            &[-4, -6],
        ];
        let mut s = SatSolver::new(6);
        let mut words = 0u32;
        for c in clauses {
            words += (HEADER_WORDS + c.len()) as u32;
            let lits: Vec<Lit> = c
                .iter()
                .map(|&x| Var(x.unsigned_abs() - 1).lit(x > 0))
                .collect();
            assert!(s.add_clause(lits));
        }
        s.set_arena_cap_words(words); // exactly full: no learnt fits
        let out = s.solve_under_assumptions_abortable(&[], None);
        if out.is_none() {
            assert!(matches!(
                s.arena_error(),
                Some(SolverError::ArenaExhausted { .. })
            ));
        } else {
            // The solver may finish the pigeonhole proof through
            // binary subsumption without attaching a long learnt; the
            // verdict must then be the correct one.
            assert_eq!(out, Some(SolveOutcome::Unsat));
        }
    }

    #[test]
    fn model_satisfies_formula() {
        let mut cnf = Cnf::new();
        let vars: Vec<Var> = (0..8).map(|_| cnf.fresh_var()).collect();
        // Random-ish structured formula.
        cnf.add_clause(vec![vars[0].pos(), vars[1].neg(), vars[2].pos()]);
        cnf.add_clause(vec![vars[3].neg(), vars[4].pos()]);
        cnf.add_clause(vec![vars[5].pos(), vars[6].pos(), vars[7].neg()]);
        cnf.add_clause(vec![vars[0].neg(), vars[3].pos()]);
        cnf.add_clause(vec![vars[2].neg(), vars[5].neg()]);
        let mut s = SatSolver::from_cnf(&cnf);
        assert_eq!(s.solve(), SolveOutcome::Sat);
        let assignment: Vec<bool> = vars.iter().map(|&v| s.value(v)).collect();
        assert!(cnf.eval(&assignment));
    }

    #[test]
    fn luby_sequence_prefix() {
        let expect = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        // (a \/ a) dedups to the unit clause (a); (a \/ !a) is dropped as a
        // tautology; then (!a) conflicts at level 0 -> Unsat.
        let mut s = SatSolver::new(1);
        assert!(s.add_clause(vec![Var(0).pos(), Var(0).pos()]));
        assert!(s.add_clause(vec![Var(0).pos(), Var(0).neg()]));
        assert!(!s.add_clause(vec![Var(0).neg()]));
        assert_eq!(s.solve(), SolveOutcome::Unsat);

        // Tautology alone stays satisfiable either way.
        let mut s2 = SatSolver::new(2);
        assert!(s2.add_clause(vec![Var(0).pos(), Var(0).neg()]));
        assert!(s2.add_clause(vec![Var(1).neg()]));
        assert_eq!(s2.solve(), SolveOutcome::Sat);
        assert!(!s2.value(Var(1)));
    }

    #[test]
    fn assumptions_flip_outcomes_on_one_instance() {
        // (a -> b), (b -> c): solve the same instance under different
        // assumption sets without rebuilding anything.
        let mut s = SatSolver::new(3);
        let (a, b, c) = (Var(0), Var(1), Var(2));
        assert!(s.add_clause(vec![a.neg(), b.pos()]));
        assert!(s.add_clause(vec![b.neg(), c.pos()]));
        assert_eq!(
            s.solve_under_assumptions(&[a.pos(), c.neg()]),
            SolveOutcome::Unsat
        );
        let core = s.failed_assumptions().to_vec();
        assert!(core.contains(&a.pos()) && core.contains(&c.neg()));
        // Same instance, satisfiable assumptions; model respects them.
        assert_eq!(
            s.solve_under_assumptions(&[a.pos(), c.pos()]),
            SolveOutcome::Sat
        );
        assert!(s.value(a) && s.value(b) && s.value(c));
        // And with no assumptions it is still satisfiable.
        assert_eq!(s.solve(), SolveOutcome::Sat);
    }

    #[test]
    fn failed_assumption_core_is_minimal_here() {
        // x1..x4 free; clause (!x1 \/ !x2). Assume all four positively:
        // the core must mention only x1 and x2.
        let mut s = SatSolver::new(4);
        assert!(s.add_clause(vec![Var(0).neg(), Var(1).neg()]));
        let assumptions: Vec<Lit> = (0..4).map(|i| Var(i).pos()).collect();
        assert_eq!(s.solve_under_assumptions(&assumptions), SolveOutcome::Unsat);
        let core = s.failed_assumptions().to_vec();
        assert!(core.contains(&Var(0).pos()) && core.contains(&Var(1).pos()));
        assert!(!core.contains(&Var(2).pos()) && !core.contains(&Var(3).pos()));
        // The core itself must be jointly unsatisfiable.
        let mut s2 = SatSolver::new(4);
        assert!(s2.add_clause(vec![Var(0).neg(), Var(1).neg()]));
        assert_eq!(s2.solve_under_assumptions(&core), SolveOutcome::Unsat);
    }

    #[test]
    fn base_unsat_yields_empty_core() {
        let mut s = SatSolver::new(2);
        assert!(s.add_clause(vec![Var(0).pos()]));
        assert!(!s.add_clause(vec![Var(0).neg()]));
        assert_eq!(
            s.solve_under_assumptions(&[Var(1).pos()]),
            SolveOutcome::Unsat
        );
        assert!(s.failed_assumptions().is_empty());
    }

    #[test]
    fn clauses_added_between_solves() {
        // Incremental use: solve, learn the answer, constrain, solve again.
        let mut s = SatSolver::new(3);
        assert!(s.add_clause(vec![Var(0).pos(), Var(1).pos()]));
        assert_eq!(s.solve(), SolveOutcome::Sat);
        assert!(s.add_clause(vec![Var(0).neg()]));
        assert_eq!(s.solve(), SolveOutcome::Sat);
        assert!(s.value(Var(1)));
        assert!(!s.add_clause(vec![Var(1).neg()]) || s.solve() == SolveOutcome::Unsat);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
    }

    #[test]
    fn variables_grow_between_solves() {
        let mut s = SatSolver::new(1);
        assert!(s.add_clause(vec![Var(0).pos()]));
        assert_eq!(s.solve(), SolveOutcome::Sat);
        s.ensure_num_vars(3);
        assert_eq!(s.num_vars(), 3);
        assert!(s.add_clause(vec![Var(0).neg(), Var(2).pos()]));
        assert_eq!(s.solve(), SolveOutcome::Sat);
        assert!(s.value(Var(0)) && s.value(Var(2)));
    }

    fn pigeonhole(pigeons: u32, holes: u32) -> SatSolver {
        let var = |p: u32, h: u32| Var(p * holes + h);
        let mut s = SatSolver::new(pigeons * holes);
        for p in 0..pigeons {
            assert!(s.add_clause((0..holes).map(|h| var(p, h).pos()).collect()));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    assert!(s.add_clause(vec![var(p1, h).neg(), var(p2, h).neg()]));
                }
            }
        }
        s
    }

    #[test]
    fn reduce_learnts_to_bounds_the_database() {
        // A formula hard enough to learn from: pigeonhole 4 into 3.
        let mut s = pigeonhole(4, 3);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        // Whatever was learnt, the GC caps it (binary learnts may stay).
        s.reduce_learnts_to(0);
        assert_eq!(
            s.db_stats().live_long_learnts,
            0,
            "non-binary learnts must be GCed"
        );
    }

    #[test]
    fn at_most_one_constraints() {
        // Exactly-one over 4 vars, forced to var 2.
        let mut clauses: Vec<Vec<i32>> = vec![vec![1, 2, 3, 4]];
        for i in 1..=4 {
            for j in (i + 1)..=4 {
                clauses.push(vec![-i, -j]);
            }
        }
        clauses.push(vec![-1]);
        clauses.push(vec![-3]);
        clauses.push(vec![-4]);
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = SatSolver::new(4);
        for c in &refs {
            let lits: Vec<Lit> = c
                .iter()
                .map(|&x| Var(x.unsigned_abs() - 1).lit(x > 0))
                .collect();
            assert!(s.add_clause(lits));
        }
        assert_eq!(s.solve(), SolveOutcome::Sat);
        assert!(s.value(Var(1)));
    }

    #[test]
    fn plain_and_default_configs_agree() {
        // The inprocessing features must not change verdicts.
        let mut a = pigeonhole(5, 4);
        let mut b = SatSolver::with_config(5 * 4, SolverConfig::plain());
        // Rebuild the same formula into b.
        let var = |p: u32, h: u32| Var(p * 4 + h);
        for p in 0..5u32 {
            assert!(b.add_clause((0..4).map(|h| var(p, h).pos()).collect()));
        }
        for h in 0..4u32 {
            for p1 in 0..5 {
                for p2 in (p1 + 1)..5 {
                    assert!(b.add_clause(vec![var(p1, h).neg(), var(p2, h).neg()]));
                }
            }
        }
        assert_eq!(a.solve(), b.solve());
    }

    #[test]
    fn inprocess_sweep_reclaims_satisfied_clauses() {
        let mut s = SatSolver::new(4);
        assert!(s.add_clause(vec![Var(0).pos(), Var(1).pos(), Var(2).pos()]));
        assert!(s.add_clause(vec![Var(0).neg(), Var(3).pos(), Var(2).pos()]));
        let before = s.db_stats();
        assert_eq!(before.live_clauses, 2);
        // Asserting v2 satisfies both clauses; the sweep must drop them
        // and compact the arena to nothing.
        assert!(s.add_clause(vec![Var(2).pos()]));
        s.inprocess_sweep();
        let after = s.db_stats();
        assert_eq!(after.live_clauses, 0);
        assert_eq!(after.arena_words, 0);
        assert_eq!(after.watcher_entries, 0);
        assert_eq!(s.solve(), SolveOutcome::Sat);
        assert!(s.value(Var(2)));
    }

    #[test]
    fn inprocess_sweep_strengthens_by_root_assignment() {
        let mut s = SatSolver::new(4);
        assert!(s.add_clause(vec![Var(0).pos(), Var(1).pos(), Var(2).pos()]));
        assert!(s.add_clause(vec![Var(0).pos()])); // does not touch the ternary
        assert!(s.add_clause(vec![Var(1).neg()])); // falsifies v1 in the ternary
        s.inprocess_sweep();
        let d = s.db_stats();
        // The ternary shrank to (v0 \/ v2)... which is satisfied at root
        // by v0 — so it must have been deleted outright.
        assert_eq!(d.live_clauses, 0);
        assert_eq!(s.solve(), SolveOutcome::Sat);
        assert!(s.value(Var(0)) && !s.value(Var(1)));
    }

    #[test]
    fn sweep_preserves_verdicts_on_unsat_instance() {
        let mut s = pigeonhole(5, 4);
        s.inprocess_sweep();
        assert_eq!(s.solve(), SolveOutcome::Unsat);
    }

    #[test]
    fn sweep_between_assumption_queries_preserves_answers() {
        let mut s = SatSolver::new(3);
        let (a, b, c) = (Var(0), Var(1), Var(2));
        assert!(s.add_clause(vec![a.neg(), b.pos()]));
        assert!(s.add_clause(vec![b.neg(), c.pos()]));
        assert_eq!(
            s.solve_under_assumptions(&[a.pos(), c.neg()]),
            SolveOutcome::Unsat
        );
        s.inprocess_sweep();
        assert_eq!(
            s.solve_under_assumptions(&[a.pos(), c.neg()]),
            SolveOutcome::Unsat
        );
        let core = s.failed_assumptions().to_vec();
        assert!(core.contains(&a.pos()) && core.contains(&c.neg()));
        assert_eq!(
            s.solve_under_assumptions(&[a.pos(), c.pos()]),
            SolveOutcome::Sat
        );
    }

    #[test]
    fn jittered_configs_agree_on_verdicts() {
        for variant in 0..4usize {
            let cfg = SolverConfig::default().jittered(variant, 0xfeed);
            let mut s = SatSolver::with_config(5 * 4, cfg);
            let var = |p: u32, h: u32| Var(p * 4 + h);
            for p in 0..5u32 {
                assert!(s.add_clause((0..4).map(|h| var(p, h).pos()).collect()));
            }
            for h in 0..4u32 {
                for p1 in 0..5 {
                    for p2 in (p1 + 1)..5 {
                        assert!(s.add_clause(vec![var(p1, h).neg(), var(p2, h).neg()]));
                    }
                }
            }
            assert_eq!(s.solve(), SolveOutcome::Unsat, "variant {variant}");
        }
    }

    #[test]
    fn abort_flag_cancels_search() {
        let mut s = pigeonhole(8, 7);
        let abort = AtomicBool::new(true); // pre-set: abort at first check
        let out = s.solve_under_assumptions_abortable(&[], Some(&abort));
        assert_eq!(out, None);
        // Solver remains usable after the abort.
        assert_eq!(s.solve(), SolveOutcome::Unsat);
    }

    #[test]
    fn clone_races_to_the_same_verdict() {
        let mut a = pigeonhole(6, 5);
        let mut b = a.clone();
        b.set_config(SolverConfig::default().jittered(1, 42));
        assert_eq!(a.solve(), SolveOutcome::Unsat);
        assert_eq!(b.solve(), SolveOutcome::Unsat);
    }

    #[test]
    fn compaction_preserves_model_queries() {
        let mut s = SatSolver::new(6);
        assert!(s.add_clause(vec![Var(0).pos(), Var(1).pos()]));
        assert!(s.add_clause(vec![Var(2).pos(), Var(3).pos(), Var(4).pos()]));
        assert!(s.add_clause(vec![Var(2).neg(), Var(5).pos()]));
        assert_eq!(s.solve(), SolveOutcome::Sat);
        s.inprocess_sweep();
        assert_eq!(s.solve(), SolveOutcome::Sat);
        // Model still satisfies the original formula.
        assert!(s.value(Var(0)) || s.value(Var(1)));
        assert!(s.value(Var(2)) || s.value(Var(3)) || s.value(Var(4)));
        assert!(!s.value(Var(2)) || s.value(Var(5)));
    }
}
