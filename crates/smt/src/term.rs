//! Hash-consed term DAG for quantifier-free boolean + bitvector formulas.
//!
//! Terms are created through [`TermPool`] smart constructors, which apply
//! cheap local rewrites (constant folding, `not not x -> x`, flattening of
//! nested conjunctions/disjunctions, absorption of neutral elements). The
//! pool guarantees structural sharing: building the same term twice returns
//! the same [`TermId`], which keeps the bit-blasted CNF small when the same
//! sub-formula (e.g. a prefix-list match) appears in many checks.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a term inside a [`TermPool`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl fmt::Debug for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The sort (type) of a term.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Sort {
    /// A boolean.
    Bool,
    /// A bitvector of the given width (1..=64 bits).
    BitVec(u32),
}

impl Sort {
    /// Width of a bitvector sort; panics for `Bool`.
    pub fn width(self) -> u32 {
        match self {
            Sort::BitVec(w) => w,
            Sort::Bool => panic!("Sort::width called on Bool"),
        }
    }
}

/// A term node. Children are [`TermId`]s into the owning pool.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Term {
    /// Boolean constant `true`.
    True,
    /// Boolean constant `false`.
    False,
    /// Free boolean variable (index into the pool's variable-name table).
    BoolVar(u32),
    /// Logical negation.
    Not(TermId),
    /// N-ary conjunction (flattened, at least 2 children).
    And(Vec<TermId>),
    /// N-ary disjunction (flattened, at least 2 children).
    Or(Vec<TermId>),
    /// If-then-else; branches may be booleans or same-width bitvectors.
    Ite(TermId, TermId, TermId),
    /// Bitvector constant (`value` is truncated to `width` bits).
    BvConst { width: u32, value: u64 },
    /// Free bitvector variable (index into variable-name table).
    BvVar { width: u32, name: u32 },
    /// Bitvector equality (produces a boolean).
    BvEq(TermId, TermId),
    /// Unsigned less-than (produces a boolean).
    BvUlt(TermId, TermId),
    /// Unsigned less-or-equal (produces a boolean).
    BvUle(TermId, TermId),
    /// Bitwise and.
    BvAnd(TermId, TermId),
    /// Bitwise or.
    BvOr(TermId, TermId),
    /// Bitwise xor.
    BvXor(TermId, TermId),
    /// Bitwise complement.
    BvNot(TermId),
    /// Modular addition.
    BvAdd(TermId, TermId),
    /// Extract bits `[hi..=lo]` (width = hi - lo + 1).
    BvExtract { hi: u32, lo: u32, arg: TermId },
    /// Logical shift right by a constant amount.
    BvLshrConst { arg: TermId, amount: u32 },
}

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Arena of hash-consed terms plus variable name tables.
#[derive(Clone, Debug, Default)]
pub struct TermPool {
    terms: Vec<Term>,
    sorts: Vec<Sort>,
    intern: HashMap<Term, TermId>,
    var_names: Vec<String>,
    bool_vars: Vec<TermId>,
    bv_vars: Vec<TermId>,
}

impl TermPool {
    /// Create an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct terms created so far.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if no terms have been created.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// All free boolean variables created so far.
    pub fn bool_vars(&self) -> &[TermId] {
        &self.bool_vars
    }

    /// All free bitvector variables created so far.
    pub fn bv_vars(&self) -> &[TermId] {
        &self.bv_vars
    }

    /// Look up a term node.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.0 as usize]
    }

    /// The sort of a term.
    pub fn sort(&self, id: TermId) -> Sort {
        self.sorts[id.0 as usize]
    }

    /// The user-supplied name of a variable term, if it is one.
    pub fn var_name(&self, id: TermId) -> Option<&str> {
        match self.term(id) {
            Term::BoolVar(n) | Term::BvVar { name: n, .. } => Some(&self.var_names[*n as usize]),
            _ => None,
        }
    }

    fn intern(&mut self, t: Term, sort: Sort) -> TermId {
        if let Some(&id) = self.intern.get(&t) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(t.clone());
        self.sorts.push(sort);
        self.intern.insert(t, id);
        id
    }

    // ---------------------------------------------------------------------
    // Boolean constructors
    // ---------------------------------------------------------------------

    /// The constant `true`.
    pub fn tru(&mut self) -> TermId {
        self.intern(Term::True, Sort::Bool)
    }

    /// The constant `false`.
    pub fn fls(&mut self) -> TermId {
        self.intern(Term::False, Sort::Bool)
    }

    /// A boolean constant.
    pub fn bool_const(&mut self, b: bool) -> TermId {
        if b {
            self.tru()
        } else {
            self.fls()
        }
    }

    /// A fresh-or-existing named boolean variable. Two calls with the same
    /// name return the same variable.
    pub fn bool_var(&mut self, name: &str) -> TermId {
        if let Some(id) = self.find_var(name) {
            assert_eq!(
                self.sort(id),
                Sort::Bool,
                "variable {name} redeclared at a different sort"
            );
            return id;
        }
        let n = self.var_names.len() as u32;
        self.var_names.push(name.to_string());
        let id = self.intern(Term::BoolVar(n), Sort::Bool);
        self.bool_vars.push(id);
        id
    }

    fn find_var(&self, name: &str) -> Option<TermId> {
        // Linear scan over variable ids; variable counts per check are small
        // (a few hundred), and this is only hit at construction time.
        self.bool_vars
            .iter()
            .chain(self.bv_vars.iter())
            .copied()
            .find(|&id| self.var_name(id) == Some(name))
    }

    /// Negation, with `not not x -> x` and constant folding.
    pub fn not(&mut self, a: TermId) -> TermId {
        match self.term(a) {
            Term::True => self.fls(),
            Term::False => self.tru(),
            Term::Not(inner) => *inner,
            _ => self.intern(Term::Not(a), Sort::Bool),
        }
    }

    /// N-ary conjunction with flattening, deduplication and short-circuiting.
    pub fn and(&mut self, parts: &[TermId]) -> TermId {
        let mut flat: Vec<TermId> = Vec::with_capacity(parts.len());
        for &p in parts {
            match self.term(p) {
                Term::True => {}
                Term::False => return self.fls(),
                Term::And(children) => flat.extend(children.iter().copied()),
                _ => flat.push(p),
            }
        }
        flat.sort();
        flat.dedup();
        // x /\ !x -> false
        for &t in &flat {
            if let Term::Not(inner) = self.term(t) {
                if flat.binary_search(inner).is_ok() {
                    return self.fls();
                }
            }
        }
        match flat.len() {
            0 => self.tru(),
            1 => flat[0],
            _ => self.intern(Term::And(flat), Sort::Bool),
        }
    }

    /// Binary conjunction.
    pub fn and2(&mut self, a: TermId, b: TermId) -> TermId {
        self.and(&[a, b])
    }

    /// N-ary disjunction with flattening, deduplication and short-circuiting.
    pub fn or(&mut self, parts: &[TermId]) -> TermId {
        let mut flat: Vec<TermId> = Vec::with_capacity(parts.len());
        for &p in parts {
            match self.term(p) {
                Term::False => {}
                Term::True => return self.tru(),
                Term::Or(children) => flat.extend(children.iter().copied()),
                _ => flat.push(p),
            }
        }
        flat.sort();
        flat.dedup();
        for &t in &flat {
            if let Term::Not(inner) = self.term(t) {
                if flat.binary_search(inner).is_ok() {
                    return self.tru();
                }
            }
        }
        match flat.len() {
            0 => self.fls(),
            1 => flat[0],
            _ => self.intern(Term::Or(flat), Sort::Bool),
        }
    }

    /// Binary disjunction.
    pub fn or2(&mut self, a: TermId, b: TermId) -> TermId {
        self.or(&[a, b])
    }

    /// Implication `a => b`, encoded as `!a \/ b`.
    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        let na = self.not(a);
        self.or2(na, b)
    }

    /// Bi-implication `a <=> b`.
    pub fn iff(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            return self.tru();
        }
        match (self.term(a).clone(), self.term(b).clone()) {
            (Term::True, _) => b,
            (_, Term::True) => a,
            (Term::False, _) => self.not(b),
            (_, Term::False) => self.not(a),
            _ => {
                let ab = self.implies(a, b);
                let ba = self.implies(b, a);
                self.and2(ab, ba)
            }
        }
    }

    /// If-then-else over booleans or equal-width bitvectors.
    pub fn ite(&mut self, cond: TermId, then: TermId, els: TermId) -> TermId {
        debug_assert_eq!(self.sort(then), self.sort(els), "ite branch sorts differ");
        match self.term(cond) {
            Term::True => return then,
            Term::False => return els,
            _ => {}
        }
        if then == els {
            return then;
        }
        let sort = self.sort(then);
        if sort == Sort::Bool {
            // (ite c t e) == (c /\ t) \/ (!c /\ e); keeping booleans in
            // and/or form lets later simplifications fire.
            let ct = self.and2(cond, then);
            let nc = self.not(cond);
            let ce = self.and2(nc, els);
            return self.or2(ct, ce);
        }
        self.intern(Term::Ite(cond, then, els), sort)
    }

    // ---------------------------------------------------------------------
    // Bitvector constructors
    // ---------------------------------------------------------------------

    /// A bitvector constant; `value` is truncated to `width` bits.
    pub fn bv_const(&mut self, value: u64, width: u32) -> TermId {
        assert!((1..=64).contains(&width), "bitvector width must be 1..=64");
        self.intern(
            Term::BvConst {
                width,
                value: value & mask(width),
            },
            Sort::BitVec(width),
        )
    }

    /// A fresh-or-existing named bitvector variable.
    pub fn bv_var(&mut self, name: &str, width: u32) -> TermId {
        assert!((1..=64).contains(&width), "bitvector width must be 1..=64");
        if let Some(id) = self.find_var(name) {
            assert_eq!(
                self.sort(id),
                Sort::BitVec(width),
                "variable {name} redeclared at a different sort"
            );
            return id;
        }
        let n = self.var_names.len() as u32;
        self.var_names.push(name.to_string());
        let id = self.intern(Term::BvVar { width, name: n }, Sort::BitVec(width));
        self.bv_vars.push(id);
        id
    }

    fn bv_value(&self, id: TermId) -> Option<u64> {
        match self.term(id) {
            Term::BvConst { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// Bitvector equality.
    pub fn bv_eq(&mut self, a: TermId, b: TermId) -> TermId {
        debug_assert_eq!(self.sort(a), self.sort(b));
        if a == b {
            return self.tru();
        }
        if let (Some(x), Some(y)) = (self.bv_value(a), self.bv_value(b)) {
            return self.bool_const(x == y);
        }
        // Canonical argument order improves sharing.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern(Term::BvEq(a, b), Sort::Bool)
    }

    /// Unsigned less-than.
    pub fn bv_ult(&mut self, a: TermId, b: TermId) -> TermId {
        debug_assert_eq!(self.sort(a), self.sort(b));
        if a == b {
            return self.fls();
        }
        if let (Some(x), Some(y)) = (self.bv_value(a), self.bv_value(b)) {
            return self.bool_const(x < y);
        }
        self.intern(Term::BvUlt(a, b), Sort::Bool)
    }

    /// Unsigned less-or-equal.
    pub fn bv_ule(&mut self, a: TermId, b: TermId) -> TermId {
        debug_assert_eq!(self.sort(a), self.sort(b));
        if a == b {
            return self.tru();
        }
        if let (Some(x), Some(y)) = (self.bv_value(a), self.bv_value(b)) {
            return self.bool_const(x <= y);
        }
        self.intern(Term::BvUle(a, b), Sort::Bool)
    }

    /// Unsigned greater-or-equal (`a >= b`).
    pub fn bv_uge(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_ule(b, a)
    }

    /// Unsigned greater-than (`a > b`).
    pub fn bv_ugt(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_ult(b, a)
    }

    /// Bitwise and.
    pub fn bv_and(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.sort(a).width();
        debug_assert_eq!(self.sort(b).width(), w);
        if let (Some(x), Some(y)) = (self.bv_value(a), self.bv_value(b)) {
            return self.bv_const(x & y, w);
        }
        self.intern(Term::BvAnd(a, b), Sort::BitVec(w))
    }

    /// Bitwise or.
    pub fn bv_or(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.sort(a).width();
        debug_assert_eq!(self.sort(b).width(), w);
        if let (Some(x), Some(y)) = (self.bv_value(a), self.bv_value(b)) {
            return self.bv_const(x | y, w);
        }
        self.intern(Term::BvOr(a, b), Sort::BitVec(w))
    }

    /// Bitwise xor.
    pub fn bv_xor(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.sort(a).width();
        debug_assert_eq!(self.sort(b).width(), w);
        if let (Some(x), Some(y)) = (self.bv_value(a), self.bv_value(b)) {
            return self.bv_const(x ^ y, w);
        }
        self.intern(Term::BvXor(a, b), Sort::BitVec(w))
    }

    /// Bitwise complement.
    pub fn bv_not(&mut self, a: TermId) -> TermId {
        let w = self.sort(a).width();
        if let Some(x) = self.bv_value(a) {
            return self.bv_const(!x, w);
        }
        self.intern(Term::BvNot(a), Sort::BitVec(w))
    }

    /// Modular addition.
    pub fn bv_add(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.sort(a).width();
        debug_assert_eq!(self.sort(b).width(), w);
        if let (Some(x), Some(y)) = (self.bv_value(a), self.bv_value(b)) {
            return self.bv_const(x.wrapping_add(y), w);
        }
        self.intern(Term::BvAdd(a, b), Sort::BitVec(w))
    }

    /// Extract bits `hi..=lo` of `arg`.
    pub fn bv_extract(&mut self, hi: u32, lo: u32, arg: TermId) -> TermId {
        let w = self.sort(arg).width();
        assert!(
            hi >= lo && hi < w,
            "bad extract range [{hi}:{lo}] on width {w}"
        );
        let out_w = hi - lo + 1;
        if out_w == w {
            return arg;
        }
        if let Some(x) = self.bv_value(arg) {
            return self.bv_const(x >> lo, out_w);
        }
        self.intern(Term::BvExtract { hi, lo, arg }, Sort::BitVec(out_w))
    }

    /// Logical shift right by a constant.
    pub fn bv_lshr_const(&mut self, arg: TermId, amount: u32) -> TermId {
        let w = self.sort(arg).width();
        if amount == 0 {
            return arg;
        }
        if amount >= w {
            return self.bv_const(0, w);
        }
        if let Some(x) = self.bv_value(arg) {
            return self.bv_const(x >> amount, w);
        }
        self.intern(Term::BvLshrConst { arg, amount }, Sort::BitVec(w))
    }

    // ---------------------------------------------------------------------
    // Display
    // ---------------------------------------------------------------------

    /// Render a term as an s-expression (for diagnostics and tests).
    pub fn display(&self, id: TermId) -> String {
        let mut s = String::new();
        self.display_into(id, &mut s);
        s
    }

    fn display_into(&self, id: TermId, out: &mut String) {
        use std::fmt::Write;
        match self.term(id) {
            Term::True => out.push_str("true"),
            Term::False => out.push_str("false"),
            Term::BoolVar(n) => out.push_str(&self.var_names[*n as usize]),
            Term::BvVar { name, .. } => out.push_str(&self.var_names[*name as usize]),
            Term::BvConst { width, value } => {
                let _ = write!(out, "#b{value}:{width}");
            }
            Term::Not(a) => {
                out.push_str("(not ");
                self.display_into(*a, out);
                out.push(')');
            }
            Term::And(parts) => self.display_nary("and", parts, out),
            Term::Or(parts) => self.display_nary("or", parts, out),
            Term::Ite(c, t, e) => {
                out.push_str("(ite ");
                self.display_into(*c, out);
                out.push(' ');
                self.display_into(*t, out);
                out.push(' ');
                self.display_into(*e, out);
                out.push(')');
            }
            Term::BvEq(a, b) => self.display_bin("=", *a, *b, out),
            Term::BvUlt(a, b) => self.display_bin("bvult", *a, *b, out),
            Term::BvUle(a, b) => self.display_bin("bvule", *a, *b, out),
            Term::BvAnd(a, b) => self.display_bin("bvand", *a, *b, out),
            Term::BvOr(a, b) => self.display_bin("bvor", *a, *b, out),
            Term::BvXor(a, b) => self.display_bin("bvxor", *a, *b, out),
            Term::BvAdd(a, b) => self.display_bin("bvadd", *a, *b, out),
            Term::BvNot(a) => {
                out.push_str("(bvnot ");
                self.display_into(*a, out);
                out.push(')');
            }
            Term::BvExtract { hi, lo, arg } => {
                use std::fmt::Write;
                let _ = write!(out, "(extract[{hi}:{lo}] ");
                self.display_into(*arg, out);
                out.push(')');
            }
            Term::BvLshrConst { arg, amount } => {
                use std::fmt::Write;
                let _ = write!(out, "(lshr ");
                self.display_into(*arg, out);
                let _ = write!(out, " {amount})");
            }
        }
    }

    fn display_nary(&self, op: &str, parts: &[TermId], out: &mut String) {
        out.push('(');
        out.push_str(op);
        for &p in parts {
            out.push(' ');
            self.display_into(p, out);
        }
        out.push(')');
    }

    fn display_bin(&self, op: &str, a: TermId, b: TermId, out: &mut String) {
        out.push('(');
        out.push_str(op);
        out.push(' ');
        self.display_into(a, out);
        out.push(' ');
        self.display_into(b, out);
        out.push(')');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedups() {
        let mut p = TermPool::new();
        let a = p.bool_var("a");
        let b = p.bool_var("b");
        let c1 = p.and2(a, b);
        let c2 = p.and2(b, a); // commuted: sorted children make these equal
        assert_eq!(c1, c2);
    }

    #[test]
    fn var_reuse_by_name() {
        let mut p = TermPool::new();
        let a1 = p.bool_var("a");
        let a2 = p.bool_var("a");
        assert_eq!(a1, a2);
        let x1 = p.bv_var("x", 8);
        let x2 = p.bv_var("x", 8);
        assert_eq!(x1, x2);
    }

    #[test]
    #[should_panic(expected = "different sort")]
    fn var_redeclare_panics() {
        let mut p = TermPool::new();
        p.bool_var("a");
        p.bv_var("a", 8);
    }

    #[test]
    fn constant_folding() {
        let mut p = TermPool::new();
        let t = p.tru();
        let f = p.fls();
        assert_eq!(p.and2(t, f), f);
        assert_eq!(p.or2(t, f), t);
        let a = p.bool_var("a");
        assert_eq!(p.and2(a, t), a);
        assert_eq!(p.or2(a, f), a);
        assert_eq!(p.and2(a, f), f);
        assert_eq!(p.or2(a, t), t);
    }

    #[test]
    fn double_negation() {
        let mut p = TermPool::new();
        let a = p.bool_var("a");
        let na = p.not(a);
        assert_eq!(p.not(na), a);
    }

    #[test]
    fn contradiction_collapses() {
        let mut p = TermPool::new();
        let a = p.bool_var("a");
        let na = p.not(a);
        let fls = p.fls();
        let tru = p.tru();
        assert_eq!(p.and2(a, na), fls);
        assert_eq!(p.or2(a, na), tru);
    }

    #[test]
    fn and_flattens() {
        let mut p = TermPool::new();
        let a = p.bool_var("a");
        let b = p.bool_var("b");
        let c = p.bool_var("c");
        let ab = p.and2(a, b);
        let abc = p.and2(ab, c);
        match p.term(abc) {
            Term::And(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn bv_const_folding() {
        let mut p = TermPool::new();
        let a = p.bv_const(5, 8);
        let b = p.bv_const(3, 8);
        let sum = p.bv_add(a, b);
        assert_eq!(p.term(sum), &Term::BvConst { width: 8, value: 8 });
        let lt = p.bv_ult(b, a);
        assert_eq!(p.term(lt), &Term::True);
        let eq = p.bv_eq(a, a);
        assert_eq!(p.term(eq), &Term::True);
    }

    #[test]
    fn bv_const_truncates() {
        let mut p = TermPool::new();
        let a = p.bv_const(0x1ff, 8);
        assert_eq!(
            p.term(a),
            &Term::BvConst {
                width: 8,
                value: 0xff
            }
        );
    }

    #[test]
    fn extract_semantics_on_consts() {
        let mut p = TermPool::new();
        let a = p.bv_const(0b1101_0110, 8);
        let hi = p.bv_extract(7, 4, a);
        assert_eq!(
            p.term(hi),
            &Term::BvConst {
                width: 4,
                value: 0b1101
            }
        );
    }

    #[test]
    fn ite_simplifies_on_const_cond() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 4);
        let y = p.bv_var("y", 4);
        let t = p.tru();
        let f = p.fls();
        assert_eq!(p.ite(t, x, y), x);
        assert_eq!(p.ite(f, x, y), y);
        let c = p.bool_var("c");
        assert_eq!(p.ite(c, x, x), x);
    }

    #[test]
    fn display_roundtrip_smoke() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 8);
        let five = p.bv_const(5, 8);
        let c = p.bv_ult(x, five);
        assert_eq!(p.display(c), "(bvult x #b5:8)");
    }
}
