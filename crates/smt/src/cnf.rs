//! CNF representation shared by the bit-blaster and the SAT solver.

use std::fmt;

/// A SAT variable (0-based index).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// The positive literal of this variable.
    pub fn pos(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }

    /// Literal with the given sign (`true` = positive).
    pub fn lit(self, sign: bool) -> Lit {
        if sign {
            self.pos()
        } else {
            self.neg()
        }
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: variable plus sign, packed as `var << 1 | negated`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub u32);

impl Lit {
    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// True for a positive (non-negated) literal.
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Raw index for direct array addressing (`2 * var + sign`).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        self.negate()
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pos() {
            write!(f, "v{}", self.var().0)
        } else {
            write!(f, "!v{}", self.var().0)
        }
    }
}

/// A CNF formula: clause list plus variable count.
#[derive(Clone, Debug, Default)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// An empty (trivially satisfiable) CNF.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a fresh variable.
    pub fn fresh_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of clauses added.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The clause list.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Add a clause (disjunction of literals). An empty clause makes the
    /// formula unsatisfiable.
    pub fn add_clause(&mut self, lits: impl Into<Vec<Lit>>) {
        let lits = lits.into();
        debug_assert!(
            lits.iter().all(|l| l.var().0 < self.num_vars),
            "clause references unallocated variable"
        );
        self.clauses.push(lits);
    }

    /// Evaluate under a total assignment (indexed by variable).
    /// Used by tests and the brute-force reference solver.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|c| {
            c.iter()
                .any(|l| assignment[l.var().0 as usize] == l.is_pos())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_packing() {
        let v = Var(7);
        assert_eq!(v.pos().var(), v);
        assert_eq!(v.neg().var(), v);
        assert!(v.pos().is_pos());
        assert!(!v.neg().is_pos());
        assert_eq!(!v.pos(), v.neg());
        assert_eq!(!(!v.pos()), v.pos());
        assert_eq!(v.lit(true), v.pos());
        assert_eq!(v.lit(false), v.neg());
    }

    #[test]
    fn cnf_eval() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var();
        let b = cnf.fresh_var();
        cnf.add_clause(vec![a.pos(), b.pos()]);
        cnf.add_clause(vec![a.neg(), b.neg()]);
        assert!(cnf.eval(&[true, false]));
        assert!(cnf.eval(&[false, true]));
        assert!(!cnf.eval(&[true, true]));
        assert!(!cnf.eval(&[false, false]));
    }
}
