//! The orchestration pipeline: fingerprint-group, consult the cache,
//! execute one representative per structure, replicate.
//!
//! Deduplication is sound because fingerprints cover everything the
//! solver sees (see the crate-level canonicalization rules): two checks
//! with equal fingerprints produce bit-identical SMT queries, so one
//! verdict — pass, or fail with a concrete counterexample over the
//! shared attribute universe — is the verdict of all of them.
//!
//! [`run_grouped`] adds a second axis: fingerprint-*distinct* jobs that
//! share an **encoding base** (same router/edge transfer function, same
//! universe — only the assumed/ensured predicates differ) carry an
//! encoding-base key, and the executor hands whole base-groups to
//! workers so the caller can solve each group on one persistent,
//! assumption-based SMT session. The cache still operates per job: every
//! member of a group gets its own fingerprint-keyed entry, and cached
//! answers are re-validated by the caller-supplied `validate` hook
//! before being trusted (stale failures are re-solved, not replayed).

use crate::cache::ResultCache;
use crate::executor::Executor;
use crate::fingerprint::Fingerprint;
use std::collections::HashMap;

/// How to run a batch.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Worker threads (`None`: available parallelism).
    pub jobs: Option<usize>,
    /// Collapse structurally identical jobs to one execution.
    pub dedup: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            jobs: None,
            dedup: true,
        }
    }
}

/// What a batch run did, for dedup-stats reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Jobs submitted (checks generated).
    pub generated: usize,
    /// Distinct structures among them.
    pub unique: usize,
    /// Jobs answered by another job in the same batch.
    pub dedup_hits: usize,
    /// Jobs answered by the cross-run cache.
    pub cache_hits: usize,
    /// Jobs actually executed (solver invocations).
    pub executed: usize,
    /// Cached answers rejected by re-validation (then re-executed).
    pub invalidated: usize,
    /// Encoding-base groups the executed jobs were batched into.
    pub groups: usize,
    /// Executed jobs answered on an already-warm session (assumption
    /// solves after a group's first); `executed - groups` by
    /// construction.
    pub assumption_solves: usize,
    /// Successful steals inside the executor.
    pub steals: u64,
    /// Worker threads used.
    pub threads: usize,
}

impl RunStats {
    /// Executed jobs per generated job; 1.0 means no savings.
    pub fn dedup_ratio(&self) -> f64 {
        if self.generated == 0 {
            1.0
        } else {
            self.executed as f64 / self.generated as f64
        }
    }

    /// The canonical one-line human rendering of a batch (shared by the
    /// CLI and report summaries so the format cannot drift).
    pub fn summary(&self) -> String {
        let mut s = format!(
            "orchestrator: {} checks -> {} solver calls ({} deduped, {} cached, ratio {:.2}, {} threads)",
            self.generated,
            self.executed,
            self.dedup_hits,
            self.cache_hits,
            self.dedup_ratio(),
            self.threads,
        );
        if self.groups > 0 {
            s.push_str(&format!(
                "; incremental: {} groups, {} warm assumption solves",
                self.groups, self.assumption_solves,
            ));
        }
        if self.invalidated > 0 {
            s.push_str(&format!(
                ", {} stale cache entries re-proved",
                self.invalidated
            ));
        }
        s
    }

    /// Fold another batch into this one (thread counts take the max).
    pub fn merge(&mut self, other: &RunStats) {
        self.generated += other.generated;
        self.unique += other.unique;
        self.dedup_hits += other.dedup_hits;
        self.cache_hits += other.cache_hits;
        self.executed += other.executed;
        self.invalidated += other.invalidated;
        self.groups += other.groups;
        self.assumption_solves += other.assumption_solves;
        self.steals += other.steals;
        self.threads = self.threads.max(other.threads);
    }
}

/// Results of a deduplicated batch run.
pub struct Batch<V> {
    /// Per-item results, in submission order.
    pub results: Vec<V>,
    /// Per-item: true iff this item was the representative whose job
    /// actually executed; false for dedup replicas and cache answers.
    /// Lets callers attribute real work (e.g. solver time) exactly once.
    pub fresh: Vec<bool>,
    /// Batch statistics.
    pub stats: RunStats,
}

/// Run `f` once per distinct fingerprint (modulo cache hits) and return
/// per-item results in submission order plus the batch statistics.
///
/// Thin wrapper over [`run_grouped`] where every item is its own
/// encoding-base group and cached results are trusted unconditionally.
pub fn run_deduped<T, V, F>(
    cfg: RunConfig,
    cache: Option<&ResultCache<V>>,
    items: &[(Fingerprint, T)],
    f: F,
) -> Batch<V>
where
    T: Sync,
    V: Clone + Send + Sync,
    F: Fn(&T) -> V + Sync,
{
    let keyed: Vec<(Fingerprint, u64, &T)> = items
        .iter()
        .enumerate()
        .map(|(i, (fp, t))| (*fp, i as u64, t))
        .collect();
    let mut batch = run_grouped(
        cfg,
        cache,
        &keyed,
        |_, _| true,
        |group| group.iter().map(|t| f(t)).collect(),
    );
    debug_assert!(batch.stats.assumption_solves == 0);
    // Singleton groups are an artifact of the wrapper, not a caller
    // decision: do not report them as incremental batching.
    batch.stats.groups = 0;
    batch.stats.assumption_solves = 0;
    batch
}

/// The grouped pipeline: fingerprint-dedup, cache consult (with
/// re-validation), then execute the remaining representatives in
/// encoding-base groups on the work-stealing pool.
///
/// * `items` — `(fingerprint, encoding-base key, payload)` per job. Jobs
///   with equal fingerprints are structurally identical (one is solved,
///   the verdict replicated); jobs with equal base keys share enough
///   encoding that the caller wants them solved together on one
///   persistent session.
/// * `validate` — called on every cache hit with the job and the cached
///   value; returning `false` rejects the entry (it is removed and the
///   job re-executed). Lets callers spill failure results whose
///   counterexamples must be re-checked against live configurations.
///   Hits are validated concurrently on the same work-stealing pool
///   that executes jobs, so expensive re-validation (a pinned solve per
///   spilled failure) does not serialize the dispatch path.
/// * `solve_group` — receives the group's payloads in submission order
///   and must return one result per payload, in order.
pub fn run_grouped<T, V, F, P>(
    cfg: RunConfig,
    cache: Option<&ResultCache<V>>,
    items: &[(Fingerprint, u64, T)],
    validate: P,
    solve_group: F,
) -> Batch<V>
where
    T: Sync,
    V: Clone + Send + Sync,
    P: Fn(&T, &V) -> bool + Sync,
    F: Fn(&[&T]) -> Vec<V> + Sync,
{
    let executor = Executor::with_threads(cfg.jobs);
    let mut stats = RunStats {
        generated: items.len(),
        threads: executor.threads(),
        ..RunStats::default()
    };

    // Group item indices by fingerprint, first occurrence first.
    let mut struct_of: HashMap<u128, usize> = HashMap::new();
    let mut structures: Vec<(Fingerprint, Vec<usize>)> = Vec::new();
    for (i, (fp, _, _)) in items.iter().enumerate() {
        if cfg.dedup {
            match struct_of.entry(fp.0) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    structures[*e.get()].1.push(i);
                    continue;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(structures.len());
                }
            }
        }
        structures.push((*fp, vec![i]));
    }
    stats.unique = structures.len();
    stats.dedup_hits = stats.generated - stats.unique;

    // Answer structures from the cache where possible. Hits are
    // validated on the work-stealing pool — re-validating a spilled
    // failure costs a pinned encode+solve, so a warm run over a
    // heavily-broken network would otherwise serialize those solves on
    // the dispatching thread. Validation failures drop the entry and
    // fall through to execution.
    let mut struct_results: Vec<Option<V>> = (0..structures.len()).map(|_| None).collect();
    let hits: Vec<(usize, V)> = structures
        .iter()
        .enumerate()
        .filter_map(|(si, (fp, _))| cache.and_then(|c| c.get(*fp)).map(|v| (si, v)))
        .collect();
    let (verdicts, _) = executor.run(&hits, |(si, v): &(usize, V)| {
        validate(&items[structures[*si].1[0]].2, v)
    });
    for ((si, v), ok) in hits.into_iter().zip(verdicts) {
        let (fp, members) = &structures[si];
        if ok {
            stats.cache_hits += members.len();
            struct_results[si] = Some(v);
        } else {
            stats.invalidated += members.len();
            if let Some(c) = cache {
                c.remove(*fp);
            }
        }
    }
    let to_run: Vec<(usize, Fingerprint, usize)> = structures
        .iter()
        .enumerate()
        .filter(|(si, _)| struct_results[*si].is_none())
        .map(|(si, (fp, members))| (si, *fp, members[0]))
        .collect();
    stats.executed = to_run.len();

    // Batch the representatives into encoding-base groups, preserving
    // submission order within each group.
    let mut exec_of: HashMap<u64, usize> = HashMap::new();
    let mut exec_groups: Vec<Vec<usize>> = Vec::new(); // indices into to_run
    for (ri, &(_, _, rep)) in to_run.iter().enumerate() {
        let key = items[rep].1;
        match exec_of.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => exec_groups[*e.get()].push(ri),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(exec_groups.len());
                exec_groups.push(vec![ri]);
            }
        }
    }
    stats.groups = exec_groups.len();
    stats.assumption_solves = stats.executed.saturating_sub(stats.groups);

    // Execute whole groups on the pool, stealing as needed.
    let (solved_groups, steals) = executor.run(&exec_groups, |runs: &Vec<usize>| {
        let payloads: Vec<&T> = runs.iter().map(|&ri| &items[to_run[ri].2].2).collect();
        let out = solve_group(&payloads);
        assert_eq!(
            out.len(),
            payloads.len(),
            "solve_group must return one result per payload"
        );
        out
    });
    stats.steals = steals;

    let mut fresh = vec![false; items.len()];
    for (runs, values) in exec_groups.into_iter().zip(solved_groups) {
        for (ri, v) in runs.into_iter().zip(values) {
            let (si, fp, rep) = to_run[ri];
            if let Some(c) = cache {
                c.insert(fp, v.clone());
            }
            fresh[rep] = true;
            struct_results[si] = Some(v);
        }
    }

    // Replicate structure results to every member, in submission order.
    let mut out: Vec<Option<V>> = (0..items.len()).map(|_| None).collect();
    for ((_, members), res) in structures.into_iter().zip(struct_results) {
        let res = res.expect("every structure resolved by cache or execution");
        let (last, rest) = members.split_last().expect("structures are non-empty");
        for i in rest {
            out[*i] = Some(res.clone());
        }
        out[*last] = Some(res);
    }
    if obs::enabled() {
        obs::add("orchestrator.generated", stats.generated as u64);
        obs::add("orchestrator.dedup_hits", stats.dedup_hits as u64);
        obs::add("orchestrator.cache_hits", stats.cache_hits as u64);
        obs::add("orchestrator.invalidated", stats.invalidated as u64);
        obs::add("orchestrator.executed", stats.executed as u64);
        obs::add("orchestrator.groups", stats.groups as u64);
        obs::add("orchestrator.steals", stats.steals);
    }
    Batch {
        results: out.into_iter().map(Option::unwrap).collect(),
        fresh,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::FpHasher;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn fp(n: u32) -> Fingerprint {
        let mut h = FpHasher::new();
        h.write_u32(n);
        h.finish()
    }

    #[test]
    fn dedup_executes_one_per_structure() {
        let calls = AtomicUsize::new(0);
        // 9 items over 3 structures.
        let items: Vec<(Fingerprint, u32)> = (0..9).map(|i| (fp(i % 3), i % 3)).collect();
        let batch = run_deduped(RunConfig::default(), None, &items, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x * 10
        });
        let (out, stats) = (batch.results, batch.stats);
        // Exactly one member per structure is fresh: the representative.
        assert_eq!(batch.fresh.iter().filter(|&&f| f).count(), 3);
        assert!(batch.fresh[0] && batch.fresh[1] && batch.fresh[2]);
        assert_eq!(out, vec![0, 10, 20, 0, 10, 20, 0, 10, 20]);
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(stats.generated, 9);
        assert_eq!(stats.unique, 3);
        assert_eq!(stats.dedup_hits, 6);
        assert_eq!(stats.executed, 3);
        assert!(stats.dedup_ratio() < 1.0);
    }

    #[test]
    fn no_dedup_executes_everything() {
        let calls = AtomicUsize::new(0);
        let items: Vec<(Fingerprint, u32)> = (0..6).map(|i| (fp(i % 2), i)).collect();
        let cfg = RunConfig {
            jobs: Some(2),
            dedup: false,
        };
        let batch = run_deduped(cfg, None, &items, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        let (out, stats) = (batch.results, batch.stats);
        assert!(batch.fresh.iter().all(|&f| f), "no dedup: every item fresh");
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(calls.load(Ordering::Relaxed), 6);
        assert_eq!(stats.dedup_hits, 0);
        assert_eq!(stats.executed, 6);
    }

    #[test]
    fn grouped_execution_batches_by_base_key() {
        // 6 distinct structures over 2 base keys: each key's group is
        // solved by one call receiving all its members.
        let group_calls = AtomicUsize::new(0);
        let items: Vec<(Fingerprint, u64, u32)> =
            (0..6).map(|i| (fp(i), (i % 2) as u64, i)).collect();
        let batch = run_grouped(
            RunConfig::default(),
            None,
            &items,
            |_, _| true,
            |group| {
                group_calls.fetch_add(1, Ordering::Relaxed);
                group.iter().map(|&&x| x * 10).collect()
            },
        );
        assert_eq!(batch.results, vec![0, 10, 20, 30, 40, 50]);
        assert_eq!(group_calls.load(Ordering::Relaxed), 2);
        assert_eq!(batch.stats.groups, 2);
        assert_eq!(batch.stats.executed, 6);
        assert_eq!(batch.stats.assumption_solves, 4);
        assert!(batch.fresh.iter().all(|&f| f));
    }

    #[test]
    fn grouped_dedup_and_cache_cooperate() {
        let cache: ResultCache<u32> = ResultCache::new();
        cache.insert(fp(0), 100);
        // Items: fp0 twice (cached), fp1 twice (dedup), fp2 once; all in
        // one base group.
        let items: Vec<(Fingerprint, u64, u32)> = vec![
            (fp(0), 7, 0),
            (fp(1), 7, 1),
            (fp(0), 7, 0),
            (fp(1), 7, 1),
            (fp(2), 7, 2),
        ];
        let batch = run_grouped(
            RunConfig::default(),
            Some(&cache),
            &items,
            |_, _| true,
            |group| group.iter().map(|&&x| x + 10).collect(),
        );
        assert_eq!(batch.results, vec![100, 11, 100, 11, 12]);
        assert_eq!(batch.stats.cache_hits, 2);
        assert_eq!(batch.stats.dedup_hits, 2);
        assert_eq!(batch.stats.executed, 2);
        assert_eq!(batch.stats.groups, 1);
    }

    #[test]
    fn stale_cache_entries_are_revalidated_and_reexecuted() {
        let cache: ResultCache<u32> = ResultCache::new();
        cache.insert(fp(1), 999); // stale: validator rejects odd payloads' 999
        let items: Vec<(Fingerprint, u64, u32)> = vec![(fp(1), 0, 1), (fp(2), 0, 2)];
        let batch = run_grouped(
            RunConfig::default(),
            Some(&cache),
            &items,
            |_, v| *v != 999,
            |group| group.iter().map(|&&x| x + 10).collect(),
        );
        assert_eq!(batch.results, vec![11, 12]);
        assert_eq!(batch.stats.invalidated, 1);
        assert_eq!(batch.stats.cache_hits, 0);
        assert_eq!(batch.stats.executed, 2);
        // The stale entry was replaced by the fresh verdict.
        assert_eq!(cache.peek(fp(1)), Some(11));
    }

    #[test]
    fn revalidation_runs_concurrently_on_the_pool() {
        // Many cached entries with a validator that records its calling
        // threads: with several workers, validation must not all happen
        // on the dispatching thread.
        use std::sync::Mutex;
        let cache: ResultCache<u32> = ResultCache::new();
        let n = 64u32;
        for i in 0..n {
            cache.insert(fp(i), i);
        }
        let threads: Mutex<std::collections::HashSet<std::thread::ThreadId>> =
            Mutex::new(std::collections::HashSet::new());
        let items: Vec<(Fingerprint, u64, u32)> = (0..n).map(|i| (fp(i), i as u64, i)).collect();
        let cfg = RunConfig {
            jobs: Some(4),
            dedup: true,
        };
        let batch = run_grouped(
            cfg,
            Some(&cache),
            &items,
            |_, _| {
                threads.lock().unwrap().insert(std::thread::current().id());
                // Simulate pinned-solve cost so workers overlap.
                std::thread::sleep(std::time::Duration::from_micros(300));
                true
            },
            |group| group.iter().map(|&&x| x).collect(),
        );
        assert_eq!(batch.stats.cache_hits as u32, n);
        assert_eq!(batch.stats.executed, 0);
        assert!(
            threads.lock().unwrap().len() > 1,
            "validation must fan out over the pool"
        );
    }

    #[test]
    fn warm_cache_answers_without_executing() {
        let cache: ResultCache<u32> = ResultCache::new();
        let items: Vec<(Fingerprint, u32)> = vec![(fp(1), 1), (fp(2), 2), (fp(1), 1)];
        let b1 = run_deduped(RunConfig::default(), Some(&cache), &items, |&x| x + 100);
        let (out1, s1) = (b1.results, b1.stats);
        assert_eq!(out1, vec![101, 102, 101]);
        assert_eq!(s1.executed, 2);
        assert_eq!(s1.cache_hits, 0);

        let calls = AtomicUsize::new(0);
        let b2 = run_deduped(RunConfig::default(), Some(&cache), &items, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x + 100
        });
        let (out2, s2) = (b2.results, b2.stats);
        assert!(b2.fresh.iter().all(|&f| !f), "warm run: nothing fresh");
        assert_eq!(out2, out1);
        assert_eq!(
            calls.load(Ordering::Relaxed),
            0,
            "warm run must not execute"
        );
        assert_eq!(s2.cache_hits, 3);
        assert_eq!(s2.executed, 0);
    }
}
