//! The orchestration pipeline: fingerprint-group, consult the cache,
//! execute one representative per structure, replicate.
//!
//! Deduplication is sound because fingerprints cover everything the
//! solver sees (see the crate-level canonicalization rules): two checks
//! with equal fingerprints produce bit-identical SMT queries, so one
//! verdict — pass, or fail with a concrete counterexample over the
//! shared attribute universe — is the verdict of all of them.

use crate::cache::ResultCache;
use crate::executor::Executor;
use crate::fingerprint::Fingerprint;
use std::collections::HashMap;

/// How to run a batch.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Worker threads (`None`: available parallelism).
    pub jobs: Option<usize>,
    /// Collapse structurally identical jobs to one execution.
    pub dedup: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            jobs: None,
            dedup: true,
        }
    }
}

/// What a batch run did, for dedup-stats reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Jobs submitted (checks generated).
    pub generated: usize,
    /// Distinct structures among them.
    pub unique: usize,
    /// Jobs answered by another job in the same batch.
    pub dedup_hits: usize,
    /// Jobs answered by the cross-run cache.
    pub cache_hits: usize,
    /// Jobs actually executed (solver invocations).
    pub executed: usize,
    /// Successful steals inside the executor.
    pub steals: u64,
    /// Worker threads used.
    pub threads: usize,
}

impl RunStats {
    /// Executed jobs per generated job; 1.0 means no savings.
    pub fn dedup_ratio(&self) -> f64 {
        if self.generated == 0 {
            1.0
        } else {
            self.executed as f64 / self.generated as f64
        }
    }

    /// The canonical one-line human rendering of a batch (shared by the
    /// CLI and report summaries so the format cannot drift).
    pub fn summary(&self) -> String {
        format!(
            "orchestrator: {} checks -> {} solver calls ({} deduped, {} cached, ratio {:.2}, {} threads)",
            self.generated,
            self.executed,
            self.dedup_hits,
            self.cache_hits,
            self.dedup_ratio(),
            self.threads,
        )
    }

    /// Fold another batch into this one (thread counts take the max).
    pub fn merge(&mut self, other: &RunStats) {
        self.generated += other.generated;
        self.unique += other.unique;
        self.dedup_hits += other.dedup_hits;
        self.cache_hits += other.cache_hits;
        self.executed += other.executed;
        self.steals += other.steals;
        self.threads = self.threads.max(other.threads);
    }
}

/// Results of a deduplicated batch run.
pub struct Batch<V> {
    /// Per-item results, in submission order.
    pub results: Vec<V>,
    /// Per-item: true iff this item was the representative whose job
    /// actually executed; false for dedup replicas and cache answers.
    /// Lets callers attribute real work (e.g. solver time) exactly once.
    pub fresh: Vec<bool>,
    /// Batch statistics.
    pub stats: RunStats,
}

/// Run `f` once per distinct fingerprint (modulo cache hits) and return
/// per-item results in submission order plus the batch statistics.
pub fn run_deduped<T, V, F>(
    cfg: RunConfig,
    cache: Option<&ResultCache<V>>,
    items: &[(Fingerprint, T)],
    f: F,
) -> Batch<V>
where
    T: Sync,
    V: Clone + Send,
    F: Fn(&T) -> V + Sync,
{
    let executor = Executor::with_threads(cfg.jobs);
    let mut stats = RunStats {
        generated: items.len(),
        threads: executor.threads(),
        ..RunStats::default()
    };

    // Group item indices by fingerprint, first occurrence first.
    let mut group_of: HashMap<u128, usize> = HashMap::new();
    let mut groups: Vec<(Fingerprint, Vec<usize>)> = Vec::new();
    for (i, (fp, _)) in items.iter().enumerate() {
        if cfg.dedup {
            match group_of.entry(fp.0) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    groups[*e.get()].1.push(i);
                    continue;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(groups.len());
                }
            }
        }
        groups.push((*fp, vec![i]));
    }
    stats.unique = groups.len();
    stats.dedup_hits = stats.generated - stats.unique;

    // Answer groups from the cache where possible.
    let mut group_results: Vec<Option<V>> = Vec::with_capacity(groups.len());
    let mut to_run: Vec<(usize, Fingerprint, usize)> = Vec::new(); // (group, fp, rep item)
    for (gi, (fp, members)) in groups.iter().enumerate() {
        let cached = cache.and_then(|c| c.get(*fp));
        if cached.is_some() {
            stats.cache_hits += members.len();
        } else {
            to_run.push((gi, *fp, members[0]));
        }
        group_results.push(cached);
    }

    // Execute the remaining representatives, stealing as needed.
    stats.executed = to_run.len();
    let jobs: Vec<&T> = to_run.iter().map(|&(_, _, rep)| &items[rep].1).collect();
    let (solved, steals) = executor.run(&jobs, |t| f(t));
    stats.steals = steals;
    let mut fresh = vec![false; items.len()];
    for ((gi, fp, rep), v) in to_run.into_iter().zip(solved) {
        if let Some(c) = cache {
            c.insert(fp, v.clone());
        }
        fresh[rep] = true;
        group_results[gi] = Some(v);
    }

    // Replicate group results to every member, in submission order.
    let mut out: Vec<Option<V>> = (0..items.len()).map(|_| None).collect();
    for ((_, members), res) in groups.into_iter().zip(group_results) {
        let res = res.expect("every group resolved by cache or execution");
        let (last, rest) = members.split_last().expect("groups are non-empty");
        for i in rest {
            out[*i] = Some(res.clone());
        }
        out[*last] = Some(res);
    }
    Batch {
        results: out.into_iter().map(Option::unwrap).collect(),
        fresh,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::FpHasher;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn fp(n: u32) -> Fingerprint {
        let mut h = FpHasher::new();
        h.write_u32(n);
        h.finish()
    }

    #[test]
    fn dedup_executes_one_per_structure() {
        let calls = AtomicUsize::new(0);
        // 9 items over 3 structures.
        let items: Vec<(Fingerprint, u32)> = (0..9).map(|i| (fp(i % 3), i % 3)).collect();
        let batch = run_deduped(RunConfig::default(), None, &items, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x * 10
        });
        let (out, stats) = (batch.results, batch.stats);
        // Exactly one member per structure is fresh: the representative.
        assert_eq!(batch.fresh.iter().filter(|&&f| f).count(), 3);
        assert!(batch.fresh[0] && batch.fresh[1] && batch.fresh[2]);
        assert_eq!(out, vec![0, 10, 20, 0, 10, 20, 0, 10, 20]);
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(stats.generated, 9);
        assert_eq!(stats.unique, 3);
        assert_eq!(stats.dedup_hits, 6);
        assert_eq!(stats.executed, 3);
        assert!(stats.dedup_ratio() < 1.0);
    }

    #[test]
    fn no_dedup_executes_everything() {
        let calls = AtomicUsize::new(0);
        let items: Vec<(Fingerprint, u32)> = (0..6).map(|i| (fp(i % 2), i)).collect();
        let cfg = RunConfig {
            jobs: Some(2),
            dedup: false,
        };
        let batch = run_deduped(cfg, None, &items, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        let (out, stats) = (batch.results, batch.stats);
        assert!(batch.fresh.iter().all(|&f| f), "no dedup: every item fresh");
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(calls.load(Ordering::Relaxed), 6);
        assert_eq!(stats.dedup_hits, 0);
        assert_eq!(stats.executed, 6);
    }

    #[test]
    fn warm_cache_answers_without_executing() {
        let cache: ResultCache<u32> = ResultCache::new();
        let items: Vec<(Fingerprint, u32)> = vec![(fp(1), 1), (fp(2), 2), (fp(1), 1)];
        let b1 = run_deduped(RunConfig::default(), Some(&cache), &items, |&x| x + 100);
        let (out1, s1) = (b1.results, b1.stats);
        assert_eq!(out1, vec![101, 102, 101]);
        assert_eq!(s1.executed, 2);
        assert_eq!(s1.cache_hits, 0);

        let calls = AtomicUsize::new(0);
        let b2 = run_deduped(RunConfig::default(), Some(&cache), &items, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x + 100
        });
        let (out2, s2) = (b2.results, b2.stats);
        assert!(b2.fresh.iter().all(|&f| !f), "warm run: nothing fresh");
        assert_eq!(out2, out1);
        assert_eq!(
            calls.load(Ordering::Relaxed),
            0,
            "warm run must not execute"
        );
        assert_eq!(s2.cache_hits, 3);
        assert_eq!(s2.executed, 0);
    }
}
