//! Structural fingerprints: a 128-bit hash over a canonical byte stream.
//!
//! The hasher runs two independently keyed 64-bit FNV-1a-with-finalizer
//! lanes over the same stream; the lanes' finalized states concatenate
//! into the fingerprint. 128 bits makes accidental collisions across the
//! largest realistic check populations (millions) negligible; the stream
//! discipline (tags + length prefixes, see the crate docs) rules out
//! concatenation ambiguity.

use std::fmt;

/// A 128-bit structural fingerprint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// Render as fixed-width lowercase hex (the spill-file key format).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parse the [`Fingerprint::to_hex`] form.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fp:{}", self.to_hex())
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

const FNV_PRIME: u64 = 0x100000001b3;

/// Streaming fingerprint builder.
#[derive(Clone, Debug)]
pub struct FpHasher {
    lane_a: u64,
    lane_b: u64,
    len: u64,
}

impl Default for FpHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl FpHasher {
    /// A fresh hasher.
    pub fn new() -> Self {
        FpHasher {
            lane_a: 0xcbf29ce484222325,
            lane_b: 0x9e3779b97f4a7c15,
            len: 0,
        }
    }

    fn mix(&mut self, byte: u8) {
        self.lane_a = (self.lane_a ^ byte as u64).wrapping_mul(FNV_PRIME);
        self.lane_b = (self.lane_b ^ byte as u64)
            .wrapping_mul(FNV_PRIME)
            .rotate_left(17);
        self.len = self.len.wrapping_add(1);
    }

    /// Write one byte (no length prefix; only for fixed-width callers).
    pub fn write_u8(&mut self, x: u8) {
        self.mix(x);
    }

    /// Write a fixed-width u32.
    pub fn write_u32(&mut self, x: u32) {
        for b in x.to_le_bytes() {
            self.mix(b);
        }
    }

    /// Write a fixed-width u64.
    pub fn write_u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.mix(b);
        }
    }

    /// Write a bool as one byte.
    pub fn write_bool(&mut self, x: bool) {
        self.mix(x as u8);
    }

    /// Write variable-length bytes, length-prefixed (self-delimiting).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for &b in bytes {
            self.mix(b);
        }
    }

    /// Write a string, length-prefixed.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Introduce a composite: a tag naming the structure that follows.
    pub fn write_tag(&mut self, tag: &str) {
        self.write_bytes(tag.as_bytes());
    }

    /// Finalize into a [`Fingerprint`].
    pub fn finish(&self) -> Fingerprint {
        // Avalanche both lanes (splitmix64 finalizer) so short inputs
        // still spread over all 128 bits.
        fn fin(mut z: u64) -> u64 {
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
        let a = fin(self.lane_a ^ self.len);
        let b = fin(self.lane_b.wrapping_add(self.len.rotate_left(32)));
        Fingerprint(((a as u128) << 64) | b as u128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(f: impl FnOnce(&mut FpHasher)) -> Fingerprint {
        let mut h = FpHasher::new();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_sensitive() {
        let a = fp(|h| {
            h.write_tag("transfer");
            h.write_str("x");
            h.write_u32(7);
        });
        let same = fp(|h| {
            h.write_tag("transfer");
            h.write_str("x");
            h.write_u32(7);
        });
        let diff = fp(|h| {
            h.write_tag("transfer");
            h.write_str("x");
            h.write_u32(8);
        });
        assert_eq!(a, same);
        assert_ne!(a, diff);
    }

    #[test]
    fn length_prefix_blocks_concatenation_ambiguity() {
        let ab_c = fp(|h| {
            h.write_str("ab");
            h.write_str("c");
        });
        let a_bc = fp(|h| {
            h.write_str("a");
            h.write_str("bc");
        });
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn hex_roundtrip() {
        let f = fp(|h| h.write_str("roundtrip"));
        assert_eq!(Fingerprint::from_hex(&f.to_hex()), Some(f));
        assert_eq!(Fingerprint::from_hex("zz"), None);
    }
}
