//! The work-stealing executor.
//!
//! Jobs are distributed round-robin across per-worker deques; idle
//! workers first drain their own deque (LIFO), then steal half a peer's
//! backlog, so stragglers — one router with a pathological route map —
//! no longer serialize the tail of a run the way the previous
//! all-threads-at-once scheme did. Results are delivered with their
//! submission index and re-assembled in order, making the output
//! deterministic regardless of completion order.

use crate::deque::Worker;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;

/// A work-stealing job executor.
#[derive(Clone, Copy, Debug)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// An executor with an explicit thread count (`--jobs`); `None`
    /// uses the machine's available parallelism.
    pub fn with_threads(jobs: Option<usize>) -> Self {
        let threads = jobs.filter(|&j| j > 0).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        });
        Executor { threads }
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f` over every item, returning results in submission order
    /// plus the number of successful steals observed.
    pub fn run<T, R, F>(&self, items: &[T], f: F) -> (Vec<R>, u64)
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return (Vec::new(), 0);
        }
        let threads = self.threads.min(n);
        // Live queue depth: pending jobs, decremented as each
        // completes, so a mid-batch `/metrics` scrape shows progress.
        obs::gauge_set("orchestrator.queue_depth", n as u64);
        if threads <= 1 {
            let _span = obs::span!("worker", wid = 0, jobs = n);
            let results = items
                .iter()
                .enumerate()
                .map(|(done, item)| {
                    let r = f(item);
                    obs::gauge_set("orchestrator.queue_depth", (n - done - 1) as u64);
                    r
                })
                .collect();
            return (results, 0);
        }

        // Round-robin seeding: index i goes to worker i % threads.
        let workers: Vec<Worker<usize>> = (0..threads).map(|_| Worker::new()).collect();
        let stealers: Vec<_> = workers.iter().map(Worker::stealer).collect();
        for i in 0..n {
            workers[i % threads].push(i);
        }

        let steals = AtomicU64::new(0);
        let done = AtomicU64::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        std::thread::scope(|scope| {
            for (wid, my) in workers.into_iter().enumerate() {
                let tx = tx.clone();
                let stealers = &stealers;
                let steals = &steals;
                let done = &done;
                let f = &f;
                scope.spawn(move || {
                    // One span per worker thread: the work-stealing
                    // schedule becomes visible in the exported trace.
                    let _span = obs::span!("worker", wid = wid);
                    loop {
                        let job = my.pop().or_else(|| {
                            // Scan peers starting past self so thieves
                            // fan out instead of mobbing worker 0.
                            for k in 1..stealers.len() {
                                let victim = &stealers[(wid + k) % stealers.len()];
                                if let Some(j) = victim.steal_batch_and_pop(&my) {
                                    steals.fetch_add(1, Ordering::Relaxed);
                                    return Some(j);
                                }
                            }
                            None
                        });
                        match job {
                            Some(i) => {
                                let r = f(&items[i]);
                                if obs::enabled() {
                                    let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                                    obs::gauge_set(
                                        "orchestrator.queue_depth",
                                        (n as u64).saturating_sub(d),
                                    );
                                }
                                if tx.send((i, r)).is_err() {
                                    return;
                                }
                            }
                            None => return,
                        }
                    }
                });
            }
            drop(tx);
        });

        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        let results = slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.unwrap_or_else(|| panic!("job {i} produced no result")))
            .collect();
        (results, steals.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_submission_order() {
        let items: Vec<usize> = (0..200).collect();
        let ex = Executor::with_threads(Some(8));
        let (out, _steals) = ex.run(&items, |&i| {
            // Uneven work so completion order scrambles.
            if i % 17 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            i * 3
        });
        assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<u32> = (0..500).collect();
        let ex = Executor::with_threads(Some(4));
        let (out, _) = ex.run(&items, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 500);
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn single_thread_and_empty_inputs() {
        let ex = Executor::with_threads(Some(1));
        let (out, steals) = ex.run(&[1, 2, 3], |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        assert_eq!(steals, 0);
        let (empty, _) = ex.run(&[] as &[i32], |&x| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn stealing_balances_a_skewed_seed() {
        // All the slow jobs land on one worker under round-robin with
        // threads=2 and even indices slow; stealing must still finish
        // promptly (smoke: just verify completion and that steals occur
        // for a grossly imbalanced load).
        let items: Vec<usize> = (0..64).collect();
        let ex = Executor::with_threads(Some(4));
        let (out, _steals) = ex.run(&items, |&i| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out.len(), 64);
    }
}
