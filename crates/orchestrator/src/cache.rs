//! A sharded, fingerprint-keyed result cache with optional JSON spill.
//!
//! The in-memory map is split over independently locked shards (selected
//! by the fingerprint's low bits) so concurrent workers rarely contend —
//! the DashMap design point, built on std. Spilling is delegated to
//! caller-supplied encode/decode closures over `serde_json::Value`, so
//! the cache stays generic and callers decide which results are durable
//! (the verifier spills both passes and failures; failures are
//! re-validated against the live configuration before reuse — see
//! `lightyear::engine`).
//!
//! Long-lived processes (daemon-style re-verification loops) can bound
//! the cache with [`ResultCache::bounded`]: each shard then evicts its
//! least-recently-used entry once over budget, so memory stays constant
//! no matter how many distinct check structures flow through.

use crate::fingerprint::{Fingerprint, FpHasher};
use serde_json::Value;
use std::collections::HashMap;
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Spill-format version; bump when the entry encoding changes.
/// Version 3 wraps each entry as `{"sum", "payload"}` where `sum` is the
/// fingerprint of the entry's key and payload bytes: a spill that was
/// truncated, bit-flipped, or hand-forged fails its checksum on reload
/// and the affected checks are simply re-proved instead of replayed.
const SPILL_VERSION: i64 = 3;

/// Checksum of a spill entry: covers the fingerprint key *and* the
/// serialized payload bytes, so corruption in either (including a
/// flipped hex digit that would re-key a valid payload onto the wrong
/// check) fails verification.
///
/// Public because external tools (and tests) that rewrite spill files
/// must recompute it. It is an *integrity* sum against corruption, not a
/// cryptographic seal: well-formed entries still pass semantic
/// re-validation against the live encoding before being replayed.
pub fn spill_entry_sum(key_hex: &str, payload: &str) -> String {
    let mut h = FpHasher::new();
    h.write_tag("spill-entry");
    h.write_str(key_hex);
    h.write_str(payload);
    h.finish().to_hex()
}

/// Counters describing cache effectiveness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// `get` calls that found an entry.
    pub hits: u64,
    /// `get` calls that found nothing.
    pub misses: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
}

/// One cached value plus its last-touch stamp for LRU ordering.
struct Entry<V> {
    value: V,
    touched: u64,
}

/// A sharded map from [`Fingerprint`] to a result value, optionally
/// bounded with least-recently-used eviction.
pub struct ResultCache<V> {
    shards: Vec<Mutex<HashMap<u128, Entry<V>>>>,
    /// Per-shard entry budget; `usize::MAX` means unbounded.
    per_shard_cap: usize,
    /// Logical clock driving LRU recency (monotone, cross-shard).
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

impl<V> Default for ResultCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> ResultCache<V> {
    /// An unbounded cache with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(16)
    }

    /// An unbounded cache with `n` shards (rounded up to one).
    pub fn with_shards(n: usize) -> Self {
        Self::build(n, usize::MAX)
    }

    /// A size-bounded cache: at most (approximately) `capacity` entries,
    /// evicting the least-recently-used entry of the owning shard when a
    /// shard exceeds its share of the budget.
    pub fn bounded(capacity: usize) -> Self {
        let shards = 16usize;
        let per_shard = capacity.div_ceil(shards).max(1);
        Self::build(shards, per_shard)
    }

    fn build(shards: usize, per_shard_cap: usize) -> Self {
        let n = shards.max(1);
        ResultCache {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            per_shard_cap,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, fp: Fingerprint) -> &Mutex<HashMap<u128, Entry<V>>> {
        &self.shards[(fp.0 as usize) % self.shards.len()]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Insert (last write wins). A bounded cache evicts its shard's
    /// least-recently-used entry when over budget.
    pub fn insert(&self, fp: Fingerprint, v: V) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        let touched = self.tick();
        let mut shard = self.shard(fp).lock().unwrap();
        shard.insert(fp.0, Entry { value: v, touched });
        while shard.len() > self.per_shard_cap {
            // Linear scan is fine: shards hold capacity/16 entries and
            // eviction fires once per overflowing insert.
            let Some((&oldest, _)) = shard.iter().min_by_key(|(_, e)| e.touched) else {
                break;
            };
            shard.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            obs::add("cache.evictions", 1);
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The effectiveness counters.
    pub fn stats(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Reset the effectiveness counters (entries are kept).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.inserts.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// Drop an entry (used when a loaded result fails re-validation).
    pub fn remove(&self, fp: Fingerprint) {
        self.shard(fp).lock().unwrap().remove(&fp.0);
    }

    /// Drop a batch of entries, returning how many were present. This is
    /// the delta-aware invalidation entry point: a re-verify round that
    /// knows which checks a configuration change dirtied removes exactly
    /// those checks' superseded fingerprints instead of scanning or
    /// flushing the whole cache.
    pub fn remove_many(&self, fps: &[Fingerprint]) -> usize {
        let mut removed = 0;
        for &fp in fps {
            if self.shard(fp).lock().unwrap().remove(&fp.0).is_some() {
                removed += 1;
            }
        }
        removed
    }
}

impl<V: Clone> ResultCache<V> {
    /// Look up a fingerprint, counting a hit or miss and refreshing the
    /// entry's LRU recency.
    pub fn get(&self, fp: Fingerprint) -> Option<V> {
        let touched = self.tick();
        let mut shard = self.shard(fp).lock().unwrap();
        let found = shard.get_mut(&fp.0).map(|e| {
            e.touched = touched;
            e.value.clone()
        });
        drop(shard);
        match &found {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs::add("cache.hits", 1);
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                obs::add("cache.misses", 1);
            }
        };
        found
    }

    /// Look up without touching the counters or recency.
    pub fn peek(&self, fp: Fingerprint) -> Option<V> {
        self.shard(fp)
            .lock()
            .unwrap()
            .get(&fp.0)
            .map(|e| e.value.clone())
    }

    /// Spill to `dir/cache.json`. `encode` chooses which entries are
    /// durable: returning `None` skips an entry. Each entry is stored as
    /// `{"sum", "payload"}` — the payload's compact JSON text plus its
    /// checksum — so reload can detect corruption per entry. Returns the
    /// number of entries written.
    pub fn save_to_dir(
        &self,
        dir: &Path,
        encode: impl Fn(&V) -> Option<Value>,
    ) -> io::Result<usize> {
        std::fs::create_dir_all(dir)?;
        let mut entries: Vec<(String, Value)> = Vec::new();
        for shard in &self.shards {
            for (k, e) in shard.lock().unwrap().iter() {
                if let Some(val) = encode(&e.value) {
                    let hex = Fingerprint(*k).to_hex();
                    let payload = serde_json::to_string(&val)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                    let wrapped = Value::Object(vec![
                        (
                            "sum".to_string(),
                            Value::Str(spill_entry_sum(&hex, &payload)),
                        ),
                        ("payload".to_string(), Value::Str(payload)),
                    ]);
                    entries.push((hex, wrapped));
                }
            }
        }
        // Sort for reproducible files (shard iteration order is not
        // deterministic).
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let written = entries.len();
        let doc = Value::Object(vec![
            ("version".to_string(), Value::Int(SPILL_VERSION)),
            ("entries".to_string(), Value::Object(entries)),
        ]);
        let text = serde_json::to_string_pretty(&doc)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let path = dir.join("cache.json");
        let tmp = dir.join("cache.json.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
        }
        std::fs::rename(&tmp, &path)?;
        obs::add("cache.spill_bytes", text.len() as u64);
        obs::add("cache.spill_entries", written as u64);
        Ok(written)
    }

    /// Load `dir/cache.json` written by [`ResultCache::save_to_dir`].
    /// Missing file is an empty load; a version mismatch ignores the
    /// file (the fingerprint format changed). Every entry must pass its
    /// payload checksum before being parsed: a corrupted or forged entry
    /// is skipped (counted on `cache.spill_rejected`) and its check is
    /// re-proved by the caller, never replayed. `decode` may reject
    /// individual entries by returning `None`. Returns entries loaded.
    pub fn load_from_dir(
        &self,
        dir: &Path,
        decode: impl Fn(&Value) -> Option<V>,
    ) -> io::Result<usize> {
        let path = dir.join("cache.json");
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let doc: Value = serde_json::from_str(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if doc["version"].as_i64() != Some(SPILL_VERSION) {
            return Ok(0);
        }
        let Some(entries) = doc["entries"].as_object() else {
            return Ok(0);
        };
        let mut loaded = 0;
        let mut rejected = 0u64;
        for (hex, wrapped) in entries {
            let Some(fp) = Fingerprint::from_hex(hex) else {
                rejected += 1;
                continue;
            };
            // Checksum-before-parse: only payload bytes whose sum
            // matches (over key and payload) are ever handed to the
            // JSON parser or `decode`.
            let verified = match (wrapped["sum"].as_str(), wrapped["payload"].as_str()) {
                (Some(sum), Some(payload)) if sum == spill_entry_sum(hex, payload) => {
                    serde_json::from_str::<Value>(payload).ok()
                }
                _ => None,
            };
            let Some(v) = verified.as_ref().and_then(&decode) else {
                rejected += 1;
                continue;
            };
            self.insert(fp, v);
            loaded += 1;
        }
        if rejected > 0 {
            obs::add("cache.spill_rejected", rejected);
        }
        // Loads should not count as runtime insert traffic.
        self.inserts.fetch_sub(loaded as u64, Ordering::Relaxed);
        obs::add("cache.reload_bytes", text.len() as u64);
        obs::add("cache.reload_entries", loaded as u64);
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::FpHasher;

    fn fp(n: u32) -> Fingerprint {
        let mut h = FpHasher::new();
        h.write_u32(n);
        h.finish()
    }

    #[test]
    fn get_insert_stats() {
        let c: ResultCache<String> = ResultCache::new();
        assert_eq!(c.get(fp(1)), None);
        c.insert(fp(1), "one".into());
        assert_eq!(c.get(fp(1)).as_deref(), Some("one"));
        assert_eq!(
            c.stats(),
            CacheSnapshot {
                hits: 1,
                misses: 1,
                inserts: 1,
                evictions: 0,
            }
        );
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn spill_roundtrip_with_selective_encode() {
        let dir = std::env::temp_dir().join(format!("orch-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c: ResultCache<(bool, u32)> = ResultCache::new();
        c.insert(fp(1), (true, 10));
        c.insert(fp(2), (false, 20)); // not durable: encode returns None
        let written = c
            .save_to_dir(&dir, |(pass, n)| {
                if *pass {
                    Some(serde_json::json!({ "n": *n }))
                } else {
                    None
                }
            })
            .unwrap();
        assert_eq!(written, 1);

        let c2: ResultCache<(bool, u32)> = ResultCache::new();
        let loaded = c2
            .load_from_dir(&dir, |v| v["n"].as_u64().map(|n| (true, n as u32)))
            .unwrap();
        assert_eq!(loaded, 1);
        assert_eq!(c2.peek(fp(1)), Some((true, 10)));
        assert_eq!(c2.peek(fp(2)), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Spill a two-entry cache, apply `corrupt` to the file text, and
    /// return how many entries a fresh cache loads from the result.
    fn poisoned_load(tag: &str, corrupt: impl Fn(String) -> String) -> (ResultCache<u32>, usize) {
        let dir = std::env::temp_dir().join(format!("orch-poison-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c: ResultCache<u32> = ResultCache::new();
        c.insert(fp(1), 10);
        c.insert(fp(2), 20);
        c.save_to_dir(&dir, |n| Some(serde_json::json!({ "n": *n })))
            .unwrap();
        let path = dir.join("cache.json");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, corrupt(text)).unwrap();
        let c2: ResultCache<u32> = ResultCache::new();
        let loaded = c2
            .load_from_dir(&dir, |v| v["n"].as_u64().map(|n| n as u32))
            .unwrap_or(0);
        let _ = std::fs::remove_dir_all(&dir);
        (c2, loaded)
    }

    #[test]
    fn bit_flipped_payload_is_rejected_not_replayed() {
        // Flip one digit inside one payload's value: the entry's
        // checksum no longer matches, so only the intact entry loads.
        // (`:10}` cannot occur in a hex key or checksum, so the flip
        // lands inside the escaped payload string.)
        let (c, loaded) = poisoned_load("flip", |t| t.replacen(":10}", ":99}", 1));
        assert_eq!(loaded, 1);
        assert_eq!(c.peek(fp(1)), None, "poisoned entry must not replay");
        assert_eq!(c.peek(fp(2)), Some(20), "intact entry still loads");
    }

    #[test]
    fn forged_checksum_is_rejected() {
        // Garbling an entry's checksum (first entry in file order)
        // rejects the entry even though the payload itself is intact.
        let (c, loaded) = poisoned_load("forge", |t| t.replacen("\"sum\": \"", "\"sum\": \"0", 1));
        assert_eq!(loaded, 1, "only the untouched entry loads");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn flipped_key_digit_is_rejected() {
        // A flipped hex digit in the key re-keys a valid payload onto
        // the wrong fingerprint; the checksum covers the key, so the
        // transposed entry is rejected rather than replayed.
        let (c, loaded) = poisoned_load("key", |t| {
            let h = fp(1).to_hex();
            let mut flipped = h.clone();
            let repl = if h.starts_with('0') { "1" } else { "0" };
            flipped.replace_range(0..1, repl);
            t.replacen(&h, &flipped, 1)
        });
        assert_eq!(loaded, 1, "only the untouched entry loads");
        assert_eq!(c.peek(fp(1)), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn truncated_file_loads_nothing_and_does_not_panic() {
        let (c, loaded) = poisoned_load("trunc", |t| t[..t.len() / 2].to_string());
        assert_eq!(loaded, 0, "truncated spill is a cold start");
        assert!(c.is_empty());
    }

    #[test]
    fn version_2_spill_is_ignored() {
        let (_, loaded) =
            poisoned_load("ver", |t| t.replacen("\"version\": 3", "\"version\": 2", 1));
        assert_eq!(loaded, 0, "pre-checksum spills are not trusted");
    }

    #[test]
    fn missing_dir_loads_empty() {
        let c: ResultCache<u32> = ResultCache::new();
        let loaded = c
            .load_from_dir(Path::new("/nonexistent/definitely/not/here"), |_| Some(0))
            .unwrap();
        assert_eq!(loaded, 0);
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        // Capacity 32 over 16 shards = 2 per shard; pick three keys that
        // collide on one shard to exercise eviction deterministically.
        let c: ResultCache<u32> = ResultCache::bounded(32);
        let mut same_shard = Vec::new();
        let mut n = 0;
        while same_shard.len() < 3 {
            let f = fp(n);
            if (f.0 as usize) % 16 == (fp(0).0 as usize) % 16 {
                same_shard.push(f);
            }
            n += 1;
        }
        c.insert(same_shard[0], 0);
        c.insert(same_shard[1], 1);
        // Touch entry 0 so entry 1 is the LRU victim.
        assert_eq!(c.get(same_shard[0]), Some(0));
        c.insert(same_shard[2], 2);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.peek(same_shard[0]), Some(0), "recently-used survives");
        assert_eq!(c.peek(same_shard[1]), None, "LRU entry evicted");
        assert_eq!(c.peek(same_shard[2]), Some(2), "newest entry survives");
    }

    #[test]
    fn bounded_cache_total_size_is_bounded() {
        let c: ResultCache<u32> = ResultCache::bounded(32);
        for i in 0..1000 {
            c.insert(fp(i), i);
        }
        assert!(c.len() <= 32, "len {} exceeds bound", c.len());
        assert!(c.stats().evictions >= 968);
    }

    #[test]
    fn remove_drops_entries() {
        let c: ResultCache<u32> = ResultCache::new();
        c.insert(fp(7), 7);
        c.remove(fp(7));
        assert_eq!(c.peek(fp(7)), None);
    }

    #[test]
    fn remove_many_reports_present_entries() {
        let c: ResultCache<u32> = ResultCache::new();
        c.insert(fp(1), 1);
        c.insert(fp(2), 2);
        let removed = c.remove_many(&[fp(1), fp(2), fp(3)]);
        assert_eq!(removed, 2, "fp(3) was never present");
        assert!(c.is_empty());
    }
}
