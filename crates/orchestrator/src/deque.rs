//! Work-stealing deques in the crossbeam-deque mold.
//!
//! Each worker owns a [`Worker`] deque (LIFO pop from the back — hot
//! jobs stay cache-warm) and hands [`Stealer`] handles to its peers,
//! which steal from the front (the oldest, largest-granularity work).
//! A shared [`Injector`] receives overflow/new work. The implementation
//! is mutex-per-deque rather than the Chase–Lev lock-free algorithm:
//! verification jobs are milliseconds to seconds of SMT solving, so
//! queue-operation latency is irrelevant while correctness and
//! simplicity are not.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// The owner's end of a deque.
pub struct Worker<T> {
    q: Arc<Mutex<VecDeque<T>>>,
}

/// A peer's stealing end.
pub struct Stealer<T> {
    q: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer { q: self.q.clone() }
    }
}

impl<T> Default for Worker<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Worker<T> {
    /// An empty deque.
    pub fn new() -> Self {
        Worker {
            q: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Push onto the owner's end.
    pub fn push(&self, item: T) {
        self.q.lock().unwrap().push_back(item);
    }

    /// Pop from the owner's end (LIFO).
    pub fn pop(&self) -> Option<T> {
        self.q.lock().unwrap().pop_back()
    }

    /// A stealing handle for peers.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer { q: self.q.clone() }
    }

    /// Current length (racy; for heuristics only).
    pub fn len(&self) -> usize {
        self.q.lock().unwrap().len()
    }

    /// Whether the deque is empty (racy; for heuristics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Stealer<T> {
    /// Steal one item from the victim's front.
    pub fn steal(&self) -> Option<T> {
        self.q.lock().unwrap().pop_front()
    }

    /// Steal about half the victim's items into `dest`, returning one of
    /// them for immediate execution. Halving amortizes steal traffic when
    /// queues are imbalanced (the crossbeam `steal_batch_and_pop` idiom).
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Option<T> {
        let mut victim = self.q.lock().unwrap();
        let n = victim.len();
        if n == 0 {
            return None;
        }
        let take = (n / 2).max(1);
        let first = victim.pop_front();
        let mut dest_q = dest.q.lock().unwrap();
        for _ in 1..take {
            match victim.pop_front() {
                Some(x) => dest_q.push_back(x),
                None => break,
            }
        }
        first
    }
}

/// A shared FIFO all workers can push to and steal from.
pub struct Injector<T> {
    q: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// An empty injector.
    pub fn new() -> Self {
        Injector {
            q: Mutex::new(VecDeque::new()),
        }
    }

    /// Push new work.
    pub fn push(&self, item: T) {
        self.q.lock().unwrap().push_back(item);
    }

    /// Take the oldest item.
    pub fn steal(&self) -> Option<T> {
        self.q.lock().unwrap().pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_owner_fifo_thief() {
        let w = Worker::new();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Some(1)); // oldest
        assert_eq!(w.pop(), Some(3)); // newest
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), None);
    }

    #[test]
    fn steal_batch_moves_about_half() {
        let victim = Worker::new();
        let thief = Worker::new();
        for i in 0..10 {
            victim.push(i);
        }
        let got = victim.stealer().steal_batch_and_pop(&thief);
        assert_eq!(got, Some(0));
        assert_eq!(thief.len(), 4); // took 5, returned 1
        assert_eq!(victim.len(), 5);
    }
}
