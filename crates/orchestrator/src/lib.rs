//! # Check orchestration for WAN-scale verification
//!
//! Lightyear's local checks are self-contained and embarrassingly
//! parallel (design decision D3), but at WAN scale most of them are also
//! *structurally identical*: hundreds of routers instantiate the same
//! route-map template under the same invariant template, so a naive run
//! spends most of its time re-solving the same SMT query under different
//! router names. This crate is the subsystem that exploits that:
//!
//! * [`fingerprint`] — 128-bit structural fingerprints built from a
//!   canonical byte stream. Callers (see `lightyear::engine`) encode the
//!   *resolved check body* — transfer function, assume/ensure
//!   predicates, and the attribute-universe slice — and deliberately
//!   exclude router names, node/edge ids and route-map names, so the
//!   fingerprint is invariant under router/edge renaming and identical
//!   template instantiations collapse to one solver call.
//! * [`cache`] — a sharded fingerprint-keyed result cache with optional
//!   JSON spill to disk, powering cross-router dedup within a run and
//!   incremental re-verification across runs.
//! * [`deque`] + [`executor`] — a work-stealing thread pool (per-worker
//!   deques plus steal-half balancing, `--jobs` configurable) whose
//!   result assembly is by submission index, so reports are
//!   deterministic regardless of completion order.
//! * [`orchestrate`] — the glue: group jobs by fingerprint, consult the
//!   cache, execute one representative per structure, replicate results
//!   to every duplicate, and report [`RunStats`].
//!
//! ## Fingerprint canonicalization rules
//!
//! A fingerprint must identify the *mathematical content* of a check and
//! nothing else. The rules callers follow:
//!
//! 1. **No identities.** Never write router names, node ids, edge ids,
//!    check ids, or route-map *names*; write route-map *contents*.
//! 2. **Self-delimiting writes.** Every variable-length write is length-
//!    prefixed ([`fingerprint::FpHasher::write_bytes`]) and every
//!    composite is introduced by a tag ([`fingerprint::FpHasher::write_tag`]),
//!    so distinct structures cannot collide by concatenation ambiguity.
//! 3. **Canonical order.** Unordered collections (community sets, ghost
//!    update tables) are written in sorted order; ordered collections
//!    (route-map entries) in their semantic order.
//! 4. **Version the format.** Streams start with a format-version tag;
//!    bump it whenever the encoding of any component changes, which
//!    safely invalidates spilled caches.
//! 5. **Hash the universe slice.** The SMT encoding of a predicate
//!    depends on the attribute universe (community/regex/ghost tables),
//!    so the universe digest is part of every fingerprint; two checks
//!    are only merged when their formulas would be bit-identical.

pub mod cache;
pub mod deque;
pub mod executor;
pub mod fingerprint;
pub mod orchestrate;

pub use cache::{CacheSnapshot, ResultCache};
pub use executor::Executor;
pub use fingerprint::{Fingerprint, FpHasher};
pub use orchestrate::{run_deduped, run_grouped, Batch, RunConfig, RunStats};
