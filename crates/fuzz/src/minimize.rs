//! Greedy case minimization.
//!
//! The compat `proptest` shim has no shrinking, so discrepancies found
//! by the campaign runner are reduced here instead: re-run the failing
//! oracle after every candidate reduction and keep the ones that still
//! fail. Two reduction spaces:
//!
//! * **edit sequences** (for [`OracleId::EditSequence`] failures):
//!   drop edit seeds one at a time — the remaining sequence replays
//!   deterministically from the family's pristine configs;
//! * **configurations** (everything else): drop whole routers, then
//!   route-map entries, then neighbor blocks, then unreferenced list
//!   objects, in repeated passes until a fixed point.
//!
//! The result is a **replayable repro directory**: the reduced configs
//! as `*.cfg` plus `repro.json` naming the family, oracle and seeds, so
//! `lightyear fuzz --replay DIR` (or [`replay`]) re-runs exactly the
//! failing check.

use crate::oracle::{parity_oracle, sim_oracle, verification_fails, Discrepancy, OracleId};
use crate::try_quiet;
use crate::zoo::{case_size, FamilyParams};
use bgp_config::ast::ConfigAst;
use bgp_config::{parse_config, print_config};
use std::path::Path;

/// A failing case, self-contained enough to re-run and reduce.
#[derive(Clone, Debug)]
pub struct FailingCase {
    /// The generator parameters.
    pub params: FamilyParams,
    /// The (possibly reduced) configuration set the oracle fails on.
    /// For [`OracleId::EditSequence`] this is ignored — the sequence
    /// replays from the family's pristine configs.
    pub configs: Vec<ConfigAst>,
    /// The edit-seed sequence ([`OracleId::EditSequence`] only).
    pub edit_seeds: Vec<u64>,
    /// The oracle that fails.
    pub oracle: OracleId,
    /// The deterministic simulation seed the oracle runs under.
    pub sim_seed: u64,
    /// Announcement rounds the simulation oracle ran with — recorded so
    /// a discrepancy that first appears in a late round still
    /// reproduces under minimization and `--replay`.
    pub sim_rounds: usize,
    /// Human description of the original discrepancy.
    pub detail: String,
}

/// Fallback simulation round count for repro files that predate the
/// recorded `sim_rounds` field.
const REPLAY_SIM_ROUNDS: usize = 4;

/// Re-run a failing case's oracle. `Some(d)` when it still fails,
/// `None` when it passes (or the candidate no longer builds).
pub fn rerun(fc: &FailingCase) -> Option<Discrepancy> {
    let fc = fc.clone();
    try_quiet(move || match fc.oracle {
        OracleId::EditSequence => {
            // Recorded seeds replay through the same driver that
            // generated them, so every failure mode — including
            // unbuildable configs and cosmetic-classification
            // disagreements — is re-checked identically.
            let case = fc.params.build();
            crate::oracle::run_edit_sequence(&case, &fc.edit_seeds)
                .1
                .err()
        }
        OracleId::SimGrid => {
            let case = fc.params.build_from(fc.configs.clone());
            sim_oracle(&case, fc.sim_seed, fc.sim_rounds).err()
        }
        OracleId::ModeParity => {
            let case = fc.params.build_from(fc.configs.clone());
            parity_oracle(&case).err()
        }
        OracleId::Verify => {
            let case = fc.params.build_from(fc.configs.clone());
            verification_fails(&case).then(|| Discrepancy {
                oracle: OracleId::Verify,
                detail: "verification still fails".into(),
            })
        }
        OracleId::BugMissed => {
            // The failure is the bug *escaping*: the case reproduces
            // while bug_oracle still objects (missed bug, or the
            // soundness-discrepancy shape where the simulator trips a
            // "proved" invariant).
            let case = fc.params.build_from(fc.configs.clone());
            crate::oracle::bug_oracle(&case, fc.sim_seed).err()
        }
        OracleId::PortfolioParity => {
            // sim_seed doubles as the recorded race seed.
            let case = fc.params.build_from(fc.configs.clone());
            crate::oracle::portfolio_oracle(&case, fc.sim_seed).err()
        }
        OracleId::CachePoison => {
            // sim_seed doubles as the recorded corruption seed.
            let case = fc.params.build_from(fc.configs.clone());
            crate::oracle::cache_poison_oracle(&case, fc.sim_seed).err()
        }
    })
    .flatten()
}

/// Greedily minimize a failing case. The returned case still fails its
/// oracle (re-verified after every kept reduction) and is never larger
/// than the input.
pub fn minimize(fc: &FailingCase) -> FailingCase {
    let mut best = fc.clone();
    if best.oracle == OracleId::EditSequence {
        // Reduce the edit sequence.
        let mut i = 0;
        while i < best.edit_seeds.len() {
            let mut candidate = best.clone();
            candidate.edit_seeds.remove(i);
            if rerun(&candidate).is_some() {
                best = candidate; // still fails without this edit
            } else {
                i += 1;
            }
        }
        return best;
    }
    // Config-space reduction, repeated passes to a fixed point.
    for _pass in 0..4 {
        let before = case_size(&best.configs);
        // 1. Whole routers.
        let mut i = 0;
        while i < best.configs.len() {
            if best.configs.len() <= 1 {
                break;
            }
            let mut candidate = best.clone();
            candidate.configs.remove(i);
            if rerun(&candidate).is_some() {
                best = candidate;
            } else {
                i += 1;
            }
        }
        // 2. Route-map entries.
        for ci in 0..best.configs.len() {
            let maps: Vec<String> = best.configs[ci].route_maps.keys().cloned().collect();
            for m in maps {
                let mut ei = 0;
                loop {
                    let len = best.configs[ci]
                        .route_maps
                        .get(&m)
                        .map(Vec::len)
                        .unwrap_or(0);
                    if ei >= len {
                        break;
                    }
                    let mut candidate = best.clone();
                    candidate.configs[ci]
                        .route_maps
                        .get_mut(&m)
                        .unwrap()
                        .remove(ei);
                    if rerun(&candidate).is_some() {
                        best = candidate;
                    } else {
                        ei += 1;
                    }
                }
            }
        }
        // 3. Neighbor blocks.
        for ci in 0..best.configs.len() {
            let addrs: Vec<String> = best.configs[ci]
                .router_bgp
                .as_ref()
                .map(|b| b.neighbors.keys().cloned().collect())
                .unwrap_or_default();
            for addr in addrs {
                let mut candidate = best.clone();
                if let Some(b) = candidate.configs[ci].router_bgp.as_mut() {
                    b.neighbors.remove(&addr);
                }
                if rerun(&candidate).is_some() {
                    best = candidate;
                }
            }
        }
        // 4. List objects (prefix / community / as-path).
        for ci in 0..best.configs.len() {
            let names: Vec<(u8, String)> = {
                let c = &best.configs[ci];
                c.prefix_lists
                    .keys()
                    .map(|n| (0u8, n.clone()))
                    .chain(c.community_lists.keys().map(|n| (1u8, n.clone())))
                    .chain(c.aspath_acls.keys().map(|n| (2u8, n.clone())))
                    .collect()
            };
            for (kind, name) in names {
                let mut candidate = best.clone();
                let c = &mut candidate.configs[ci];
                match kind {
                    0 => {
                        c.prefix_lists.remove(&name);
                    }
                    1 => {
                        c.community_lists.remove(&name);
                    }
                    _ => {
                        c.aspath_acls.remove(&name);
                    }
                }
                if rerun(&candidate).is_some() {
                    best = candidate;
                }
            }
        }
        if case_size(&best.configs) == before {
            break; // fixed point
        }
    }
    best
}

/// Write a failing case as a replayable repro directory: the configs as
/// `*.cfg` plus `repro.json`. Any `*.cfg` left over from a previous
/// repro in the same directory is removed first — `read_repro` loads
/// every `.cfg` it finds, so a stale foreign router file would replay a
/// merged, wrong network.
pub fn write_repro(fc: &FailingCase, dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for entry in std::fs::read_dir(dir)? {
        let p = entry?.path();
        if p.extension().and_then(|x| x.to_str()) == Some("cfg") {
            std::fs::remove_file(&p)?;
        }
    }
    if fc.oracle != OracleId::EditSequence {
        for c in &fc.configs {
            std::fs::write(dir.join(format!("{}.cfg", c.hostname)), print_config(c))?;
        }
    }
    let json = serde_json::json!({
        "params": fc.params.encode(),
        "oracle": fc.oracle.name(),
        "sim_seed": fc.sim_seed,
        "sim_rounds": fc.sim_rounds as i64,
        "edit_seeds": fc.edit_seeds.iter().map(|&s| s as i64).collect::<Vec<_>>(),
        "detail": fc.detail,
    });
    std::fs::write(
        dir.join("repro.json"),
        serde_json::to_string_pretty(&json).unwrap_or_default(),
    )
}

/// Load a repro directory back into a [`FailingCase`].
pub fn read_repro(dir: &Path) -> Result<FailingCase, String> {
    let text = std::fs::read_to_string(dir.join("repro.json"))
        .map_err(|e| format!("cannot read {}/repro.json: {e}", dir.display()))?;
    let v: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("bad repro.json: {e}"))?;
    let params = v["params"]
        .as_str()
        .and_then(FamilyParams::decode)
        .ok_or("repro.json: bad params")?;
    let oracle = v["oracle"]
        .as_str()
        .and_then(OracleId::parse)
        .ok_or("repro.json: bad oracle")?;
    let sim_seed = v["sim_seed"].as_u64().unwrap_or(0);
    let sim_rounds = v["sim_rounds"]
        .as_u64()
        .map(|n| n as usize)
        .unwrap_or(REPLAY_SIM_ROUNDS);
    let edit_seeds: Vec<u64> = v["edit_seeds"]
        .as_array()
        .map(|xs| xs.iter().filter_map(|x| x.as_u64()).collect())
        .unwrap_or_default();
    let mut configs = Vec::new();
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|x| x.to_str()) == Some("cfg"))
        .collect();
    paths.sort();
    for p in paths {
        let text = std::fs::read_to_string(&p).map_err(|e| format!("cannot read {p:?}: {e}"))?;
        configs.push(parse_config(&text).map_err(|e| format!("{}: {e}", p.display()))?);
    }
    if configs.is_empty() {
        configs = params.configs();
    }
    Ok(FailingCase {
        params,
        configs,
        edit_seeds,
        oracle,
        sim_seed,
        sim_rounds,
        detail: v["detail"].as_str().unwrap_or("").to_string(),
    })
}

/// Replay a repro directory: `Some(discrepancy)` when the failure still
/// reproduces.
pub fn replay(dir: &Path) -> Result<Option<Discrepancy>, String> {
    Ok(rerun(&read_repro(dir)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::FamilyId;

    /// An injected bug on a deliberately oversized RR case must minimize
    /// to a strictly smaller, still-failing, replayable repro.
    #[test]
    fn injected_bug_minimizes_to_smaller_repro() {
        let params = FamilyParams::Rr(netgen::rr::RrParams {
            reflectors: 2,
            clients_per_reflector: 2,
            seed: 0,
        });
        let mut configs = params.configs();
        assert!(netgen::mutate::drop_community_sets(&mut configs, "C0-0", "FROM-EXT").is_some());
        let fc = FailingCase {
            params,
            configs,
            edit_seeds: Vec::new(),
            oracle: OracleId::Verify,
            sim_seed: 1,
            sim_rounds: 4,
            detail: "test".into(),
        };
        assert!(
            rerun(&fc).is_some(),
            "the injected bug must fail verification"
        );
        let original = case_size(&fc.configs);
        let min = minimize(&fc);
        assert!(rerun(&min).is_some(), "minimized case must still fail");
        assert!(
            case_size(&min.configs) < original,
            "minimizer must strictly reduce: {} -> {}",
            original,
            case_size(&min.configs)
        );

        // Round-trip through a repro directory.
        let dir = std::env::temp_dir().join(format!("lightyear-fuzz-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        write_repro(&min, &dir).unwrap();
        let replayed = replay(&dir).unwrap();
        assert!(replayed.is_some(), "repro must replay to the same failure");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn params_decode_covers_all_families() {
        for f in FamilyId::all() {
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
            let p = FamilyParams::random(*f, &mut rng);
            assert_eq!(FamilyParams::decode(&p.encode()).unwrap().family(), *f);
        }
    }
}
