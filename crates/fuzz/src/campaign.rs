//! The campaign runner: seeded case generation over the topology zoo,
//! all oracles per case, injected-bug detection sweeps, and throughput
//! accounting for the CI benchmark record.

use crate::minimize::FailingCase;
use crate::oracle::{
    bug_oracle, cache_poison_oracle, edit_oracle, parity_oracle, portfolio_oracle, sim_oracle,
    Discrepancy, OracleId, BUG_ORACLE_SIM_ROUNDS,
};
use crate::zoo::{FamilyId, FamilyParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Campaign configuration.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Master seed: the whole campaign is a pure function of it.
    pub seed: u64,
    /// Cases to run.
    pub cases: usize,
    /// Families on the menu (round-robin).
    pub families: Vec<FamilyId>,
    /// Edit-sequence length per case.
    pub edit_steps: usize,
    /// Announcement rounds per case for the simulation oracle (each
    /// round runs the full 2³ `SimOptions` grid).
    pub sim_rounds: usize,
    /// Also sweep the curated injected-bug sample once per family cycle.
    pub inject: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0,
            cases: 50,
            families: FamilyId::all().to_vec(),
            edit_steps: 3,
            sim_rounds: 3,
            inject: true,
        }
    }
}

/// What a campaign did.
#[derive(Clone, Debug, Default)]
pub struct CampaignOutcome {
    /// Cases completed (including the one that tripped, if any).
    pub cases_run: usize,
    /// Cases per family.
    pub per_family: BTreeMap<String, usize>,
    /// Wall-clock per family (case generation plus every oracle).
    pub per_family_elapsed: BTreeMap<String, Duration>,
    /// Cumulative wall-clock per oracle across the whole campaign.
    pub per_oracle_elapsed: BTreeMap<String, Duration>,
    /// Injected bugs swept / caught.
    pub injections: usize,
    /// Injected bugs caught by an oracle.
    pub injections_caught: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// The first discrepancy, with enough context to minimize, if any.
    pub failure: Option<(FailingCase, Discrepancy)>,
}

impl CampaignOutcome {
    /// Campaign throughput in cases per second.
    pub fn cases_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.cases_run as f64 / secs
        } else {
            0.0
        }
    }

    /// The one-line human summary (printed by `lightyear fuzz` and
    /// grepped by the CI smoke step).
    pub fn summary(&self) -> String {
        let fams: Vec<String> = self
            .per_family
            .iter()
            .map(|(f, n)| format!("{f} {n}"))
            .collect();
        let mut s = format!(
            "fuzz: {} cases green across {} families [{}]",
            self.cases_run,
            self.per_family.len(),
            fams.join(", ")
        );
        if self.injections > 0 {
            s.push_str(&format!(
                "; {}/{} injected bugs caught",
                self.injections_caught, self.injections
            ));
        }
        s.push_str(&format!(
            "; {:.1} cases/s ({:?})",
            self.cases_per_sec(),
            self.elapsed
        ));
        if let Some((_, d)) = &self.failure {
            s = format!("fuzz: DISCREPANCY after {} cases: {d}", self.cases_run);
        }
        s
    }

    /// The machine-readable record written to `BENCH_fuzz.json`.
    pub fn to_json(&self, cfg: &CampaignConfig) -> serde_json::Value {
        let per_family = serde_json::Value::Object(
            self.per_family
                .iter()
                .map(|(f, &n)| {
                    let secs = self
                        .per_family_elapsed
                        .get(f)
                        .map(Duration::as_secs_f64)
                        .unwrap_or(0.0);
                    let rate = if secs > 0.0 { n as f64 / secs } else { 0.0 };
                    (
                        f.clone(),
                        serde_json::json!({
                            "cases": n as u64,
                            "elapsed_seconds": secs,
                            "cases_per_sec": rate,
                        }),
                    )
                })
                .collect(),
        );
        let per_oracle = serde_json::Value::Object(
            self.per_oracle_elapsed
                .iter()
                .map(|(o, d)| {
                    (
                        o.clone(),
                        serde_json::json!({ "elapsed_seconds": d.as_secs_f64() }),
                    )
                })
                .collect(),
        );
        serde_json::json!({
            "seed": cfg.seed as i64,
            "cases": self.cases_run as i64,
            "families": self.per_family.keys().cloned().collect::<Vec<_>>(),
            "per_family": per_family,
            "per_oracle": per_oracle,
            "injections": self.injections as i64,
            "injections_caught": self.injections_caught as i64,
            "elapsed_seconds": self.elapsed.as_secs_f64(),
            "cases_per_sec": self.cases_per_sec(),
            "green": self.failure.is_none(),
        })
    }
}

/// SplitMix64: the per-case seed derivation.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ i.wrapping_mul(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The live progress counter for a family's completed cases, scraped
/// mid-campaign through `fuzz --listen` (the outcome map carries the
/// same totals post-hoc).
fn family_counter(f: FamilyId) -> &'static str {
    match f {
        FamilyId::Figure1 => "fuzz.cases.figure1",
        FamilyId::FullMesh => "fuzz.cases.fullmesh",
        FamilyId::Wan => "fuzz.cases.wan",
        FamilyId::Rr => "fuzz.cases.rr",
        FamilyId::Stub => "fuzz.cases.stub",
        FamilyId::HubSpoke => "fuzz.cases.hubspoke",
    }
}

/// The live wall-time counter (nanoseconds) for one oracle.
fn oracle_counter(oracle: &str) -> &'static str {
    match oracle {
        "sim_grid" => "fuzz.oracle.sim_grid_ns",
        "mode_parity" => "fuzz.oracle.mode_parity_ns",
        "edit_sequence" => "fuzz.oracle.edit_sequence_ns",
        "portfolio_parity" => "fuzz.oracle.portfolio_parity_ns",
        "cache_poison" => "fuzz.oracle.cache_poison_ns",
        _ => "fuzz.oracle.bug_injection_ns",
    }
}

/// Run a campaign. Stops at the first discrepancy (recorded with a
/// ready-to-minimize [`FailingCase`]); otherwise runs to `cfg.cases`.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignOutcome {
    let t0 = Instant::now();
    let mut out = CampaignOutcome::default();
    assert!(!cfg.families.is_empty(), "campaign needs >= 1 family");
    for i in 0..cfg.cases {
        let family = cfg.families[i % cfg.families.len()];
        let t_case = Instant::now();
        let failure = run_case(cfg, i, family, &mut out);
        out.cases_run = i + 1;
        *out.per_family.entry(family.name().to_string()).or_default() += 1;
        *out.per_family_elapsed
            .entry(family.name().to_string())
            .or_default() += t_case.elapsed();
        obs::add("fuzz.cases", 1);
        obs::add(family_counter(family), 1);
        if let Some(f) = failure {
            out.failure = Some(f);
            break;
        }
    }
    out.elapsed = t0.elapsed();
    out
}

/// Charge an oracle invocation's wall time to its cumulative total
/// (and mirror it into the live registry for mid-campaign scrapes).
fn charge(out: &mut CampaignOutcome, oracle: &str, t: Instant) {
    let elapsed = t.elapsed();
    *out.per_oracle_elapsed
        .entry(oracle.to_string())
        .or_default() += elapsed;
    if obs::enabled() {
        obs::add(
            oracle_counter(oracle),
            elapsed.as_nanos().min(u64::MAX as u128) as u64,
        );
        obs::observe(oracle_counter_hist(oracle), elapsed);
    }
}

/// The per-oracle latency histogram behind the counter (quantiles in
/// `/metrics`).
fn oracle_counter_hist(oracle: &str) -> &'static str {
    match oracle {
        "sim_grid" => "fuzz.oracle.sim_grid",
        "mode_parity" => "fuzz.oracle.mode_parity",
        "edit_sequence" => "fuzz.oracle.edit_sequence",
        "portfolio_parity" => "fuzz.oracle.portfolio_parity",
        "cache_poison" => "fuzz.oracle.cache_poison",
        _ => "fuzz.oracle.bug_injection",
    }
}

/// One campaign case: generate, run every oracle (charging each one's
/// wall time), sweep injected bugs on the first family cycle. Returns
/// the first discrepancy, ready to minimize.
fn run_case(
    cfg: &CampaignConfig,
    i: usize,
    family: FamilyId,
    out: &mut CampaignOutcome,
) -> Option<(FailingCase, Discrepancy)> {
    let case_seed = mix(cfg.seed, i as u64);
    let mut rng = StdRng::seed_from_u64(case_seed);
    let params = FamilyParams::random(family, &mut rng);
    let case = params.build();

    // One FailingCase shape per oracle, varying only in what the
    // replay needs (oracle id, configs, seeds).
    let failing = |oracle: OracleId,
                   configs: Vec<bgp_config::ast::ConfigAst>,
                   edit_seeds: Vec<u64>,
                   sim_seed: u64,
                   sim_rounds: usize,
                   d: &Discrepancy| {
        FailingCase {
            params,
            configs,
            edit_seeds,
            oracle,
            sim_seed,
            sim_rounds,
            detail: d.detail.clone(),
        }
    };
    // Oracle 1: simulation grid.
    let sim_seed = mix(case_seed, 1);
    let t = Instant::now();
    let sim = sim_oracle(&case, sim_seed, cfg.sim_rounds);
    charge(out, "sim_grid", t);
    if let Err(d) = sim {
        let fc = failing(
            OracleId::SimGrid,
            case.configs.clone(),
            Vec::new(),
            sim_seed,
            cfg.sim_rounds,
            &d,
        );
        return Some((fc, d));
    }
    // Oracle 2: mode parity.
    let t = Instant::now();
    let parity = parity_oracle(&case);
    charge(out, "mode_parity", t);
    if let Err(d) = parity {
        let fc = failing(
            OracleId::ModeParity,
            case.configs.clone(),
            Vec::new(),
            sim_seed,
            cfg.sim_rounds,
            &d,
        );
        return Some((fc, d));
    }
    // Oracle 3: edit sequences.
    if cfg.edit_steps > 0 {
        let t = Instant::now();
        let (seeds, r) = edit_oracle(&case, mix(case_seed, 2), cfg.edit_steps);
        charge(out, "edit_sequence", t);
        if let Err(d) = r {
            let fc = failing(
                OracleId::EditSequence,
                case.configs.clone(),
                seeds,
                sim_seed,
                cfg.sim_rounds,
                &d,
            );
            return Some((fc, d));
        }
    }
    // Oracle 5: portfolio parity under a per-case race seed.
    let pf_seed = mix(case_seed, 4);
    let t = Instant::now();
    let pf = portfolio_oracle(&case, pf_seed);
    charge(out, "portfolio_parity", t);
    if let Err(d) = pf {
        let fc = failing(
            OracleId::PortfolioParity,
            case.configs.clone(),
            Vec::new(),
            pf_seed,
            cfg.sim_rounds,
            &d,
        );
        return Some((fc, d));
    }
    // Oracle 6: cache poisoning — a corrupted spill re-proves, never
    // replays or panics.
    let poison_seed = mix(case_seed, 5);
    let t = Instant::now();
    let poison = cache_poison_oracle(&case, poison_seed);
    charge(out, "cache_poison", t);
    if let Err(d) = poison {
        let fc = failing(
            OracleId::CachePoison,
            case.configs.clone(),
            Vec::new(),
            poison_seed,
            cfg.sim_rounds,
            &d,
        );
        return Some((fc, d));
    }
    // Injected-bug sweep: once per family cycle.
    if cfg.inject && i < cfg.families.len() {
        for (desc, inject) in crate::oracle::injection_sample(&params) {
            let mut mutated = params.configs();
            if !inject(&mut mutated) {
                continue;
            }
            out.injections += 1;
            obs::add("fuzz.injections", 1);
            let bug_case = params.build_from(mutated.clone());
            let t = Instant::now();
            let caught = bug_oracle(&bug_case, mix(case_seed, 3));
            charge(out, "bug_injection", t);
            match caught {
                Ok(()) => {
                    out.injections_caught += 1;
                    obs::add("fuzz.injections_caught", 1);
                }
                Err(d) => {
                    // The failing condition is the bug ESCAPING, so
                    // the repro's oracle must be BugMissed — a
                    // Verify repro would "reproduce" only while
                    // verification fails, the exact inverse.
                    // (bug_oracle runs its own fixed round count;
                    // sim_rounds is recorded for the escalation
                    // path inside it.)
                    let mut fc = failing(
                        OracleId::BugMissed,
                        mutated,
                        Vec::new(),
                        mix(case_seed, 3),
                        BUG_ORACLE_SIM_ROUNDS,
                        &d,
                    );
                    fc.detail = format!("{desc}: {}", d.detail);
                    return Some((fc, d));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_runs_green_and_catches_injections() {
        let cfg = CampaignConfig {
            seed: 11,
            cases: FamilyId::all().len(),
            edit_steps: 1,
            sim_rounds: 1,
            inject: true,
            ..CampaignConfig::default()
        };
        let out = run_campaign(&cfg);
        assert!(
            out.failure.is_none(),
            "campaign tripped: {}",
            out.failure
                .as_ref()
                .map(|(_, d)| d.to_string())
                .unwrap_or_default()
        );
        assert_eq!(out.cases_run, cfg.cases);
        assert_eq!(out.per_family.len(), FamilyId::all().len());
        assert!(out.injections >= FamilyId::all().len());
        assert_eq!(
            out.injections_caught, out.injections,
            "every curated injected bug must be caught"
        );
        assert!(out.summary().contains("cases green"));
        // Timing accounting: every family that ran has an elapsed
        // entry, and every oracle that ran was charged.
        assert_eq!(
            out.per_family_elapsed.keys().collect::<Vec<_>>(),
            out.per_family.keys().collect::<Vec<_>>()
        );
        for oracle in [
            "sim_grid",
            "mode_parity",
            "edit_sequence",
            "cache_poison",
            "bug_injection",
        ] {
            assert!(
                out.per_oracle_elapsed.contains_key(oracle),
                "missing per-oracle time for {oracle}"
            );
        }
        let json = out.to_json(&cfg);
        let text = serde_json::to_string(&json).unwrap();
        for key in ["per_family", "per_oracle", "cases_per_sec"] {
            assert!(text.contains(key), "campaign record lacks {key}");
        }
    }

    #[test]
    fn campaigns_are_seed_deterministic() {
        let cfg = CampaignConfig {
            seed: 5,
            cases: 2,
            edit_steps: 1,
            sim_rounds: 1,
            inject: false,
            families: vec![FamilyId::Rr, FamilyId::Stub],
        };
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.per_family, b.per_family);
        assert_eq!(a.cases_run, b.cases_run);
        assert!(a.failure.is_none() && b.failure.is_none());
    }
}
