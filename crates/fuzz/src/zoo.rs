//! The topology zoo: every netgen family behind one uniform interface,
//! plus the per-case metadata the oracles need (which externals announce
//! what, and how ghost provenance is decided on concrete routes).
//!
//! Provenance is keyed by `(prefix, origin ASN)` — not prefix alone —
//! so **anycast** announcements (the same prefix from several externals,
//! as the multi-homed stub family does deliberately) stay unambiguous:
//! each announcer originates the shared prefix from its own AS.

use bgp_config::ast::ConfigAst;
use bgp_config::Network;
use bgp_model::topology::EdgeId;
use bgp_model::{Ipv4Prefix, Route};
use lightyear::ghost::{GhostAttr, GhostUpdate};
use lightyear::invariants::NetworkInvariants;
use lightyear::safety::SafetyProperty;
use netgen::{figure1, fullmesh, hubspoke, rr, stub, wan};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeMap;
use std::fmt;

/// The topology families on the fuzzing menu.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FamilyId {
    /// The paper's Figure-1 running example.
    Figure1,
    /// The §6.2 iBGP full mesh.
    FullMesh,
    /// The §6.1 cloud WAN.
    Wan,
    /// The iBGP route-reflector hierarchy.
    Rr,
    /// The multi-homed stub with anycast.
    Stub,
    /// The hub-and-spoke enterprise WAN.
    HubSpoke,
}

impl FamilyId {
    /// Every family, in menu order.
    pub fn all() -> &'static [FamilyId] {
        &[
            FamilyId::Figure1,
            FamilyId::FullMesh,
            FamilyId::Wan,
            FamilyId::Rr,
            FamilyId::Stub,
            FamilyId::HubSpoke,
        ]
    }

    /// The CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            FamilyId::Figure1 => "figure1",
            FamilyId::FullMesh => "fullmesh",
            FamilyId::Wan => "wan",
            FamilyId::Rr => "rr",
            FamilyId::Stub => "stub",
            FamilyId::HubSpoke => "hubspoke",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<FamilyId> {
        FamilyId::all().iter().copied().find(|f| f.name() == s)
    }
}

impl fmt::Display for FamilyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Concrete generator parameters for one case: a family plus its sizes.
#[derive(Clone, Copy, Debug)]
pub enum FamilyParams {
    /// Figure 1 (fixed size).
    Figure1,
    /// Full mesh of `n` routers.
    FullMesh {
        /// Mesh size.
        n: usize,
    },
    /// The cloud WAN.
    Wan(wan::WanParams),
    /// The route-reflector hierarchy.
    Rr(rr::RrParams),
    /// The multi-homed stub.
    Stub(stub::StubParams),
    /// The hub-and-spoke star.
    HubSpoke(hubspoke::HubParams),
}

impl FamilyParams {
    /// The family behind these parameters.
    pub fn family(&self) -> FamilyId {
        match self {
            FamilyParams::Figure1 => FamilyId::Figure1,
            FamilyParams::FullMesh { .. } => FamilyId::FullMesh,
            FamilyParams::Wan(_) => FamilyId::Wan,
            FamilyParams::Rr(_) => FamilyId::Rr,
            FamilyParams::Stub(_) => FamilyId::Stub,
            FamilyParams::HubSpoke(_) => FamilyId::HubSpoke,
        }
    }

    /// Draw fuzz-sized parameters for a family (small networks: the
    /// oracles re-verify each case several times over).
    pub fn random(family: FamilyId, rng: &mut StdRng) -> FamilyParams {
        let seed = rng.random_range(0u64..1000);
        match family {
            FamilyId::Figure1 => FamilyParams::Figure1,
            FamilyId::FullMesh => FamilyParams::FullMesh {
                n: rng.random_range(2usize..5),
            },
            FamilyId::Wan => FamilyParams::Wan(wan::WanParams {
                regions: rng.random_range(1usize..3),
                routers_per_region: rng.random_range(1usize..3),
                edge_routers: rng.random_range(1usize..3),
                peers_per_edge: rng.random_range(1usize..3),
                seed,
            }),
            FamilyId::Rr => FamilyParams::Rr(rr::RrParams {
                reflectors: rng.random_range(1usize..4),
                clients_per_reflector: rng.random_range(2usize..4),
                seed,
            }),
            FamilyId::Stub => FamilyParams::Stub(stub::StubParams {
                borders: rng.random_range(2usize..5),
                seed,
            }),
            FamilyId::HubSpoke => FamilyParams::HubSpoke(hubspoke::HubParams {
                spokes: rng.random_range(1usize..5),
                seed,
            }),
        }
    }

    /// Compact one-line codec (stored in repro files; see
    /// [`FamilyParams::decode`]).
    pub fn encode(&self) -> String {
        match self {
            FamilyParams::Figure1 => "figure1".into(),
            FamilyParams::FullMesh { n } => format!("fullmesh:{n}"),
            FamilyParams::Wan(p) => format!(
                "wan:{},{},{},{},{}",
                p.regions, p.routers_per_region, p.edge_routers, p.peers_per_edge, p.seed
            ),
            FamilyParams::Rr(p) => {
                format!("rr:{},{},{}", p.reflectors, p.clients_per_reflector, p.seed)
            }
            FamilyParams::Stub(p) => format!("stub:{},{}", p.borders, p.seed),
            FamilyParams::HubSpoke(p) => format!("hubspoke:{},{}", p.spokes, p.seed),
        }
    }

    /// Parse the [`FamilyParams::encode`] form.
    pub fn decode(s: &str) -> Option<FamilyParams> {
        let (name, rest) = s.split_once(':').unwrap_or((s, ""));
        let nums: Vec<u64> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',')
                .map(|x| x.parse().ok())
                .collect::<Option<_>>()?
        };
        match (name, nums.as_slice()) {
            ("figure1", []) => Some(FamilyParams::Figure1),
            ("fullmesh", [n]) => Some(FamilyParams::FullMesh { n: *n as usize }),
            ("wan", [r, rpr, e, p, s]) => Some(FamilyParams::Wan(wan::WanParams {
                regions: *r as usize,
                routers_per_region: *rpr as usize,
                edge_routers: *e as usize,
                peers_per_edge: *p as usize,
                seed: *s,
            })),
            ("rr", [r, c, s]) => Some(FamilyParams::Rr(rr::RrParams {
                reflectors: *r as usize,
                clients_per_reflector: *c as usize,
                seed: *s,
            })),
            ("stub", [b, s]) => Some(FamilyParams::Stub(stub::StubParams {
                borders: *b as usize,
                seed: *s,
            })),
            ("hubspoke", [n, s]) => Some(FamilyParams::HubSpoke(hubspoke::HubParams {
                spokes: *n as usize,
                seed: *s,
            })),
            _ => None,
        }
    }

    /// The family's pristine configuration ASTs.
    pub fn configs(&self) -> Vec<ConfigAst> {
        match self {
            FamilyParams::Figure1 => figure1::configs(),
            FamilyParams::FullMesh { n } => fullmesh::configs(*n),
            FamilyParams::Wan(p) => wan::configs(p),
            FamilyParams::Rr(p) => rr::configs(p),
            FamilyParams::Stub(p) => stub::configs(p),
            FamilyParams::HubSpoke(p) => hubspoke::configs(p),
        }
    }

    /// Build the pristine case.
    pub fn build(&self) -> FuzzCase {
        self.build_from(self.configs())
    }

    /// Build a case from (possibly mutated) configuration ASTs. Panics
    /// when the configs no longer lower — callers probing reductions
    /// catch that (see `minimize`).
    pub fn build_from(&self, configs: Vec<ConfigAst>) -> FuzzCase {
        let kept = configs.clone();
        let (network, ghosts, suites) = match self {
            FamilyParams::Figure1 => {
                let s = figure1::build_from_configs(configs);
                let suites = vec![Suite {
                    name: "no-transit".into(),
                    props: vec![s.no_transit.clone()],
                    inv: s.no_transit_inv.clone(),
                }];
                (s.network, vec![s.ghost], suites)
            }
            FamilyParams::FullMesh { .. } => {
                let s = fullmesh::build_from_configs(configs);
                let suites = vec![Suite {
                    name: "no-transit".into(),
                    props: vec![s.property.clone()],
                    inv: s.invariants.clone(),
                }];
                (s.network, vec![s.ghost], suites)
            }
            FamilyParams::Wan(p) => {
                let s = wan::build_from_configs(p, configs);
                // Three of the §6.1 peering suites: a prefix filter, a
                // tagging action and the regional-community fence — the
                // rest share their encoding shapes with these.
                let mut suites = Vec::new();
                for (name, q) in s.peering_predicates() {
                    if !matches!(
                        name.as_str(),
                        "no-bogons" | "peer-tagged" | "no-regional-comms"
                    ) {
                        continue;
                    }
                    let (props, inv) = s.peering_property_inputs(&q);
                    suites.push(Suite { name, props, inv });
                }
                let ghost = s.from_peer_ghost();
                (s.network, vec![ghost], suites)
            }
            FamilyParams::Rr(p) => {
                let s = rr::build_from_configs(p, configs);
                let suites = vec![Suite {
                    name: "rr".into(),
                    props: s.properties.clone(),
                    inv: s.invariants.clone(),
                }];
                (s.network, vec![s.ghost], suites)
            }
            FamilyParams::Stub(p) => {
                let s = stub::build_from_configs(p, configs);
                let suites = vec![Suite {
                    name: "stub".into(),
                    props: s.properties.clone(),
                    inv: s.invariants.clone(),
                }];
                (
                    s.network,
                    vec![s.primary_ghost.clone(), s.backup_ghost.clone()],
                    suites,
                )
            }
            FamilyParams::HubSpoke(p) => {
                let s = hubspoke::build_from_configs(p, configs);
                let suites = vec![Suite {
                    name: "hubspoke".into(),
                    props: s.properties.clone(),
                    inv: s.invariants.clone(),
                }];
                (
                    s.network,
                    vec![s.site_ghost.clone(), s.inet_ghost.clone()],
                    suites,
                )
            }
        };
        let announcers = announcers(self, &network);
        FuzzCase {
            params: *self,
            configs: kept,
            network,
            ghosts,
            suites,
            announcers,
        }
    }
}

/// One verification suite of a case (verified with the case's ghosts).
#[derive(Clone)]
pub struct Suite {
    /// Display name.
    pub name: String,
    /// The properties.
    pub props: Vec<SafetyProperty>,
    /// Their shared invariants.
    pub inv: NetworkInvariants,
}

/// One external's announcement plan for the simulation oracle.
#[derive(Clone, Debug)]
pub struct Announcer {
    /// The external -> router edge announcements enter on.
    pub edge: EdgeId,
    /// The external's name.
    pub external: String,
    /// Prefixes this external may announce. The first is unique to this
    /// announcer; later entries may be shared (anycast / reused blocks).
    pub prefixes: Vec<Ipv4Prefix>,
    /// The origin ASN pinned as the last AS-path element — the other
    /// half of the provenance key.
    pub origin_asn: u32,
}

/// A generated fuzz case.
pub struct FuzzCase {
    /// The generator parameters.
    pub params: FamilyParams,
    /// The configuration ASTs the case was built from.
    pub configs: Vec<ConfigAst>,
    /// The lowered network.
    pub network: Network,
    /// Every ghost attribute any suite references.
    pub ghosts: Vec<GhostAttr>,
    /// The verification suites.
    pub suites: Vec<Suite>,
    /// The simulation announcement plan.
    pub announcers: Vec<Announcer>,
}

impl FuzzCase {
    /// A verifier configured with the case's ghosts (callers pick modes).
    pub fn verifier(&self) -> lightyear::engine::Verifier<'_> {
        let mut v = lightyear::engine::Verifier::new(&self.network.topology, &self.network.policy);
        for g in &self.ghosts {
            v = v.with_ghost(g.clone());
        }
        v
    }

    /// Ghost values for a route announced on `edge`: `SetTrue` imports
    /// make the attribute true, everything else (including `Unchanged`,
    /// since external announcements start out ghost-free) false.
    pub fn ghost_values(&self, edge: EdgeId) -> BTreeMap<String, bool> {
        self.ghosts
            .iter()
            .map(|g| {
                (
                    g.name.clone(),
                    g.import_update(edge) == GhostUpdate::SetTrue,
                )
            })
            .collect()
    }

    /// The provenance map: `(prefix, origin ASN)` -> announcing edge.
    pub fn provenance(&self) -> BTreeMap<(Ipv4Prefix, u32), EdgeId> {
        let mut m = BTreeMap::new();
        for a in &self.announcers {
            for p in &a.prefixes {
                m.insert((*p, a.origin_asn), a.edge);
            }
        }
        m
    }

    /// Total structural size (configs + route-map entries + neighbor
    /// blocks + list objects) — the metric the minimizer must strictly
    /// decrease.
    pub fn size(&self) -> usize {
        case_size(&self.configs)
    }
}

/// Structural size of a configuration set (see [`FuzzCase::size`]).
pub fn case_size(configs: &[ConfigAst]) -> usize {
    configs
        .iter()
        .map(|c| {
            1 + c.route_maps.values().map(Vec::len).sum::<usize>()
                + c.prefix_lists.len()
                + c.community_lists.len()
                + c.aspath_acls.len()
                + c.router_bgp.as_ref().map_or(0, |b| b.neighbors.len())
        })
        .sum()
}

/// The unique per-announcer prefix pool (clear of every family's bogon /
/// reused / infra / too-specific filters).
fn pool_prefix(i: usize) -> Ipv4Prefix {
    format!("20.{}.0.0/16", i % 250).parse().unwrap()
}

/// Build the announcement plan: every external edge announces a unique
/// pool prefix; the stub's providers additionally share the anycast
/// prefix and the WAN's data centers the reused block (distinct origin
/// ASNs keep provenance decidable).
fn announcers(params: &FamilyParams, network: &Network) -> Vec<Announcer> {
    let t = &network.topology;
    let mut out = Vec::new();
    let mut idx = 0usize;
    let mut edges: Vec<EdgeId> = t.edge_ids().collect();
    edges.sort();
    for e in edges {
        let edge = t.edge(e);
        if !t.node(edge.src).external {
            continue;
        }
        let name = t.node(edge.src).name.clone();
        let mut prefixes = vec![pool_prefix(idx)];
        match params {
            FamilyParams::Stub(_) if name.starts_with("PROV") => {
                prefixes.push(stub::anycast_prefix());
            }
            FamilyParams::Wan(_) if name.starts_with("DC") => {
                prefixes.push(wan::reused_prefix());
            }
            _ => {}
        }
        out.push(Announcer {
            edge: e,
            external: name,
            prefixes,
            origin_asn: 50_000 + idx as u32,
        });
        idx += 1;
    }
    out
}

/// A random announcement from one announcer: its unique prefix or a
/// shared one, with adversarial attributes (forged communities from the
/// family's own tag space, random MED / next-hop / AS-path padding).
pub fn random_announcement(a: &Announcer, rng: &mut StdRng) -> Route {
    let p = a.prefixes[rng.random_range(0..a.prefixes.len())];
    let mut path = Vec::new();
    for _ in 0..rng.random_range(0usize..3) {
        path.push(rng.random_range(1u32..500));
    }
    path.push(a.origin_asn);
    let mut r = Route::new(p)
        .with_as_path(path)
        .with_med(rng.random_range(0u32..50))
        .with_next_hop(rng.random_range(1u32..1000));
    // Adversarial communities: the families' own provenance tags, so
    // forged provenance is always on the table.
    let forged = [
        bgp_model::Community::new(100, 1),
        bgp_model::Community::new(200, 1),
        bgp_model::Community::new(300, 10),
        bgp_model::Community::new(300, 20),
        bgp_model::Community::new(400, 1),
        bgp_model::Community::new(400, 2),
        bgp_model::Community::new(100, 10),
    ];
    for _ in 0..rng.random_range(0usize..3) {
        r = r.with_community(forged[rng.random_range(0..forged.len())]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn params_codec_roundtrips() {
        let mut rng = StdRng::seed_from_u64(9);
        for f in FamilyId::all() {
            let p = FamilyParams::random(*f, &mut rng);
            let back = FamilyParams::decode(&p.encode()).unwrap();
            assert_eq!(back.encode(), p.encode());
            assert_eq!(back.family(), *f);
        }
        assert!(FamilyParams::decode("wan:1,2").is_none());
        assert!(FamilyParams::decode("nope").is_none());
    }

    #[test]
    fn every_family_builds_and_verifies() {
        for f in FamilyId::all() {
            let mut rng = StdRng::seed_from_u64(17);
            let case = FamilyParams::random(*f, &mut rng).build();
            assert!(!case.suites.is_empty(), "{f}");
            assert!(!case.announcers.is_empty(), "{f}");
            let v = case.verifier();
            for s in &case.suites {
                let report = v.verify_safety_multi(&s.props, &s.inv);
                assert!(
                    report.all_passed(),
                    "{f}/{}: {}",
                    s.name,
                    report.format_failures(&case.network.topology)
                );
            }
        }
    }

    #[test]
    fn provenance_covers_anycast() {
        let case = FamilyParams::Stub(netgen::stub::StubParams {
            borders: 3,
            seed: 0,
        })
        .build();
        let prov = case.provenance();
        let anycast = netgen::stub::anycast_prefix();
        let announcing: Vec<_> = prov.keys().filter(|(p, _)| *p == anycast).collect();
        assert_eq!(announcing.len(), 3, "each provider announces anycast");
    }
}
