//! The oracles: independent ways of deciding what a case's verdict
//! *should* be, cross-checked against each other.
//!
//! 1. **Simulation vs invariants** ([`sim_oracle`]): if the verifier
//!    proves an invariant assignment, every event of every concrete
//!    simulated trace — across the full 2³ [`SimOptions`] grid — must
//!    satisfy the invariant at its location (the paper's §4.3
//!    correctness theorem, tested differentially).
//! 2. **Mode parity** ([`parity_oracle`]): fresh per-check solving,
//!    incremental group solving, the orchestrated parallel path and the
//!    cross-property batch must render byte-identical reports.
//! 3. **Edit sequences** ([`edit_oracle`]): a long-lived
//!    [`ReverifyEngine`] fed a random edit sequence must stay
//!    byte-identical to fresh verification after every step, with
//!    cosmetic edits producing empty dirty sets.
//! 4. **Injected bugs** ([`bug_oracle`]): a seeded `netgen::mutate`
//!    bug must be caught — by verification or, failing that, by a
//!    simulated trace violating a "proved" invariant (which would be a
//!    soundness discrepancy, reported as such).
//! 5. **Portfolio parity** ([`portfolio_oracle`]): racing every check
//!    group on jittered solver clones must render reports byte-identical
//!    to sequential solving, for any race seed — the determinism
//!    contract of the portfolio layer, tested differentially.
//! 6. **Cache poisoning** ([`cache_poison_oracle`]): a `--cache-dir`
//!    spill corrupted on disk — truncated, bit-flipped, or with forged
//!    entry checksums — must reload without panicking and must never
//!    change a report byte: damaged entries are re-proved, not replayed.

use crate::zoo::{random_announcement, FuzzCase};
use bgp_model::sim::{simulate, SimOptions};
use bgp_model::trace::{check_liveness_axioms, check_safety_axioms, Event};
use lightyear::engine::{PortfolioTuning, RunMode};
use lightyear::invariants::Location;
use lightyear::reverify::ReverifyEngine;
use lightyear::Report;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Which oracle tripped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OracleId {
    /// Simulated traces vs verified invariants (the §4.3 theorem).
    SimGrid,
    /// Fresh / incremental / orchestrated / batch report parity.
    ModeParity,
    /// Reverify-vs-fresh byte identity across an edit sequence.
    EditSequence,
    /// A seeded case (usually bug-injected) whose *failing verification*
    /// is the condition under minimization.
    Verify,
    /// A bug-injected case that *escaped* every oracle (or tripped the
    /// simulator after passing verification — a soundness discrepancy):
    /// the failing condition is [`bug_oracle`] still objecting.
    BugMissed,
    /// Portfolio-raced reports vs sequential reports, byte for byte.
    PortfolioParity,
    /// Reports after reloading a corrupted cache spill vs clean reports,
    /// byte for byte (and the reload must not panic).
    CachePoison,
}

impl OracleId {
    /// Stable name (stored in repro files).
    pub fn name(&self) -> &'static str {
        match self {
            OracleId::SimGrid => "sim-grid",
            OracleId::ModeParity => "mode-parity",
            OracleId::EditSequence => "edit-sequence",
            OracleId::Verify => "verify",
            OracleId::BugMissed => "bug-missed",
            OracleId::PortfolioParity => "portfolio-parity",
            OracleId::CachePoison => "cache-poison",
        }
    }

    /// Parse the [`OracleId::name`] form.
    pub fn parse(s: &str) -> Option<OracleId> {
        [
            OracleId::SimGrid,
            OracleId::ModeParity,
            OracleId::EditSequence,
            OracleId::Verify,
            OracleId::BugMissed,
            OracleId::PortfolioParity,
            OracleId::CachePoison,
        ]
        .into_iter()
        .find(|o| o.name() == s)
    }
}

impl fmt::Display for OracleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A cross-check that failed.
#[derive(Clone, Debug)]
pub struct Discrepancy {
    /// The oracle that tripped.
    pub oracle: OracleId,
    /// What disagreed.
    pub detail: String,
}

impl Discrepancy {
    fn new(oracle: OracleId, detail: impl Into<String>) -> Self {
        Discrepancy {
            oracle,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Discrepancy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

/// The full 2³ grid over the simulator's semantic switches
/// (loop prevention × iBGP non-readvertisement × split horizon).
pub fn sim_options_grid() -> Vec<SimOptions> {
    let mut out = Vec::new();
    for lp in [true, false] {
        for nr in [true, false] {
            for sh in [true, false] {
                out.push(SimOptions {
                    loop_prevention: lp,
                    ibgp_no_readvertise: nr,
                    split_horizon: sh,
                    max_messages: 200_000,
                });
            }
        }
    }
    out
}

/// The deterministic report rendering two runs are compared by.
fn report_text(topo: &bgp_model::Topology, r: &Report) -> String {
    format!("{r}\n{}", r.format_failures(topo))
}

/// Oracle 1: verified invariants hold on every simulated trace event,
/// across the full [`sim_options_grid`], under `rounds` rounds of
/// randomized (adversarial) announcements.
pub fn sim_oracle(case: &FuzzCase, sim_seed: u64, rounds: usize) -> Result<(), Discrepancy> {
    let topo = &case.network.topology;
    let policy = &case.network.policy;
    let v = case.verifier();

    // Prove every suite once; a generated (pristine) case must verify.
    for s in &case.suites {
        let report = v.verify_safety_multi(&s.props, &s.inv);
        if !report.all_passed() {
            return Err(Discrepancy::new(
                OracleId::SimGrid,
                format!(
                    "suite {} fails to verify on the generated case:\n{}",
                    s.name,
                    report.format_failures(topo)
                ),
            ));
        }
    }

    let provenance = case.provenance();
    let grid = sim_options_grid();
    let mut rng = StdRng::seed_from_u64(sim_seed);
    for round in 0..rounds {
        let mut announcements = Vec::new();
        for a in &case.announcers {
            if rng.random_bool(0.85) {
                announcements.push((a.edge, random_announcement(a, &mut rng)));
            }
        }
        if announcements.is_empty() {
            continue;
        }
        for (oi, &opts) in grid.iter().enumerate() {
            let result = simulate(topo, policy, &announcements, opts);
            if !result.converged {
                return Err(Discrepancy::new(
                    OracleId::SimGrid,
                    format!("round {round} options #{oi}: simulation did not converge"),
                ));
            }
            if let Err(e) = check_safety_axioms(&result.trace, topo, policy) {
                return Err(Discrepancy::new(
                    OracleId::SimGrid,
                    format!("round {round} options #{oi}: invalid trace: {e}"),
                ));
            }
            if let Err(e) = check_liveness_axioms(&result.trace, topo, policy) {
                return Err(Discrepancy::new(
                    OracleId::SimGrid,
                    format!("round {round} options #{oi}: liveness axioms: {e}"),
                ));
            }
            for (i, ev) in result.trace.events.iter().enumerate() {
                let (loc, route) = match ev {
                    Event::Recv { edge, route } => (Location::Edge(*edge), route),
                    Event::Frwd { edge, route } => (Location::Edge(*edge), route),
                    Event::Slct { node, route } => (Location::Node(*node), route),
                };
                let origin = *route.as_path.last().unwrap_or(&0);
                let Some(src_edge) = provenance.get(&(route.prefix, origin)) else {
                    continue; // not one of our announcements
                };
                let ghosts = case.ghost_values(*src_edge);
                for s in &case.suites {
                    let inv = s.inv.at(topo, loc);
                    if !inv.eval(route, &ghosts) {
                        return Err(Discrepancy::new(
                            OracleId::SimGrid,
                            format!(
                                "round {round} options #{oi} event #{i}: verified invariant {inv} \
                                 of suite {} violated at {} by {route}",
                                s.name,
                                loc.display(topo)
                            ),
                        ));
                    }
                    for p in &s.props {
                        if p.location == loc && !p.pred.eval(route, &ghosts) {
                            return Err(Discrepancy::new(
                                OracleId::SimGrid,
                                format!(
                                    "round {round} options #{oi} event #{i}: verified property \
                                     {} violated at {} by {route}",
                                    p.name.as_deref().unwrap_or("?"),
                                    loc.display(topo)
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Oracle 2: every execution mode renders the same report, and the
/// cross-property batch matches per-suite runs byte for byte.
pub fn parity_oracle(case: &FuzzCase) -> Result<(), Discrepancy> {
    let topo = &case.network.topology;
    let mut baselines = Vec::new();
    for s in &case.suites {
        let fresh = case
            .verifier()
            .with_incremental(false)
            .verify_safety_multi(&s.props, &s.inv);
        let incr = case.verifier().verify_safety_multi(&s.props, &s.inv);
        let par = case
            .verifier()
            .with_mode(RunMode::Parallel)
            .with_jobs(2)
            .verify_safety_multi(&s.props, &s.inv);
        let fresh_text = report_text(topo, &fresh);
        for (mode, r) in [("incremental", &incr), ("orchestrated", &par)] {
            let t = report_text(topo, r);
            if t != fresh_text {
                return Err(Discrepancy::new(
                    OracleId::ModeParity,
                    format!(
                        "suite {}: {mode} report diverges from fresh:\n--- fresh\n{fresh_text}\n--- {mode}\n{t}",
                        s.name
                    ),
                ));
            }
        }
        baselines.push(fresh_text);
    }
    // Cross-property batch over all suites at once.
    let suites: Vec<(&[lightyear::SafetyProperty], &lightyear::NetworkInvariants)> = case
        .suites
        .iter()
        .map(|s| (s.props.as_slice(), &s.inv))
        .collect();
    let multi = case.verifier().verify_safety_batch(&suites);
    for ((s, report), baseline) in case.suites.iter().zip(&multi.reports).zip(&baselines) {
        let t = report_text(topo, report);
        if t != *baseline {
            return Err(Discrepancy::new(
                OracleId::ModeParity,
                format!(
                    "suite {}: cross-property batch diverges from fresh:\n--- fresh\n{baseline}\n--- batch\n{t}",
                    s.name
                ),
            ));
        }
    }
    Ok(())
}

/// Oracle 5: portfolio racing must never change a report byte. The
/// thresholds are forced to zero so *every* group races (production
/// defaults would skip small fuzz topologies entirely), the variant
/// count and jitter seed vary per case, and both the sequential and the
/// orchestrated path are compared against their unraced twins. Races
/// may let a jittered clone answer first with a different model or a
/// different (sound) unsat core internally, but verdicts are
/// deterministic and counterexamples re-derive on fresh one-shot
/// instances, so the rendered reports must match exactly.
pub fn portfolio_oracle(case: &FuzzCase, seed: u64) -> Result<(), Discrepancy> {
    let topo = &case.network.topology;
    let tuning = PortfolioTuning {
        k: 2 + (seed % (lightyear::smt::PORTFOLIO_MAX_K as u64 - 1)) as usize,
        min_checks: 1,
        min_clauses: 0,
        seed,
    };
    for s in &case.suites {
        for (mode, configure) in [("sequential", None), ("orchestrated", Some(2usize))] {
            let base = match configure {
                None => case.verifier(),
                Some(jobs) => case.verifier().with_mode(RunMode::Parallel).with_jobs(jobs),
            };
            let plain = base.clone().verify_safety_multi(&s.props, &s.inv);
            let raced = base
                .with_portfolio(tuning.clone())
                .verify_safety_multi(&s.props, &s.inv);
            let plain_text = report_text(topo, &plain);
            let raced_text = report_text(topo, &raced);
            if raced_text != plain_text {
                return Err(Discrepancy::new(
                    OracleId::PortfolioParity,
                    format!(
                        "suite {}: {mode} portfolio report (k={}, seed {seed}) diverges:
--- plain
{plain_text}
--- raced
{raced_text}",
                        s.name, tuning.k
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// Oracle 6: a poisoned cache spill must never change a report byte.
/// The case is verified orchestrated with a result cache attached, the
/// cache is spilled to disk, the spill bytes are deterministically
/// corrupted (truncated, bit-flipped, or checksum-forged, chosen by
/// `seed`), and the damaged spill is reloaded: the reload must not
/// panic, and re-verifying with whatever survived must render reports
/// byte-identical to the clean run — a rejected or vanished entry is
/// re-proved, a replayed one would have to be intact.
pub fn cache_poison_oracle(case: &FuzzCase, seed: u64) -> Result<(), Discrepancy> {
    let dir = std::env::temp_dir().join(format!(
        "lightyear-fuzz-poison-{}-{seed:016x}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let result = cache_poison_in(case, seed, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn cache_poison_in(case: &FuzzCase, seed: u64, dir: &std::path::Path) -> Result<(), Discrepancy> {
    let topo = &case.network.topology;
    let fail = |detail: String| Err(Discrepancy::new(OracleId::CachePoison, detail));
    // Warm a cache through an orchestrated run and spill it; the warm
    // run's reports are the byte baseline.
    let cache = std::sync::Arc::new(lightyear::CheckCache::new());
    let mut baselines = Vec::new();
    for s in &case.suites {
        let r = case
            .verifier()
            .with_mode(RunMode::Parallel)
            .with_jobs(2)
            .with_cache(cache.clone())
            .verify_safety_multi(&s.props, &s.inv);
        baselines.push(report_text(topo, &r));
    }
    if let Err(e) = lightyear::save_check_cache(&cache, dir) {
        return fail(format!("cannot spill cache: {e}"));
    }
    let path = dir.join("cache.json");
    let mut bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) => return fail(format!("cannot read spill: {e}")),
    };
    let style = corrupt_spill(&mut bytes, seed);
    if let Err(e) = std::fs::write(&path, &bytes) {
        return fail(format!("cannot write corrupted spill: {e}"));
    }

    // Reload must survive arbitrary corruption: a panic is the
    // discrepancy; an I/O or parse error is just a cold start (the CLI
    // warns and re-proves — see `cmd_verify`).
    let reloaded = {
        let d = dir.to_path_buf();
        crate::try_quiet(move || lightyear::load_check_cache(&d))
    };
    let poisoned = match reloaded {
        None => return fail(format!("reloading a {style} spill panicked")),
        Some(Ok((c, _))) => c,
        Some(Err(_)) => std::sync::Arc::new(lightyear::CheckCache::new()),
    };
    for (s, baseline) in case.suites.iter().zip(&baselines) {
        let r = case
            .verifier()
            .with_mode(RunMode::Parallel)
            .with_jobs(2)
            .with_cache(poisoned.clone())
            .verify_safety_multi(&s.props, &s.inv);
        let t = report_text(topo, &r);
        if t != *baseline {
            return fail(format!(
                "suite {}: report after reloading a {style} spill diverges:\n--- clean\n{baseline}\n--- poisoned\n{t}",
                s.name
            ));
        }
    }
    Ok(())
}

/// Deterministically corrupt spill bytes in place; returns the style
/// applied (named in discrepancy messages).
fn corrupt_spill(bytes: &mut Vec<u8>, seed: u64) -> &'static str {
    let n = bytes.len().max(1);
    match seed % 3 {
        0 => {
            bytes.truncate((seed as usize / 3) % n);
            "truncated"
        }
        1 => {
            let i = (seed as usize / 3) % n;
            bytes[i] ^= 1 << ((seed / 3) % 8);
            "bit-flipped"
        }
        _ => {
            // Zero every entry checksum: intact payloads under forged
            // sums, the hand-edited-spill shape.
            let mut text = String::from_utf8_lossy(bytes).into_owned();
            let needle = "\"sum\": \"";
            let mut at = 0;
            while let Some(p) = text[at..].find(needle) {
                let start = at + p + needle.len();
                let end = (start + 32).min(text.len());
                let zeros = "0".repeat(end - start);
                text.replace_range(start..end, &zeros);
                at = end;
            }
            *bytes = text.into_bytes();
            "checksum-forged"
        }
    }
}

/// Apply one menu edit to `configs`, retrying `seed..seed+16` until one
/// applies — the single retry idiom shared by generation and replay, so
/// a recorded seed always reproduces the same edit.
fn apply_edit(
    configs: &mut [bgp_config::ast::ConfigAst],
    seed: u64,
) -> Option<netgen::edits::AppliedEdit> {
    (seed..seed + 16).find_map(|s| netgen::edits::random_edit(configs, s))
}

/// Oracle 3: drive a [`ReverifyEngine`] per suite through `steps`
/// random edits; after every step the warm round must be byte-identical
/// to a fresh verification of the same configs, and cosmetic edits must
/// produce empty dirty sets. Returns the applied edit seeds (for
/// sequence minimization) alongside any discrepancy.
pub fn edit_oracle(
    case: &FuzzCase,
    edit_seed: u64,
    steps: usize,
) -> (Vec<u64>, Result<(), Discrepancy>) {
    let seeds: Vec<u64> = (0..steps as u64)
        .map(|step| {
            edit_seed
                .wrapping_add(step)
                .wrapping_mul(0x9e3779b97f4a7c15)
                % 100_000
        })
        .collect();
    run_edit_sequence(case, &seeds)
}

/// The edit-sequence driver behind both [`edit_oracle`] (freshly
/// derived seeds) and repro replay (recorded seeds): every failure
/// mode — baseline accounting, unbuildable configs, generator-vs-differ
/// cosmetic disagreement, reverify divergence, cosmetic dirtying — is
/// re-checked identically on replay. The returned seed list includes
/// the failing step's seed, so a recorded sequence reproduces its own
/// discrepancy.
pub fn run_edit_sequence(case: &FuzzCase, seeds: &[u64]) -> (Vec<u64>, Result<(), Discrepancy>) {
    let mut engines: Vec<ReverifyEngine> =
        case.suites.iter().map(|_| ReverifyEngine::new()).collect();
    // Baseline round on the pristine case.
    {
        let v = case.verifier();
        for (e, s) in engines.iter_mut().zip(&case.suites) {
            let (_, stats) = e.reverify(&v, &s.props, &s.inv, None);
            if stats.dirty + stats.reused + stats.core_clean != stats.total {
                return (
                    Vec::new(),
                    Err(Discrepancy::new(
                        OracleId::EditSequence,
                        format!("suite {}: baseline round lost checks: {stats:?}", s.name),
                    )),
                );
            }
        }
    }

    let mut configs = case.configs.clone();
    let mut applied_seeds = Vec::new();
    for (step, &seed) in seeds.iter().enumerate() {
        let mut snapshot = configs.clone();
        let Some(applied) = apply_edit(&mut snapshot, seed) else {
            continue;
        };
        // The failing step's seed is part of the sequence: push before
        // any of the checks below can bail out.
        applied_seeds.push(seed);
        // An edit that breaks the pipeline (cannot lower) is a
        // generator bug — the edit menu guarantees it does not happen.
        let Some(next) = crate::try_quiet({
            let params = case.params;
            let snap = snapshot.clone();
            move || params.build_from(snap)
        }) else {
            return (
                applied_seeds,
                Err(Discrepancy::new(
                    OracleId::EditSequence,
                    format!("step {step}: edit {applied:?} produced configs that fail to build"),
                )),
            );
        };
        let delta = delta::diff_configs(&configs, &snapshot);
        if applied.cosmetic != delta.is_cosmetic() {
            return (
                applied_seeds,
                Err(Discrepancy::new(
                    OracleId::EditSequence,
                    format!(
                        "step {step}: generator says cosmetic={}, differ says {delta}",
                        applied.cosmetic
                    ),
                )),
            );
        }
        configs = snapshot;
        let changed = delta.changed_routers();
        let topo = &next.network.topology;
        let v = next.verifier();
        for (e, s) in engines.iter_mut().zip(&next.suites) {
            let (warm, stats) = e.reverify(&v, &s.props, &s.inv, Some(&changed));
            let fresh = v.verify_safety_multi(&s.props, &s.inv);
            let (wt, ft) = (report_text(topo, &warm), report_text(topo, &fresh));
            if wt != ft {
                return (
                    applied_seeds,
                    Err(Discrepancy::new(
                        OracleId::EditSequence,
                        format!(
                            "step {step} ({applied:?}): suite {} reverify diverges from fresh:\n--- fresh\n{ft}\n--- reverify\n{wt}",
                            s.name
                        ),
                    )),
                );
            }
            if delta.is_cosmetic() && stats.dirty != 0 {
                return (
                    applied_seeds,
                    Err(Discrepancy::new(
                        OracleId::EditSequence,
                        format!(
                            "step {step}: cosmetic edit dirtied {} checks in suite {}",
                            stats.dirty, s.name
                        ),
                    )),
                );
            }
        }
    }
    (applied_seeds, Ok(()))
}

/// Simulation rounds [`bug_oracle`]'s escalation path runs when an
/// injected bug passes verification.
pub const BUG_ORACLE_SIM_ROUNDS: usize = 4;

/// Oracle 4 (for bug-injected cases): the case must be *caught* — some
/// suite fails verification. When every suite passes despite the
/// injected bug, the simulation oracle gets the last word: a trace
/// violating a "proved" invariant is a soundness discrepancy; silence
/// is a missed bug. Either way the injection was not caught cleanly.
pub fn bug_oracle(case: &FuzzCase, sim_seed: u64) -> Result<(), Discrepancy> {
    let v = case.verifier();
    for s in &case.suites {
        if !v.verify_safety_multi(&s.props, &s.inv).all_passed() {
            return Ok(()); // caught by verification
        }
    }
    match sim_oracle(case, sim_seed, BUG_ORACLE_SIM_ROUNDS) {
        Err(d) => Err(Discrepancy::new(
            OracleId::BugMissed,
            format!("injected bug passed verification AND tripped the simulator: {d}"),
        )),
        Ok(()) => Err(Discrepancy::new(
            OracleId::BugMissed,
            "injected bug not caught by any oracle".to_string(),
        )),
    }
}

/// The failing-verification predicate used when minimizing a
/// bug-injected case: true while some suite still fails.
pub fn verification_fails(case: &FuzzCase) -> bool {
    let v = case.verifier();
    case.suites
        .iter()
        .any(|s| !v.verify_safety_multi(&s.props, &s.inv).all_passed())
}

/// One curated injection: a description plus the mutation to apply
/// (returns false when it does not apply to the generated configs).
pub type Injection = (String, fn(&mut [bgp_config::ast::ConfigAst]) -> bool);

/// The curated injected-bug sample for a family: mutations known to
/// violate one of the family's suites (used by the campaign's
/// `--inject` pass and the acceptance tests).
pub fn injection_sample(params: &crate::zoo::FamilyParams) -> Vec<Injection> {
    use crate::zoo::FamilyParams;
    match params {
        FamilyParams::Figure1 => vec![(
            "figure1: R1 forgets the transit tag".into(),
            |c: &mut [bgp_config::ast::ConfigAst]| {
                netgen::mutate::drop_community_sets(c, "R1", "FROM-ISP1").is_some()
            },
        )],
        FamilyParams::FullMesh { .. } => vec![(
            "fullmesh: R0 forgets the transit tag".into(),
            |c: &mut [bgp_config::ast::ConfigAst]| {
                netgen::mutate::drop_community_sets(c, "R0", "FROM-EXT").is_some()
            },
        )],
        FamilyParams::Wan(_) => vec![
            (
                "wan: EDGE0 loses its bogon filter".into(),
                |c: &mut [bgp_config::ast::ConfigAst]| {
                    netgen::mutate::drop_prefix_deny(c, "EDGE0", "FROM-PEER0", "BOGONS").is_some()
                },
            ),
            (
                "wan: EDGE0 forgets the peer tag".into(),
                |c: &mut [bgp_config::ast::ConfigAst]| {
                    netgen::mutate::drop_community_sets(c, "EDGE0", "FROM-PEER0").is_some()
                },
            ),
        ],
        FamilyParams::Rr(_) => vec![(
            "rr: the source client forgets the tag".into(),
            |c: &mut [bgp_config::ast::ConfigAst]| {
                netgen::mutate::drop_community_sets(c, "C0-0", "FROM-EXT").is_some()
            },
        )],
        FamilyParams::Stub(_) => vec![(
            "stub: B0 forgets primary provenance".into(),
            |c: &mut [bgp_config::ast::ConfigAst]| {
                netgen::mutate::drop_community_sets(c, "B0", "FROM-PRIMARY").is_some()
            },
        )],
        FamilyParams::HubSpoke(_) => vec![(
            "hubspoke: SP0 forgets the site tag".into(),
            |c: &mut [bgp_config::ast::ConfigAst]| {
                netgen::mutate::drop_community_sets(c, "SP0", "FROM-SITE").is_some()
            },
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::FamilyParams;

    #[test]
    fn cache_poison_oracle_survives_every_corruption_style() {
        let case = FamilyParams::Figure1.build();
        // seed % 3 picks the style: 0 truncates (here: to zero bytes),
        // 3001 flips a bit mid-file, 2 forges every entry checksum.
        for seed in [0u64, 3001, 2] {
            cache_poison_oracle(&case, seed).unwrap_or_else(|d| panic!("seed {seed}: {d}"));
        }
    }
}
