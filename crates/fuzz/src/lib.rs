//! Differential fuzzing for the Lightyear verifier.
//!
//! The paper's correctness theorem quantifies over *all* valid traces of
//! *all* networks; the unit suites pin a handful of hand-built
//! topologies. This crate closes the gap adversarially:
//!
//! * [`zoo`] — every netgen family (Figure 1, the §6.2 full mesh, the
//!   §6.1 WAN, and the route-reflector / multi-homed-stub /
//!   hub-and-spoke additions) behind one case-generation interface,
//!   with provenance-keyed announcement plans (anycast-safe:
//!   `(prefix, origin ASN)`, not prefix alone);
//! * [`oracle`] — the cross-checks: simulated traces vs verified
//!   invariants over the full 2³ [`bgp_model::sim::SimOptions`] grid,
//!   byte-identity across fresh / incremental / orchestrated /
//!   cross-property-batch execution, reverify-vs-fresh identity along
//!   random edit sequences, and injected-bug detection;
//! * [`minimize`] — greedy config / edit-sequence reduction re-running
//!   the failing oracle (the compat proptest shim has no shrinking),
//!   emitting replayable `repro.json` + `*.cfg` directories;
//! * [`campaign`] — the seeded campaign runner behind `lightyear fuzz`.

pub mod campaign;
pub mod minimize;
pub mod oracle;
pub mod zoo;

pub use campaign::{run_campaign, CampaignConfig, CampaignOutcome};
pub use minimize::{minimize, read_repro, replay, rerun, write_repro, FailingCase};
pub use oracle::{
    bug_oracle, edit_oracle, injection_sample, parity_oracle, run_edit_sequence, sim_options_grid,
    sim_oracle, Discrepancy, OracleId,
};
pub use zoo::{case_size, FamilyId, FamilyParams, FuzzCase, Suite};

thread_local! {
    /// Depth of nested [`try_quiet`] scopes on this thread.
    static QUIET_DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Run a closure that may panic (generator rebuilds on reduced configs
/// do, by design), suppressing the panic hook's stderr noise for the
/// duration. Returns `None` on panic.
///
/// The suppression is **per-thread and re-entrant**: the process hook
/// is replaced exactly once (wrapping the previous one) with a version
/// that consults a thread-local depth counter, so concurrent test
/// threads never race on hook installation and a panic on any *other*
/// thread still prints normally.
pub(crate) fn try_quiet<T>(f: impl FnOnce() -> T) -> Option<T> {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if QUIET_DEPTH.with(|d| d.get()) == 0 {
                prev(info);
            }
        }));
    });
    QUIET_DEPTH.with(|d| d.set(d.get() + 1));
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).ok();
    QUIET_DEPTH.with(|d| d.set(d.get() - 1));
    r
}
