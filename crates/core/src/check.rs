//! Check descriptors, results, counterexamples and reports.
//!
//! Every generated check pertains to a single BGP filter on a single
//! router (§2.1 "Localization"): a failed check carries the edge, the
//! route-map name and a concrete input/output route pair, pinpointing the
//! erroneous policy directly.

use crate::invariants::Location;
use crate::symbolic::ConcreteRoute;
use bgp_model::topology::{EdgeId, Topology};
use orchestrator::RunStats;
use smt::SolverStats;
use std::fmt;
use std::time::Duration;

/// What a check verifies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CheckKind {
    /// Import filter preserves the invariants (§4.2 check 1).
    Import,
    /// Export filter preserves the invariants (§4.2 check 2).
    Export,
    /// Originated routes satisfy the edge invariant (§4.2 check 3).
    Originate,
    /// The invariant at the property location implies the property.
    Subsumption,
    /// Liveness: a "good" route survives a path step (§5.2).
    Propagation,
    /// Liveness: same-prefix routes accepted on the path are "good" (§5.2).
    NoInterference,
}

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CheckKind::Import => "import",
            CheckKind::Export => "export",
            CheckKind::Originate => "originate",
            CheckKind::Subsumption => "subsumption",
            CheckKind::Propagation => "propagation",
            CheckKind::NoInterference => "no-interference",
        };
        write!(f, "{s}")
    }
}

/// A local check to be discharged.
#[derive(Clone, Debug)]
pub struct Check {
    /// Stable id within a run.
    pub id: usize,
    /// What kind of check.
    pub kind: CheckKind,
    /// The location the check pertains to.
    pub location: Location,
    /// The edge whose filter is checked (when applicable).
    pub edge: Option<EdgeId>,
    /// The route-map under test, if one is attached.
    pub map_name: Option<String>,
    /// Human-readable description.
    pub description: String,
}

/// A counterexample to a failed check.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The input route violating the check.
    pub input: ConcreteRoute,
    /// The filter output (when the check involves a transfer and the
    /// route was not rejected).
    pub output: Option<ConcreteRoute>,
    /// Whether the filter rejected the input in the model.
    pub rejected: bool,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "input:  {}", self.input)?;
        if self.rejected {
            write!(f, "\noutput: (rejected)")?;
        } else if let Some(o) = &self.output {
            write!(f, "\noutput: {o}")?;
        }
        Ok(())
    }
}

/// The outcome of one check.
#[derive(Clone, Debug)]
pub enum CheckResult {
    /// The check holds.
    Pass,
    /// The check fails, with a concrete counterexample (boxed: the
    /// overwhelmingly common outcome is `Pass`, and reports hold one
    /// `CheckResult` per check).
    Fail(Box<Counterexample>),
}

impl CheckResult {
    /// True on pass.
    pub fn passed(&self) -> bool {
        matches!(self, CheckResult::Pass)
    }
}

/// One executed check: descriptor, outcome and solver statistics.
#[derive(Clone, Debug)]
pub struct CheckOutcome {
    /// The check.
    pub check: Check,
    /// Its result.
    pub result: CheckResult,
    /// SMT statistics for this check (Figure 3b metrics).
    pub stats: SolverStats,
    /// Unsat-core localization of a **passing** check solved on an
    /// assumption-based session: the indices (into
    /// `RoutePred::conjuncts()` of the check's assumed invariant) of the
    /// conjuncts the UNSAT proof actually used. `Some(vec![])` means the
    /// check holds vacuously — no invariant conjunct was load-bearing.
    /// `None` for failures, concrete originate checks, and the
    /// `--no-incremental` one-fresh-instance-per-check path. A core is
    /// sound but not necessarily minimal, and — like solver timings — not
    /// deterministic across runs, so it is never part of the `Display`
    /// rendering (see `--json` and [`Report::cores`]).
    pub core: Option<Vec<usize>>,
}

/// The result of verifying a property: all check outcomes plus timing
/// and orchestration statistics.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Per-check outcomes, sorted by check id.
    pub outcomes: Vec<CheckOutcome>,
    /// Wall-clock time for the whole run.
    pub total_time: Duration,
    /// Orchestration statistics (all zero for sequential runs).
    pub exec: RunStats,
}

impl Report {
    /// Sort outcomes by check id. Run execution already assembles in
    /// submission order; this keeps rendering deterministic after
    /// [`Report::merge`] too.
    pub fn sort_by_id(&mut self) {
        self.outcomes.sort_by_key(|o| o.check.id);
    }

    /// Solver invocations actually executed: the orchestrated count
    /// when available, otherwise every check ran individually.
    pub fn solver_invocations(&self) -> usize {
        if self.exec.generated > 0 {
            self.exec.executed
        } else {
            self.outcomes.len()
        }
    }
    /// True when every check passed.
    pub fn all_passed(&self) -> bool {
        self.outcomes.iter().all(|o| o.result.passed())
    }

    /// The failed outcomes.
    pub fn failures(&self) -> Vec<&CheckOutcome> {
        self.outcomes
            .iter()
            .filter(|o| !o.result.passed())
            .collect()
    }

    /// The passing outcomes that carry an unsat core, as
    /// `(check, load-bearing conjunct indices)` — the blame view: which
    /// invariant conjuncts each proof actually needed.
    pub fn cores(&self) -> Vec<(&Check, &[usize])> {
        self.outcomes
            .iter()
            .filter_map(|o| o.core.as_deref().map(|c| (&o.check, c)))
            .collect()
    }

    /// Number of checks run.
    pub fn num_checks(&self) -> usize {
        self.outcomes.len()
    }

    /// Maximum SAT variable count over all checks (Figure 3b, left axis).
    pub fn max_vars(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|o| o.stats.num_vars)
            .max()
            .unwrap_or(0)
    }

    /// Maximum clause count over all checks (Figure 3b, right axis).
    pub fn max_clauses(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|o| o.stats.num_clauses)
            .max()
            .unwrap_or(0)
    }

    /// Total time spent inside the SAT solver (Figure 3d, solving curve).
    pub fn solve_time(&self) -> Duration {
        self.outcomes.iter().map(|o| o.stats.solve_time).sum()
    }

    /// Total time spent encoding.
    pub fn encode_time(&self) -> Duration {
        self.outcomes.iter().map(|o| o.stats.encode_time).sum()
    }

    /// Merge another report into this one.
    pub fn merge(&mut self, other: Report) {
        self.outcomes.extend(other.outcomes);
        self.total_time += other.total_time;
        self.exec.merge(&other.exec);
    }

    /// One-line human summary including timings and, for orchestrated
    /// runs, the dedup statistics. Unlike `Display`, this line is *not*
    /// deterministic across runs (it contains wall-clock times).
    pub fn timing_summary(&self) -> String {
        let mut s = format!(
            "{} ({:?} total, {:?} solving)",
            self,
            self.total_time,
            self.solve_time()
        );
        if self.exec.generated > 0 {
            s.push_str("; ");
            s.push_str(&self.exec.summary());
        }
        s
    }

    /// Render failures with topology names.
    pub fn format_failures(&self, topo: &Topology) -> String {
        format_failure_outcomes(self.failures().into_iter(), topo)
    }

    /// Fold this report into a [`ReportSummary`] (cores retained).
    /// Callers that render through the summary type but still hold a
    /// full report — the liveness path, the daemon — convert here.
    pub fn summarize(&self) -> ReportSummary {
        let mut s = ReportSummary::new(true);
        for o in &self.outcomes {
            s.push(o.clone());
        }
        if self.exec.generated > 0 {
            s.set_solver_invocations(self.exec.executed);
        }
        s.total_time = self.total_time;
        s
    }
}

fn format_failure_outcomes<'a>(
    fails: impl Iterator<Item = &'a CheckOutcome>,
    topo: &Topology,
) -> String {
    let mut s = String::new();
    for o in fails {
        use std::fmt::Write;
        let _ = writeln!(
            s,
            "FAILED [{}] at {}{}",
            o.check.kind,
            o.check.location.display(topo),
            o.check
                .map_name
                .as_deref()
                .map(|m| format!(" (route-map {m})"))
                .unwrap_or_default()
        );
        let _ = writeln!(s, "  {}", o.check.description);
        if let CheckResult::Fail(cex) = &o.result {
            for line in cex.to_string().lines() {
                let _ = writeln!(s, "  {line}");
            }
        }
    }
    s
}

/// A streaming fold over check outcomes: everything report rendering
/// reads from a [`Report`], without retaining the outcomes themselves.
/// Passing checks collapse into aggregates the moment they arrive
/// (their unsat cores optionally retained for the blame view); only
/// failures are kept whole. This is what keeps `verify` memory
/// O(solve frontier + failures) instead of O(checks) on an
/// internet-scale corpus entry — see `Verifier::verify_safety_batch_streaming`.
///
/// Outcomes must be pushed in check-id order; every accessor then
/// renders byte-identically to the equivalent [`Report`] (pinned by
/// the CLI golden test).
#[derive(Clone, Debug, Default)]
pub struct ReportSummary {
    checks: usize,
    failures: Vec<CheckOutcome>,
    keep_cores: bool,
    cores: Vec<(Check, Vec<usize>)>,
    max_vars: u64,
    max_clauses: u64,
    solve_time: Duration,
    encode_time: Duration,
    /// Orchestrated solver-invocation count, when one applies
    /// (mirrors [`Report::solver_invocations`]'s `exec` branch).
    solver_invocations: Option<usize>,
    /// Wall-clock time for the run that produced this summary.
    pub total_time: Duration,
}

impl ReportSummary {
    /// An empty summary. `keep_cores` retains passing checks' unsat
    /// cores (needed for the `--json` blame view); without it a
    /// passing check leaves no per-check residue at all.
    pub fn new(keep_cores: bool) -> Self {
        ReportSummary {
            keep_cores,
            ..ReportSummary::default()
        }
    }

    /// Fold in one outcome (call in check-id order).
    pub fn push(&mut self, o: CheckOutcome) {
        self.checks += 1;
        self.max_vars = self.max_vars.max(o.stats.num_vars);
        self.max_clauses = self.max_clauses.max(o.stats.num_clauses);
        self.solve_time += o.stats.solve_time;
        self.encode_time += o.stats.encode_time;
        if !o.result.passed() {
            if self.keep_cores {
                if let Some(core) = &o.core {
                    self.cores.push((o.check.clone(), core.clone()));
                }
            }
            self.failures.push(o);
        } else if self.keep_cores {
            if let Some(core) = o.core {
                self.cores.push((o.check, core));
            }
        }
    }

    /// Pin the orchestrated solver-invocation count (otherwise one
    /// invocation per check is assumed).
    pub fn set_solver_invocations(&mut self, n: usize) {
        self.solver_invocations = Some(n);
    }

    /// Mirrors [`Report::solver_invocations`].
    pub fn solver_invocations(&self) -> usize {
        self.solver_invocations.unwrap_or(self.checks)
    }

    /// True when every folded check passed.
    pub fn all_passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Number of checks folded in.
    pub fn num_checks(&self) -> usize {
        self.checks
    }

    /// The retained failed outcomes, in push (check-id) order.
    pub fn failures(&self) -> &[CheckOutcome] {
        &self.failures
    }

    /// The retained `(check, load-bearing conjunct indices)` pairs of
    /// passing checks (empty unless constructed with `keep_cores`).
    pub fn cores(&self) -> Vec<(&Check, &[usize])> {
        self.cores.iter().map(|(c, k)| (c, k.as_slice())).collect()
    }

    /// Mirrors [`Report::max_vars`].
    pub fn max_vars(&self) -> u64 {
        self.max_vars
    }

    /// Mirrors [`Report::max_clauses`].
    pub fn max_clauses(&self) -> u64 {
        self.max_clauses
    }

    /// Mirrors [`Report::solve_time`].
    pub fn solve_time(&self) -> Duration {
        self.solve_time
    }

    /// Mirrors [`Report::encode_time`].
    pub fn encode_time(&self) -> Duration {
        self.encode_time
    }

    /// Render failures with topology names, byte-identical to
    /// [`Report::format_failures`] on the same outcomes.
    pub fn format_failures(&self, topo: &Topology) -> String {
        format_failure_outcomes(self.failures.iter(), topo)
    }
}

/// Deterministic rendering: depends only on the sorted check outcomes,
/// never on wall-clock times or execution strategy, so sequential and
/// orchestrated runs of the same problem render byte-identically (use
/// [`Report::timing_summary`] for the timed line).
impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let failed = self.failures().len();
        write!(
            f,
            "{} checks, {} passed, {} failed",
            self.num_checks(),
            self.num_checks() - failed,
            failed,
        )?;
        if failed > 0 {
            let mut fails = self.failures();
            fails.sort_by_key(|o| o.check.id);
            for o in fails {
                write!(
                    f,
                    "\n  failed: {} #{} ({})",
                    o.check.kind, o.check.id, o.check.description
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_check(id: usize) -> Check {
        Check {
            id,
            kind: CheckKind::Import,
            location: Location::Edge(EdgeId(0)),
            edge: Some(EdgeId(0)),
            map_name: Some("M".into()),
            description: "test".into(),
        }
    }

    #[test]
    fn report_aggregates() {
        let mut r = Report::default();
        r.outcomes.push(CheckOutcome {
            check: dummy_check(0),
            result: CheckResult::Pass,
            stats: SolverStats {
                num_vars: 10,
                num_clauses: 20,
                ..Default::default()
            },
            core: Some(vec![0]),
        });
        r.outcomes.push(CheckOutcome {
            check: dummy_check(1),
            result: CheckResult::Pass,
            stats: SolverStats {
                num_vars: 30,
                num_clauses: 5,
                ..Default::default()
            },
            core: None,
        });
        assert!(r.all_passed());
        assert_eq!(r.num_checks(), 2);
        assert_eq!(r.max_vars(), 30);
        assert_eq!(r.max_clauses(), 20);
        assert!(r.failures().is_empty());
    }

    #[test]
    fn summary_agrees_with_report() {
        let mut r = Report::default();
        r.outcomes.push(CheckOutcome {
            check: dummy_check(0),
            result: CheckResult::Pass,
            stats: SolverStats {
                num_vars: 10,
                num_clauses: 20,
                ..Default::default()
            },
            core: Some(vec![1, 2]),
        });
        r.outcomes.push(CheckOutcome {
            check: dummy_check(1),
            result: CheckResult::Fail(Box::new(Counterexample {
                input: ConcreteRoute {
                    route: bgp_model::route::Route::new("10.0.0.0/8".parse().unwrap()),
                    comm_other: false,
                    aspath_matches: Default::default(),
                    ghosts: Default::default(),
                },
                output: None,
                rejected: true,
            })),
            stats: SolverStats {
                num_vars: 5,
                num_clauses: 50,
                ..Default::default()
            },
            core: None,
        });
        let s = r.summarize();
        assert_eq!(s.all_passed(), r.all_passed());
        assert_eq!(s.num_checks(), r.num_checks());
        assert_eq!(s.max_vars(), r.max_vars());
        assert_eq!(s.max_clauses(), r.max_clauses());
        assert_eq!(s.solver_invocations(), r.solver_invocations());
        assert_eq!(s.failures().len(), r.failures().len());
        assert_eq!(s.failures()[0].check.id, 1);
        let (sc, rc) = (s.cores(), r.cores());
        assert_eq!(sc.len(), rc.len());
        assert_eq!(sc[0].0.id, rc[0].0.id);
        assert_eq!(sc[0].1, rc[0].1);
        // Without keep_cores, passing checks leave no residue.
        let mut lean = ReportSummary::new(false);
        for o in &r.outcomes {
            lean.push(o.clone());
        }
        assert!(lean.cores().is_empty());
        assert_eq!(lean.num_checks(), 2);
    }
}
