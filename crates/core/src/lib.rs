//! # Lightyear: modular BGP control-plane verification
//!
//! An implementation of *"Lightyear: Using Modularity to Scale BGP Control
//! Plane Verification"* (SIGCOMM 2023). End-to-end network properties are
//! verified through a set of purely **local checks** on individual nodes
//! and edges: the user supplies per-location *network invariants* (for
//! safety) or *path constraints* (for liveness), and Lightyear generates
//! assume-guarantee checks — one per BGP import/export/originate filter —
//! whose conjunction implies the global property for **all possible
//! external route announcements** and (for safety) **arbitrary failures**.
//!
//! ## Module map
//!
//! * [`universe`] — the finite attribute universe (communities, AS-path
//!   regexes, ghost attributes) collected from configurations and
//!   properties; determines the width of the symbolic encoding.
//! * [`symbolic`] — symbolic routes: one SMT term per attribute.
//! * [`pred`] — the route-predicate language used for properties,
//!   invariants and path constraints (the role Zen functions play in the
//!   paper's implementation), with both symbolic and concrete semantics.
//! * [`ghost`] — ghost attributes (§4.4): user-defined boolean fields
//!   updated by specified filters, e.g. `FromISP1`.
//! * [`encode`] — symbolic transfer functions for route maps.
//! * [`invariants`] — per-location network invariants with role-based
//!   assignment helpers.
//! * [`safety`] — generation of the Import/Export/Originate local checks
//!   and the invariant-implies-property check (§4.2).
//! * [`liveness`] — path constraints, propagation checks and
//!   no-interference checks (§5).
//! * [`check`] — check descriptors, results, counterexamples.
//! * [`fingerprint`] — structural fingerprints of resolved checks:
//!   rename-invariant canonical hashes (route-map contents, predicates,
//!   ghost updates, universe digest — never router names or ids) keying
//!   the orchestrator's dedup and cross-run cache.
//! * [`engine`] — the verifier: sequential or orchestrated execution
//!   (fingerprint dedup + result cache + work-stealing pool via the
//!   `orchestrator` crate), per-check statistics (Figure 3b/3d) and
//!   incremental re-verification.
//! * [`impact`] — change-impact analysis: the router→checks adjacency
//!   index bounding what a configuration edit can dirty.
//! * [`reverify`] — the cross-run re-verification engine behind daemon
//!   (`lightyear watch`) and migration-plan (`lightyear plan`) modes:
//!   fingerprint-diffed dirty sets, persistent per-group SMT sessions
//!   reused across rounds, delta-aware result-cache invalidation.
//!
//! ## Quick start
//!
//! ```
//! use bgp_model::{Topology, Policy, Community};
//! use lightyear::pred::RoutePred;
//! use lightyear::ghost::{GhostAttr, GhostUpdate};
//! use lightyear::invariants::{Location, NetworkInvariants};
//! use lightyear::safety::SafetyProperty;
//! use lightyear::engine::Verifier;
//!
//! // Tiny network: ISP1 -> R1 -> R2 -> ISP2.
//! let mut topo = Topology::new();
//! let r1 = topo.add_router("R1", 65000);
//! let r2 = topo.add_router("R2", 65000);
//! let isp1 = topo.add_external("ISP1", 100);
//! let isp2 = topo.add_external("ISP2", 200);
//! topo.add_session(r1, r2);
//! topo.add_session(isp1, r1);
//! topo.add_session(r2, isp2);
//!
//! // Import at R1 tags 100:1; export at R2 to ISP2 drops tagged routes.
//! use bgp_model::routemap::{RouteMap, RouteMapEntry, SetAction, MatchCond};
//! let c = Community::new(100, 1);
//! let mut pol = Policy::new();
//! let mut tag = RouteMap::new("FROM-ISP1");
//! tag.push(RouteMapEntry::permit(10)
//!     .setting(SetAction::Community { comms: vec![c], additive: true }));
//! pol.set_import(topo.edge_between(isp1, r1).unwrap(), tag);
//! let mut drop = RouteMap::new("TO-ISP2");
//! drop.push(RouteMapEntry::deny(10)
//!     .matching(MatchCond::Community { comms: vec![c], match_all: false }));
//! drop.push(RouteMapEntry::permit(20));
//! pol.set_export(topo.edge_between(r2, isp2).unwrap(), drop);
//!
//! // Ghost attribute FromISP1: set true by R1's import from ISP1, false
//! // by imports from every other external neighbor (§4.4).
//! let mut ghost = GhostAttr::new("FromISP1");
//! ghost.on_import(topo.edge_between(isp1, r1).unwrap(), GhostUpdate::SetTrue);
//! ghost.on_import(topo.edge_between(isp2, r2).unwrap(), GhostUpdate::SetFalse);
//!
//! // Property: no route from ISP1 is sent to ISP2.
//! let to_isp2 = topo.edge_between(r2, isp2).unwrap();
//! let prop = SafetyProperty::new(
//!     Location::Edge(to_isp2),
//!     RoutePred::ghost("FromISP1").not(),
//! );
//!
//! // Invariants: the three-part pattern of §2.1.
//! let key = RoutePred::ghost("FromISP1").implies(RoutePred::has_community(c));
//! let mut inv = NetworkInvariants::with_default(key);
//! inv.set(Location::Edge(to_isp2), RoutePred::ghost("FromISP1").not());
//!
//! let verifier = Verifier::new(&topo, &pol).with_ghost(ghost);
//! let report = verifier.verify_safety(&prop, &inv);
//! assert!(report.all_passed(), "{report}");
//! ```

pub mod check;
pub mod encode;
pub mod engine;
pub mod fingerprint;
pub mod ghost;
pub mod impact;
pub mod infer;
pub mod invariants;
pub mod liveness;
pub mod pred;
pub mod reverify;
pub mod safety;
pub mod symbolic;
pub mod universe;

pub use check::{Check, CheckKind, CheckResult, Counterexample, Report};
pub use engine::{
    load_check_cache, load_check_cache_bounded, load_pass_cache, save_check_cache, CheckCache,
    MultiReport, PortfolioTuning, RunMode, SolvedCheck, SolverTuning, Verifier,
};
// Re-exported so downstream tooling (CLI flags, benches) can reference
// solver-level types without a separate dependency edge.
pub use ghost::{GhostAttr, GhostUpdate};
pub use impact::CheckIndex;
pub use invariants::{Location, NetworkInvariants};
pub use liveness::LivenessSpec;
pub use pred::RoutePred;
pub use reverify::{ReverifyEngine, ReverifyStats};
pub use safety::SafetyProperty;
pub use smt;
