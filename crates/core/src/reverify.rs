//! Cross-run re-verification: one long-lived engine, many rounds.
//!
//! [`ReverifyEngine`] is the substrate of daemon (`lightyear watch`) and
//! migration-plan (`lightyear plan`) verification: it persists **across**
//! runs what [`smt::IncrementalSession`] persists across checks —
//!
//! * a fingerprint-keyed result cache (an [`orchestrator::ResultCache`])
//!   carrying every previously-proved verdict, so clean checks are
//!   answered in O(1) without touching a solver;
//! * per encoding-base group, a persistent [`smt::IncrementalSession`]
//!   whose symbolic input route and well-formedness constraint are
//!   encoded exactly once in the engine's lifetime: a re-dirtied edge
//!   re-encodes only its changed transfer relation on the live session
//!   (old queries are retracted via their activation literals; learnt
//!   clauses about the shared route structure carry over);
//! * the previous round's fingerprints and router→checks adjacency
//!   ([`crate::impact::CheckIndex`]), driving **delta-aware
//!   invalidation**: a round that knows which routers changed removes
//!   only that neighborhood's superseded fingerprints from the carried
//!   cache.
//!
//! The dirty set itself is decided by the rename-invariant fingerprints
//! of [`crate::fingerprint`]: a check is re-solved iff its fingerprint
//! has never been proved before. Cosmetic edits (route-map renames,
//! unused-object edits, reformatting) leave every fingerprint unchanged
//! and produce an **empty** dirty set; a single-router semantic edit dirties
//! only the checks on that router's incident edges.
//!
//! Reports are byte-identical to a fresh run of the same round: passes
//! are pure verdicts, and a dirty check that fails on a warm session is
//! re-derived on a fresh one-shot instance so the reported counterexample
//! can never depend on session history.

use crate::check::{CheckOutcome, CheckResult, Report};
use crate::engine::{
    implication_goal_negation, solve_conjunct_gated, transfer_goal_negation, CheckBody, CheckCache,
    ResolvedCheck, SolvedCheck, Verifier,
};
use crate::fingerprint::{
    check_fingerprint, conjunct_fingerprint, rest_fingerprint, transfer_fingerprint,
    universe_digest,
};
use crate::impact::CheckIndex;
use crate::invariants::NetworkInvariants;
use crate::pred::RoutePred;
use crate::safety::SafetyProperty;
use crate::symbolic::SymRoute;
use crate::universe::Universe;
use bgp_model::topology::{EdgeId, NodeId};
use orchestrator::Fingerprint;
use smt::{IncrementalSession, SatResult, TermId, TermPool};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// What one re-verify round did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReverifyStats {
    /// Checks the round consists of.
    pub total: usize,
    /// Checks actually re-solved (fingerprint never proved before).
    pub dirty: usize,
    /// Size of the delta's candidate neighborhood (edited routers +
    /// neighbors + location-free checks); `total` when the delta is
    /// unknown. `dirty <= candidates` whenever the attribute universe is
    /// stable — the locality guarantee re-verification rests on.
    pub candidates: usize,
    /// Checks answered from the carried cross-run result cache.
    pub reused: usize,
    /// Fingerprint-missed checks answered by **conjunct-core
    /// subsumption** without solving: the check's assume-free "rest" was
    /// unchanged and every conjunct of a previously-reported unsat core
    /// still occurs in its (edited) assume predicate, so the old proof
    /// still applies. Not counted in `dirty`.
    pub core_clean: usize,
    /// Superseded fingerprints dropped from the carried cache
    /// (delta-aware invalidation).
    pub invalidated: usize,
    /// Encoding-base sessions reused from earlier rounds.
    pub sessions_reused: usize,
    /// Encoding-base sessions created this round.
    pub sessions_created: usize,
    /// True when the attribute universe changed shape and the engine had
    /// to drop its sessions and carried results (full re-verify).
    pub universe_reset: bool,
}

impl ReverifyStats {
    /// The canonical one-line rendering used by the daemon's per-round
    /// output (and asserted by the CI smoke test).
    pub fn summary(&self) -> String {
        let mut s = format!(
            "dirty {}/{} checks ({} candidates), {} cached, ",
            self.dirty, self.total, self.candidates, self.reused,
        );
        if self.core_clean > 0 {
            s.push_str(&format!("{} core-clean, ", self.core_clean));
        }
        s.push_str(&format!(
            "{} invalidated; sessions: {} warm, {} new",
            self.invalidated, self.sessions_reused, self.sessions_created,
        ));
        if self.universe_reset {
            s.push_str("; universe changed, state reset");
        }
        s
    }
}

/// One persistent encoding-base session: the symbolic input route and
/// its well-formedness constraint are encoded once; transfer relations
/// and check queries come and go across rounds.
struct GroupSession {
    sess: IncrementalSession,
    input: SymRoute,
    /// The currently-encoded transfer relation and its content
    /// fingerprint (`None` for implication sessions and before first
    /// use). An unchanged fingerprint lets a re-dirtied check reuse the
    /// already-encoded relation.
    transfer: Option<(Fingerprint, crate::encode::Transfer)>,
    /// Transfer encodings superseded on this session so far. Retraction
    /// satisfies a retired encoding's clauses but cannot reclaim them,
    /// so a session is rebuilt from scratch once this passes
    /// [`RETIRED_TRANSFER_LIMIT`] — bounding daemon memory under
    /// unbounded rounds of layout-stable edits to the same edge.
    retired: usize,
}

/// Superseded transfer encodings a session may hold before it is
/// rebuilt fresh (trading one re-encode of the route structure for
/// reclaiming all retired clauses).
const RETIRED_TRANSFER_LIMIT: usize = 32;

impl GroupSession {
    fn new(universe: &Universe, learnt_cap: Option<u64>) -> GroupSession {
        let mut sess = match learnt_cap {
            Some(cap) => IncrementalSession::new().with_learnt_cap(cap),
            None => IncrementalSession::new(),
        };
        let input = SymRoute::fresh(sess.pool_mut(), universe, "r");
        let wf = input.well_formed(sess.pool_mut());
        sess.assert(wf);
        GroupSession {
            sess,
            input,
            transfer: None,
            retired: 0,
        }
    }
}

/// Bookkeeping from the previous round, scoping the next round's
/// delta-aware invalidation and fingerprint carry-over.
struct PrevRound {
    universe: Universe,
    fps: Vec<Fingerprint>,
    index: CheckIndex,
    node_of: HashMap<String, NodeId>,
    /// Digest of the verification problem (properties + invariants).
    spec_digest: u64,
    /// Digest of the check-generation shape (node names, edge
    /// endpoints, per-edge origination presence).
    topo_shape: u64,
}

use bgp_model::canonical_json as canon;

/// In-process digest of the verification problem. Only compared against
/// digests from earlier rounds of the same engine, so the hasher needs
/// no cross-process stability.
fn spec_digest(props: &[SafetyProperty], inv: &NetworkInvariants) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    props.len().hash(&mut h);
    for p in props {
        format!("{:?}", p.location).hash(&mut h);
        p.name.hash(&mut h);
        canon(&p.pred).hash(&mut h);
    }
    canon(inv.default_pred()).hash(&mut h);
    let mut overrides: Vec<_> = inv.overrides_iter().collect();
    overrides.sort_by_key(|(l, _)| **l);
    for (l, p) in overrides {
        format!("{l:?}").hash(&mut h);
        canon(p).hash(&mut h);
    }
    h.finish()
}

/// In-process digest of the check-generation shape: node names in id
/// order, directed edge endpoints, and — because an Originate check
/// exists only for edges with a non-empty origination set
/// (policy content, not topology) — each edge's has-origination bit.
/// Equal digests mean check generation walks the same checks in the
/// same order, so check indices line up across rounds; a
/// count-preserving origination reshuffle (one edge loses its
/// `network` statement, another gains one) changes the digest and
/// disables positional fingerprint carry-over.
fn generation_shape(topo: &bgp_model::topology::Topology, policy: &bgp_model::Policy) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for n in topo.node_ids() {
        let node = topo.node(n);
        node.name.hash(&mut h);
        node.external.hash(&mut h);
    }
    for e in topo.edge_ids() {
        let edge = topo.edge(e);
        (edge.src.0, edge.dst.0).hash(&mut h);
        policy.originated(e).is_empty().hash(&mut h);
    }
    h.finish()
}

/// The most known cores kept per rest fingerprint. Small on purpose: a
/// rest structure rarely proves UNSAT through more than a couple of
/// genuinely different conjunct sets, and every entry is scanned on a
/// fingerprint miss.
const MAX_CORES_PER_REST: usize = 4;

/// The most rest fingerprints the core cache holds. Every distinct
/// route-map content an edge has ever carried mints a new rest key, so
/// a daemon polling a frequently-edited config would otherwise grow the
/// map monotonically (the same long-lived-process concern the
/// learnt-clause cap and the result cache's LRU bound address).
/// Overflow evicts oldest-first; eviction only costs a re-solve.
const MAX_CORE_RESTS: usize = 4096;

/// The long-lived re-verification engine (see module docs).
pub struct ReverifyEngine {
    results: Arc<CheckCache>,
    /// Sessions keyed by a topology-stable signature (router names +
    /// direction), so they survive node-id renumbering across rounds.
    sessions: HashMap<String, GroupSession>,
    /// Conjunct-core cache: per assume-free rest fingerprint
    /// ([`rest_fingerprint`]), the sets of conjunct fingerprints that
    /// alone forced UNSAT in earlier rounds (sorted by size, at most
    /// [`MAX_CORES_PER_REST`]). Lets an invariant edit that only touches
    /// non-load-bearing conjuncts stay clean: the old proof still
    /// applies whenever a recorded core is a subset of the new assume's
    /// conjuncts. Dropped with everything else on a universe reset —
    /// conjunct fingerprints are only comparable under one layout.
    cores: HashMap<u128, Vec<BTreeSet<u128>>>,
    /// Rest fingerprints in first-insertion order, driving oldest-first
    /// eviction once `cores` passes [`MAX_CORE_RESTS`].
    core_order: std::collections::VecDeque<u128>,
    prev: Option<PrevRound>,
    learnt_cap: Option<u64>,
}

impl Default for ReverifyEngine {
    fn default() -> Self {
        Self::new()
    }
}

/// Default learnt-clause bound per persistent session: generous for any
/// single round, but a hard backstop against unbounded daemon growth.
const DEFAULT_LEARNT_CAP: u64 = 20_000;

impl ReverifyEngine {
    /// A fresh engine with nothing carried over.
    pub fn new() -> Self {
        Self::with_results(Arc::new(CheckCache::new()))
    }

    /// An engine whose carried result cache starts from `results` —
    /// typically a pass-only spill reloaded from disk
    /// ([`crate::engine::load_pass_cache`]), so a restarted daemon's
    /// first round answers every unchanged passing check without
    /// touching a solver.
    pub fn with_results(results: Arc<CheckCache>) -> Self {
        ReverifyEngine {
            results,
            sessions: HashMap::new(),
            cores: HashMap::new(),
            core_order: std::collections::VecDeque::new(),
            prev: None,
            learnt_cap: Some(DEFAULT_LEARNT_CAP),
        }
    }

    /// Override the per-session learnt-clause bound (`None`: unbounded).
    pub fn with_learnt_cap(mut self, cap: Option<u64>) -> Self {
        self.learnt_cap = cap;
        self
    }

    /// The carried cross-run result cache (e.g. for spilling to disk).
    pub fn cache(&self) -> Arc<CheckCache> {
        self.results.clone()
    }

    /// Verify the given problem against the *current* network behind
    /// `v`, re-solving only what changed since the previous round.
    ///
    /// `changed` names the routers the caller knows were edited, and is
    /// part of the soundness contract: it must include **every** router
    /// whose configuration semantically changed since the previous round
    /// (a `delta::diff_configs` changed-set does exactly this), because
    /// fingerprints outside the named neighborhood are carried over
    /// without recomputation when the topology, spec and universe are
    /// stable. Pass `None` when the delta is unknown — every check is
    /// then re-fingerprinted and treated as a candidate.
    ///
    /// The verifier must be configured like the previous rounds' (same
    /// ghosts, sequential or not does not matter); properties and
    /// invariants may change freely — their checks simply come out dirty.
    pub fn reverify(
        &mut self,
        v: &Verifier,
        props: &[SafetyProperty],
        inv: &NetworkInvariants,
        changed: Option<&[String]>,
    ) -> (Report, ReverifyStats) {
        let t0 = Instant::now();
        let _span = obs::span!(
            "reverify_round",
            changed = changed.map_or(0, <[String]>::len)
        );
        let (checks, universe) = v.resolve_multi(props, inv);
        let topo = v.topology();
        let ufp = universe_digest(&universe);
        let mut stats = ReverifyStats {
            total: checks.len(),
            ..ReverifyStats::default()
        };

        // A change to the attribute universe's *shape* (a community,
        // regex or ghost appearing, disappearing, or changing position)
        // re-lays-out every symbolic route: persistent sessions and
        // carried verdicts are both tied to the old layout, so drop them
        // and fall back to a full round. Note this is ordered equality —
        // the order-insensitive digest inside each fingerprint is not
        // enough, because cached counterexamples must match what a fresh
        // run under the *current* layout would print.
        if let Some(prev) = &self.prev {
            let same_layout = prev.universe.communities() == universe.communities()
                && prev.universe.regexes() == universe.regexes()
                && prev.universe.ghosts() == universe.ghosts();
            if !same_layout {
                stats.universe_reset = true;
                stats.invalidated = self.results.len();
                self.sessions.clear();
                self.cores.clear();
                self.core_order.clear();
                self.results = Arc::new(CheckCache::new());
                self.prev = None;
            }
        }

        let index = CheckIndex::build(topo, &checks);
        let sd = spec_digest(props, inv);
        let ts = generation_shape(topo, v.policy());

        // The delta neighborhood is trusted only when the topology
        // shape, the spec and the universe layout are all unchanged:
        // then check generation is positionally identical to the
        // previous round and only the named routers' content can
        // differ. A spec or shape change makes every check a candidate
        // regardless of `changed`.
        let carry_over = match &self.prev {
            Some(prev) => {
                prev.spec_digest == sd && prev.topo_shape == ts && prev.fps.len() == checks.len()
            }
            None => false,
        };

        // Candidate neighborhood from the delta (fingerprint carry-over,
        // invalidation scope and stats).
        let candidates: Option<std::collections::BTreeSet<usize>> = match (carry_over, changed) {
            (true, Some(names)) => {
                let ids: Vec<NodeId> = names.iter().filter_map(|n| topo.node_by_name(n)).collect();
                Some(index.dirty_candidates(&ids))
            }
            _ => None,
        };
        stats.candidates = candidates.as_ref().map_or(checks.len(), |c| c.len());

        // Fingerprints outside the candidate set are carried over
        // instead of re-serializing every route map — this is where the
        // adjacency index pays for itself: the per-round fingerprint
        // cost becomes O(delta), not O(network). It also makes `changed`
        // part of the soundness contract: it must name every
        // semantically edited router (a `delta::diff_configs`
        // changed-set does), or be `None`.
        let fps: Vec<Fingerprint> = checks
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if let Some(cand) = &candidates {
                    if !cand.contains(&i) {
                        let fp = self.prev.as_ref().expect("candidates imply prev").fps[i];
                        debug_assert_eq!(
                            fp,
                            check_fingerprint(ufp, v.policy(), v.ghosts(), &c.body),
                            "carried-over fingerprint diverged for check {i}"
                        );
                        return fp;
                    }
                }
                check_fingerprint(ufp, v.policy(), v.ghosts(), &c.body)
            })
            .collect();

        // Answer clean checks from the carried cache; collect the dirty.
        // A fingerprint miss gets one more chance before it counts as
        // dirty: conjunct-core subsumption — when the check's assume-free
        // rest is unchanged and some previously-reported core's conjuncts
        // all still occur in the new assume, the old UNSAT proof covers
        // the new check (a stronger assume only removes models from
        // `assume ∧ ¬goal`), so it is answered Pass without solving.
        let mut outcomes: Vec<Option<CheckOutcome>> = (0..checks.len()).map(|_| None).collect();
        let mut dirty: Vec<usize> = Vec::new();
        for (i, c) in checks.iter().enumerate() {
            match self.results.get(fps[i]) {
                Some(solved) => {
                    stats.reused += 1;
                    outcomes[i] = Some(CheckOutcome {
                        check: c.check.clone(),
                        // Identical formula ⇒ identical verdict; keep the
                        // formula-size stats, drop the work counters so
                        // aggregate solve time counts real solves once.
                        stats: smt::SolverStats {
                            num_vars: solved.stats.num_vars,
                            num_clauses: solved.stats.num_clauses,
                            ..smt::SolverStats::default()
                        },
                        result: solved.result,
                        core: solved.core,
                    });
                }
                None => match self.core_subsumed(v, ufp, c) {
                    Some(solved) => {
                        stats.core_clean += 1;
                        self.results.insert(fps[i], solved.clone());
                        outcomes[i] = Some(CheckOutcome {
                            check: c.check.clone(),
                            stats: solved.stats,
                            result: solved.result,
                            core: solved.core,
                        });
                    }
                    None => dirty.push(i),
                },
            }
        }
        stats.dirty = dirty.len();

        // Drop sessions whose edge no longer exists (peering/router
        // churn): only a live edge can ever pose a query again, and a
        // dead session would otherwise hold its encoded route structure
        // and learnt clauses forever.
        if !self.sessions.is_empty() {
            let live: HashSet<String> = topo
                .edge_ids()
                .flat_map(|e| {
                    let edge = topo.edge(e);
                    let (src, dst) = (&topo.node(edge.src).name, &topo.node(edge.dst).name);
                    [format!("{src}>{dst}:in"), format!("{src}>{dst}:out")]
                })
                .chain(std::iter::once("implication".to_string()))
                .collect();
            self.sessions.retain(|sig, _| live.contains(sig));
        }

        // Re-solve the dirty checks on persistent per-group sessions.
        self.solve_dirty(
            v,
            &universe,
            ufp,
            &checks,
            &fps,
            &dirty,
            &mut outcomes,
            &mut stats,
        );

        // Delta-aware invalidation: superseded fingerprints of the
        // changed neighborhood (previous round's checks whose structure
        // no longer occurs) are dropped from the carried cache, keeping
        // it proportional to the live check set no matter how many
        // rounds the daemon has seen. The neighborhood scope is only
        // valid under carry-over — a spec or shape change can retire
        // fingerprints anywhere, so the whole previous round is scanned.
        if let Some(prev) = &self.prev {
            let live: HashSet<u128> = fps.iter().map(|f| f.0).collect();
            let scope: Vec<usize> = match (carry_over, changed) {
                (true, Some(names)) => {
                    let ids: Vec<NodeId> = names
                        .iter()
                        .filter_map(|n| prev.node_of.get(n).copied())
                        .collect();
                    prev.index.dirty_candidates(&ids).into_iter().collect()
                }
                _ => (0..prev.fps.len()).collect(),
            };
            let stale: Vec<Fingerprint> = scope
                .into_iter()
                .map(|i| prev.fps[i])
                .filter(|f| !live.contains(&f.0))
                .collect();
            stats.invalidated += self.results.remove_many(&stale);
        }

        self.prev = Some(PrevRound {
            universe,
            fps,
            index,
            node_of: topo
                .node_ids()
                .map(|n| (topo.node(n).name.clone(), n))
                .collect(),
            spec_digest: sd,
            topo_shape: ts,
        });

        let mut report = Report {
            outcomes: outcomes
                .into_iter()
                .map(|o| o.expect("every check answered by cache or solve"))
                .collect(),
            total_time: t0.elapsed(),
            exec: orchestrator::RunStats::default(),
        };
        report.sort_by_id();
        if obs::enabled() {
            obs::add("reverify.rounds", 1);
            obs::add("reverify.checks", stats.total as u64);
            obs::add("reverify.dirty", stats.dirty as u64);
            obs::add("reverify.reused", stats.reused as u64);
            obs::add("reverify.core_clean", stats.core_clean as u64);
            obs::add("reverify.invalidated", stats.invalidated as u64);
            obs::add("reverify.sessions_reused", stats.sessions_reused as u64);
            obs::add("reverify.sessions_created", stats.sessions_created as u64);
            // Warm sessions currently held across rounds — a level, not
            // a rate, so it is a gauge (live on `watch --listen`).
            obs::gauge_set("reverify.warm_sessions", self.sessions.len() as u64);
            if stats.universe_reset {
                obs::add("reverify.universe_resets", 1);
            }
        }
        (report, stats)
    }

    /// Answer a fingerprint-missed check from the conjunct-core cache
    /// when a previously-proved core is subsumed by its current assume
    /// predicate (see the `cores` field for the soundness argument).
    /// Returns the replayed pass with the core re-indexed into the
    /// current conjunct list.
    fn core_subsumed(
        &self,
        v: &Verifier,
        ufp: Fingerprint,
        rc: &ResolvedCheck,
    ) -> Option<SolvedCheck> {
        let assume = match &rc.body {
            CheckBody::Transfer { assume, .. } | CheckBody::Implication { assume, .. } => assume,
            CheckBody::Originate { .. } => return None,
        };
        let rest = rest_fingerprint(ufp, v.policy(), v.ghosts(), &rc.body)?;
        let entries = self.cores.get(&rest.0)?;
        let conjs = assume.conjuncts();
        let fp_of: Vec<u128> = conjs.iter().map(conjunct_fingerprint).collect();
        let have: HashSet<u128> = fp_of.iter().copied().collect();
        let core = entries
            .iter()
            .find(|set| set.iter().all(|f| have.contains(f)))?;
        // Every current conjunct matching a core member is load-bearing
        // (duplicates included: their conjunction is the proved core).
        let idx: Vec<usize> = fp_of
            .iter()
            .enumerate()
            .filter(|(_, f)| core.contains(*f))
            .map(|(i, _)| i)
            .collect();
        Some(SolvedCheck {
            result: CheckResult::Pass,
            stats: smt::SolverStats::default(),
            core: Some(idx),
        })
    }

    /// Solve the dirty checks, grouped by encoding base, on persistent
    /// sessions keyed by topology-stable signatures.
    #[allow(clippy::too_many_arguments)]
    fn solve_dirty(
        &mut self,
        v: &Verifier,
        universe: &Universe,
        ufp: Fingerprint,
        checks: &[ResolvedCheck],
        fps: &[Fingerprint],
        dirty: &[usize],
        outcomes: &mut [Option<CheckOutcome>],
        stats: &mut ReverifyStats,
    ) {
        let topo = v.topology();
        // The result cache handle, separated from `self` so sessions can
        // stay mutably borrowed while verdicts are inserted.
        let results = self.results.clone();
        // Deterministic group order: BTreeMap over signatures, check
        // indices in submission order within each group.
        let mut transfers: BTreeMap<String, (EdgeId, bool, Vec<usize>)> = BTreeMap::new();
        let mut implications: Vec<usize> = Vec::new();
        for &i in dirty {
            match &checks[i].body {
                CheckBody::Transfer {
                    edge, is_import, ..
                } => {
                    let e = topo.edge(*edge);
                    let sig = format!(
                        "{}>{}:{}",
                        topo.node(e.src).name,
                        topo.node(e.dst).name,
                        if *is_import { "in" } else { "out" }
                    );
                    transfers
                        .entry(sig)
                        .or_insert_with(|| (*edge, *is_import, Vec::new()))
                        .2
                        .push(i);
                }
                CheckBody::Originate { edge, ensure } => {
                    // Concrete finite evaluation: no solver, no session.
                    let o = v.run_originate_check(&checks[i].check, *edge, ensure);
                    results.insert(
                        fps[i],
                        SolvedCheck {
                            result: o.result.clone(),
                            stats: o.stats,
                            core: None,
                        },
                    );
                    outcomes[i] = Some(o);
                }
                CheckBody::Implication { .. } => implications.push(i),
            }
        }

        // One record path for both group shapes: solve the
        // conjunct-gated query on the warm session (one activation per
        // assume conjunct plus one for the negated goal), retract it,
        // and — on Sat — re-derive the counterexample on a fresh
        // one-shot instance so session history (learnt clauses,
        // retracted rounds) can never change what the daemon reports
        // versus a fresh run. Passes record their conjunct core into the
        // engine's core cache so later rounds can answer invariant edits
        // that leave the load-bearing conjuncts intact without solving.
        let mut new_cores: Vec<(u128, BTreeSet<u128>)> = Vec::new();
        let mut solve_and_record =
            |gs: &mut GroupSession,
             i: usize,
             conjs: &[RoutePred],
             neg_build: &dyn Fn(&mut TermPool, &SymRoute) -> TermId| {
                // Within-round structural dedup: an earlier dirty check of
                // this round may have inserted the same fingerprint (e.g.
                // identical route-map templates across routers in a full
                // baseline round) — replicate its verdict instead of
                // re-solving, exactly like the orchestrator's dedup.
                if let Some(solved) = results.get(fps[i]) {
                    outcomes[i] = Some(CheckOutcome {
                        check: checks[i].check.clone(),
                        stats: smt::SolverStats {
                            num_vars: solved.stats.num_vars,
                            num_clauses: solved.stats.num_clauses,
                            ..smt::SolverStats::default()
                        },
                        result: solved.result,
                        core: solved.core,
                    });
                    return;
                }
                let input = gs.input.clone();
                let neg = neg_build(gs.sess.pool_mut(), &input);
                let (result, solve_stats, core) =
                    solve_conjunct_gated(&mut gs.sess, universe, &input, conjs, neg, true);
                let solved = match result {
                    SatResult::Unsat => SolvedCheck {
                        result: CheckResult::Pass,
                        stats: solve_stats,
                        core: core.clone(),
                    },
                    SatResult::Sat(_) => {
                        let o = v.run_one(universe, &checks[i]);
                        SolvedCheck {
                            result: o.result,
                            stats: o.stats,
                            core: None,
                        }
                    }
                };
                if let (true, Some(core_idx)) = (solved.result.passed(), &core) {
                    if let Some(rest) =
                        rest_fingerprint(ufp, v.policy(), v.ghosts(), &checks[i].body)
                    {
                        let set: BTreeSet<u128> = core_idx
                            .iter()
                            .map(|&ci| conjunct_fingerprint(&conjs[ci]))
                            .collect();
                        new_cores.push((rest.0, set));
                    }
                }
                results.insert(fps[i], solved.clone());
                outcomes[i] = Some(CheckOutcome {
                    check: checks[i].check.clone(),
                    result: solved.result,
                    stats: solved.stats,
                    core: solved.core,
                });
            };

        for (sig, (edge, is_import, idxs)) in transfers {
            let mut gs = self
                .sessions
                .remove(&sig)
                .inspect(|_| stats.sessions_reused += 1)
                .unwrap_or_else(|| {
                    stats.sessions_created += 1;
                    GroupSession::new(universe, self.learnt_cap)
                });
            let tfp = transfer_fingerprint(ufp, v.policy(), v.ghosts(), edge, is_import);
            if gs.transfer.as_ref().map(|(f, _)| *f) != Some(tfp) {
                if gs.transfer.is_some() {
                    gs.retired += 1;
                    if gs.retired > RETIRED_TRANSFER_LIMIT {
                        gs = GroupSession::new(universe, self.learnt_cap);
                        // A rebuild is fresh work, not a warm answer:
                        // keep the stats line honest about it.
                        stats.sessions_created += 1;
                    }
                }
                let input = gs.input.clone();
                let t = v.encode_transfer(gs.sess.pool_mut(), universe, edge, is_import, &input);
                gs.transfer = Some((tfp, t));
            }
            let transfer = gs.transfer.as_ref().expect("just encoded").1.clone();
            for i in idxs {
                let CheckBody::Transfer {
                    assume,
                    ensure,
                    require_accept,
                    ..
                } = &checks[i].body
                else {
                    unreachable!("transfer group mixes check shapes");
                };
                let conjs = assume.conjuncts();
                solve_and_record(&mut gs, i, &conjs, &|pool, _input| {
                    transfer_goal_negation(pool, universe, &transfer, ensure, *require_accept)
                });
            }
            self.sessions.insert(sig, gs);
        }

        if !implications.is_empty() {
            let sig = "implication".to_string();
            let mut gs = self
                .sessions
                .remove(&sig)
                .inspect(|_| stats.sessions_reused += 1)
                .unwrap_or_else(|| {
                    stats.sessions_created += 1;
                    GroupSession::new(universe, self.learnt_cap)
                });
            for i in implications {
                let CheckBody::Implication { assume, ensure } = &checks[i].body else {
                    unreachable!("implication group mixes check shapes");
                };
                let conjs = assume.conjuncts();
                solve_and_record(&mut gs, i, &conjs, &|pool, input| {
                    implication_goal_negation(pool, universe, input, ensure)
                });
            }
            self.sessions.insert(sig, gs);
        }

        // Merge this round's newly-proved cores into the core cache. A
        // new core is redundant when an existing (smaller or equal) one
        // already subsumes it; conversely a strictly smaller new core
        // retires the supersets it improves on.
        for (rest, set) in new_cores {
            let entry = match self.cores.entry(rest) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    self.core_order.push_back(rest);
                    e.insert(Vec::new())
                }
            };
            if entry.iter().any(|e| e.is_subset(&set)) {
                continue;
            }
            entry.retain(|e| !set.is_subset(e));
            entry.push(set);
            entry.sort_by_key(BTreeSet::len);
            entry.truncate(MAX_CORES_PER_REST);
        }
        while self.cores.len() > MAX_CORE_RESTS {
            let Some(oldest) = self.core_order.pop_front() else {
                break;
            };
            self.cores.remove(&oldest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ghost::{GhostAttr, GhostUpdate};
    use crate::invariants::Location;
    use crate::pred::RoutePred;
    use bgp_model::policy::Policy;
    use bgp_model::routemap::{RouteMap, RouteMapEntry, SetAction};
    use bgp_model::topology::Topology;
    use bgp_model::Community;

    fn c(s: &str) -> Community {
        s.parse().unwrap()
    }

    fn tag_map(name: &str, comm: Community) -> RouteMap {
        let mut m = RouteMap::new(name);
        m.push(RouteMapEntry::permit(10).setting(SetAction::Community {
            comms: vec![comm],
            additive: true,
        }));
        m
    }

    /// ISP1 -> R1 -> R2 -> ISP2 with the tag/drop no-transit scheme.
    fn network(tag_lp: Option<u32>) -> (Topology, Policy) {
        let mut t = Topology::new();
        let r1 = t.add_router("R1", 65000);
        let r2 = t.add_router("R2", 65000);
        let isp1 = t.add_external("ISP1", 100);
        let isp2 = t.add_external("ISP2", 200);
        t.add_session(r1, r2);
        t.add_session(isp1, r1);
        t.add_session(r2, isp2);
        let mut pol = Policy::new();
        let mut m = tag_map("FROM-ISP1", c("100:1"));
        if let Some(lp) = tag_lp {
            m.entries[0].sets.push(SetAction::LocalPref(lp));
        }
        pol.set_import(t.edge_between(isp1, r1).unwrap(), m);
        let mut drop = RouteMap::new("TO-ISP2");
        drop.push(
            RouteMapEntry::deny(10).matching(bgp_model::routemap::MatchCond::Community {
                comms: vec![c("100:1")],
                match_all: false,
            }),
        );
        drop.push(RouteMapEntry::permit(20));
        pol.set_export(t.edge_between(r2, isp2).unwrap(), drop);
        (t, pol)
    }

    fn inputs(t: &Topology) -> (SafetyProperty, NetworkInvariants, GhostAttr) {
        let r1 = t.node_by_name("R1").unwrap();
        let r2 = t.node_by_name("R2").unwrap();
        let isp1 = t.node_by_name("ISP1").unwrap();
        let isp2 = t.node_by_name("ISP2").unwrap();
        let to_isp2 = t.edge_between(r2, isp2).unwrap();
        let ghost = GhostAttr::new("FromISP1")
            .with_import(t.edge_between(isp1, r1).unwrap(), GhostUpdate::SetTrue)
            .with_import(t.edge_between(isp2, r2).unwrap(), GhostUpdate::SetFalse);
        let prop = SafetyProperty::new(Location::Edge(to_isp2), RoutePred::ghost("FromISP1").not())
            .named("no-transit");
        let key = RoutePred::ghost("FromISP1").implies(RoutePred::has_community(c("100:1")));
        let inv = NetworkInvariants::with_default(key)
            .with(Location::Edge(to_isp2), RoutePred::ghost("FromISP1").not());
        (prop, inv, ghost)
    }

    #[test]
    fn second_identical_round_is_all_cache() {
        let (t, pol) = network(None);
        let (prop, inv, ghost) = inputs(&t);
        let v = Verifier::new(&t, &pol).with_ghost(ghost);
        let mut eng = ReverifyEngine::new();
        let (r1, s1) = eng.reverify(&v, std::slice::from_ref(&prop), &inv, None);
        assert!(r1.all_passed(), "{}", r1.format_failures(&t));
        assert_eq!(s1.dirty, s1.total, "first round is a full run");
        let (r2, s2) = eng.reverify(&v, std::slice::from_ref(&prop), &inv, Some(&[]));
        assert_eq!(r1.to_string(), r2.to_string());
        assert_eq!(s2.dirty, 0, "{s2:?}");
        assert_eq!(s2.reused, s2.total);
        assert_eq!(s2.candidates, 1, "only the location-free subsumption");
    }

    #[test]
    fn single_router_edit_dirties_only_its_neighborhood() {
        let (t, pol) = network(None);
        let (prop, inv, ghost) = inputs(&t);
        let mut eng = ReverifyEngine::new();
        {
            let v = Verifier::new(&t, &pol).with_ghost(ghost.clone());
            let (_, s) = eng.reverify(&v, std::slice::from_ref(&prop), &inv, None);
            assert!(s.total > 0);
        }
        // Edit R1's import map (same communities: universe stable).
        let (t2, pol2) = network(Some(120));
        let (prop2, inv2, ghost2) = inputs(&t2);
        let v2 = Verifier::new(&t2, &pol2).with_ghost(ghost2);
        let changed = vec!["R1".to_string()];
        let (r, s) = eng.reverify(&v2, std::slice::from_ref(&prop2), &inv2, Some(&changed));
        assert!(r.all_passed(), "{}", r.format_failures(&t2));
        assert!(!s.universe_reset, "{s:?}");
        assert!(s.dirty > 0, "a semantic edit must dirty something");
        assert!(
            s.dirty <= s.candidates,
            "dirty set must stay within the delta neighborhood: {s:?}"
        );
        assert!(
            s.candidates < s.total,
            "neighborhood must be a strict subset: {s:?}"
        );
        // The dirty re-solve happened on the warm session the baseline
        // round created for that edge.
        assert!(s.sessions_reused > 0, "warm session must be reused: {s:?}");
        // The fresh engine agrees byte-for-byte.
        let fresh = v2.verify_safety(&prop2, &inv2);
        assert_eq!(fresh.to_string(), r.to_string());
        // Edit reverted: the old fingerprints were invalidated for the
        // changed neighborhood, so the revert is a fingerprint miss — but
        // the baseline round recorded the original check's conjunct core
        // under its (restored) rest fingerprint, so the revert is
        // answered core-clean without touching a solver at all.
        let (t3, pol3) = network(None);
        let (prop3, inv3, ghost3) = inputs(&t3);
        let v3 = Verifier::new(&t3, &pol3).with_ghost(ghost3);
        let (r3, s3) = eng.reverify(&v3, std::slice::from_ref(&prop3), &inv3, Some(&changed));
        assert!(r3.all_passed());
        assert_eq!(s3.dirty, 0, "revert must be core-clean: {s3:?}");
        assert!(s3.core_clean > 0, "{s3:?}");
        let fresh3 = v3.verify_safety(&prop3, &inv3);
        assert_eq!(fresh3.to_string(), r3.to_string());
    }

    #[test]
    fn invariant_edit_on_dead_conjunct_stays_core_clean() {
        // The default invariant is `key ∧ (key ∨ lp ≤ X)`: the second
        // conjunct is implied by the first, so no proof ever needs it.
        // Editing only X re-fingerprints every check that assumes or
        // ensures the default — but checks whose *ensure* side is stable
        // (the export onto the property edge, whose ensure is the
        // unchanged override) keep their rest fingerprint, and the
        // carried conjunct core answers them without solving.
        let (t, pol) = network(None);
        let (prop, _, ghost) = inputs(&t);
        let key = RoutePred::ghost("FromISP1").implies(RoutePred::has_community(c("100:1")));
        let dflt = |lp: u32| {
            key.clone().and(
                key.clone()
                    .or(RoutePred::local_pref(crate::pred::Cmp::Le, lp)),
            )
        };
        let override_pred = RoutePred::ghost("FromISP1").not();
        let inv1 = NetworkInvariants::with_default(dflt(1_000_000))
            .with(prop.location, override_pred.clone());
        let v = Verifier::new(&t, &pol).with_ghost(ghost);
        let mut eng = ReverifyEngine::new();
        let (r1, _) = eng.reverify(&v, std::slice::from_ref(&prop), &inv1, None);
        assert!(r1.all_passed(), "{}", r1.format_failures(&t));
        // Edit only the dead conjunct's bound.
        let inv2 =
            NetworkInvariants::with_default(dflt(2_000_000)).with(prop.location, override_pred);
        let (r2, s2) = eng.reverify(&v, std::slice::from_ref(&prop), &inv2, Some(&[]));
        assert!(!s2.universe_reset, "{s2:?}");
        assert!(r2.all_passed(), "{}", r2.format_failures(&t));
        assert!(
            s2.core_clean > 0,
            "stable-rest checks must be answered by core subsumption: {s2:?}"
        );
        assert_eq!(s2.reused + s2.core_clean + s2.dirty, s2.total, "{s2:?}");
        assert!(s2.dirty < s2.total, "{s2:?}");
        // Byte-identical to a fresh engine on the edited spec.
        let fresh = v.verify_safety(&prop, &inv2);
        assert_eq!(fresh.to_string(), r2.to_string());
        // The core-clean answers carry their (re-indexed) cores.
        assert!(r2
            .outcomes
            .iter()
            .any(|o| o.core.as_ref().is_some_and(|c| !c.is_empty())));
    }

    #[test]
    fn failing_rounds_match_fresh_runs_byte_for_byte() {
        let (t, pol) = network(None);
        let (prop, inv, ghost) = inputs(&t);
        let mut eng = ReverifyEngine::new();
        {
            let v = Verifier::new(&t, &pol).with_ghost(ghost.clone());
            eng.reverify(&v, std::slice::from_ref(&prop), &inv, None);
        }
        // Break R1's import: drop the tag (keep the community in the
        // universe via the TO-ISP2 match, so the layout is stable).
        let (t2, mut pol2) = network(None);
        let isp1 = t2.node_by_name("ISP1").unwrap();
        let r1 = t2.node_by_name("R1").unwrap();
        let e = t2.edge_between(isp1, r1).unwrap();
        let mut m = RouteMap::new("FROM-ISP1");
        m.push(RouteMapEntry::permit(10));
        pol2.set_import(e, m);
        let (prop2, inv2, ghost2) = inputs(&t2);
        let v2 = Verifier::new(&t2, &pol2).with_ghost(ghost2);
        let changed = vec!["R1".to_string()];
        let (r, s) = eng.reverify(&v2, std::slice::from_ref(&prop2), &inv2, Some(&changed));
        assert!(!r.all_passed(), "dropping the tag must violate no-transit");
        assert!(s.dirty > 0 && s.dirty <= s.candidates, "{s:?}");
        let fresh = v2.verify_safety(&prop2, &inv2);
        assert_eq!(fresh.to_string(), r.to_string());
        assert_eq!(fresh.format_failures(&t2), r.format_failures(&t2));
    }

    #[test]
    fn origination_reshuffle_disables_fingerprint_carry_over() {
        // Moving an origination from one edge to another preserves the
        // check *count* but shifts every check index in between: the
        // generation-shape digest must catch this and disable positional
        // carry-over (in debug builds the per-fingerprint assert would
        // fire otherwise).
        let mut t = Topology::new();
        let a = t.add_router("A", 1);
        let b = t.add_router("B", 1);
        let cc = t.add_router("C", 1);
        let d = t.add_router("D", 1);
        let x1 = t.add_external("X1", 2);
        let x2 = t.add_external("X2", 3);
        t.add_session(x1, a);
        t.add_session(a, b);
        t.add_session(b, cc);
        t.add_session(cc, d);
        t.add_session(d, x2);
        let route = bgp_model::Route::new("198.51.100.0/24".parse().unwrap());
        let mut pol_a = bgp_model::Policy::new();
        pol_a.add_origination(t.edge_between(a, b).unwrap(), route.clone());
        let mut pol_b = bgp_model::Policy::new();
        pol_b.add_origination(t.edge_between(d, x2).unwrap(), route);

        let prop = SafetyProperty::new(Location::Node(cc), RoutePred::True);
        let inv = NetworkInvariants::new();
        let mut eng = ReverifyEngine::new();
        let total_a = {
            let v = Verifier::new(&t, &pol_a);
            let (r, s) = eng.reverify(&v, std::slice::from_ref(&prop), &inv, None);
            assert!(r.all_passed());
            s.total
        };
        // Only the two origination-owning routers are named changed; the
        // B/C checks in between are exactly the ones that would carry
        // wrong fingerprints under a naive count-only guard.
        let changed = vec!["A".to_string(), "D".to_string()];
        let v = Verifier::new(&t, &pol_b);
        let (r, s) = eng.reverify(&v, std::slice::from_ref(&prop), &inv, Some(&changed));
        assert_eq!(s.total, total_a, "count-preserving reshuffle");
        assert_eq!(
            s.candidates, s.total,
            "reshuffle must disable carry-over: {s:?}"
        );
        let fresh = v.verify_safety(&prop, &inv);
        assert_eq!(fresh.to_string(), r.to_string());
    }

    #[test]
    fn spec_change_invalidates_outside_the_named_delta() {
        // Changing the invariants retires *every* previous fingerprint,
        // even when the caller names an (empty) config delta: the
        // neighborhood scope is only trusted under carry-over, so the
        // carried cache must not accumulate dead old-spec entries.
        let (t, pol) = network(None);
        let (prop, inv, ghost) = inputs(&t);
        let mut eng = ReverifyEngine::new();
        let v = Verifier::new(&t, &pol).with_ghost(ghost);
        let (r1, s1) = eng.reverify(&v, std::slice::from_ref(&prop), &inv, None);
        assert!(r1.all_passed());
        // Strengthen the default invariant (no new universe atoms:
        // local-pref is a built-in bitvector attribute).
        let inv2 = NetworkInvariants::with_default(
            RoutePred::ghost("FromISP1")
                .implies(RoutePred::has_community(c("100:1")))
                .and(RoutePred::local_pref(crate::pred::Cmp::Le, 1_000_000)),
        )
        .with(prop.location, RoutePred::ghost("FromISP1").not());
        let (_, s2) = eng.reverify(&v, std::slice::from_ref(&prop), &inv2, Some(&[]));
        assert!(!s2.universe_reset, "{s2:?}");
        assert_eq!(s2.candidates, s2.total, "no carry-over under a new spec");
        assert!(s2.dirty > 0, "{s2:?}");
        assert!(
            s2.invalidated > 0,
            "old-spec fingerprints must be retired: {s2:?}"
        );
        assert!(
            eng.cache().len() <= s1.total.max(s2.total),
            "carried cache must stay proportional to the live check set"
        );
    }

    #[test]
    fn universe_shape_change_resets_state() {
        let (t, pol) = network(None);
        let (prop, inv, ghost) = inputs(&t);
        let mut eng = ReverifyEngine::new();
        {
            let v = Verifier::new(&t, &pol).with_ghost(ghost.clone());
            eng.reverify(&v, std::slice::from_ref(&prop), &inv, None);
        }
        // A new community enters the universe: full reset.
        let (t2, mut pol2) = network(None);
        let isp1 = t2.node_by_name("ISP1").unwrap();
        let r1 = t2.node_by_name("R1").unwrap();
        let e = t2.edge_between(isp1, r1).unwrap();
        let mut m = tag_map("FROM-ISP1", c("100:1"));
        m.entries[0].sets.push(SetAction::Community {
            comms: vec![c("999:9")],
            additive: true,
        });
        pol2.set_import(e, m);
        let (prop2, inv2, ghost2) = inputs(&t2);
        let v2 = Verifier::new(&t2, &pol2).with_ghost(ghost2);
        let (r, s) = eng.reverify(
            &v2,
            std::slice::from_ref(&prop2),
            &inv2,
            Some(&["R1".to_string()]),
        );
        assert!(s.universe_reset, "{s:?}");
        assert_eq!(s.dirty, s.total, "reset forces a full round");
        let fresh = v2.verify_safety(&prop2, &inv2);
        assert_eq!(fresh.to_string(), r.to_string());
    }
}
