//! The finite attribute universe underlying the symbolic encoding.
//!
//! The symbolic route representation tracks one boolean per community that
//! appears *anywhere* in the configurations or the properties being
//! checked, plus a single "other communities" summary bit for everything
//! outside that set. AS-path regexes are interned so each distinct pattern
//! gets one boolean match atom per symbolic route. Ghost attributes (§4.4)
//! are named booleans.
//!
//! This is design decision **D1/D2** in DESIGN.md: the universe is finite
//! and syntactic, keeping each local check's encoding size independent of
//! the network size (the property behind Figure 3b of the paper).

use bgp_model::policy::Policy;
use bgp_model::route::Community;
use bgp_model::routemap::{MatchCond, RouteMap, SetAction};
use std::collections::BTreeMap;

/// Walk every community and AS-path-regex mention in a route map (the
/// one definition both scan entry points share).
fn for_each_mention(m: &RouteMap, comm: &mut dyn FnMut(Community), regex: &mut dyn FnMut(&str)) {
    for e in &m.entries {
        for cond in &e.matches {
            match cond {
                MatchCond::Community { comms, .. } => comms.iter().for_each(|c| comm(*c)),
                MatchCond::CommunityList { entries, .. } => {
                    for (_, comms) in entries {
                        comms.iter().for_each(|c| comm(*c));
                    }
                }
                MatchCond::AsPath(entries) => {
                    for (_, re) in entries {
                        regex(re.pattern());
                    }
                }
                _ => {}
            }
        }
        for set in &e.sets {
            match set {
                SetAction::Community { comms, .. } | SetAction::DeleteCommunities(comms) => {
                    comms.iter().for_each(|c| comm(*c));
                }
                _ => {}
            }
        }
    }
}

/// Interned id of an AS-path regex.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegexId(pub u32);

/// The attribute universe for one verification problem.
#[derive(Clone, Debug, Default)]
pub struct Universe {
    communities: Vec<Community>,
    comm_index: BTreeMap<Community, usize>,
    regexes: Vec<String>,
    regex_index: BTreeMap<String, RegexId>,
    ghosts: Vec<String>,
}

impl Universe {
    /// An empty universe.
    pub fn new() -> Self {
        Universe::default()
    }

    /// Collect every community and AS-path regex mentioned in a policy.
    pub fn from_policy(policy: &Policy) -> Self {
        let mut u = Universe::new();
        u.scan_policy(policy);
        u
    }

    /// Scan a policy, adding everything it mentions — in **sorted**
    /// order, independent of map names, scan order or hash-map
    /// iteration. The universe *layout* (registration order) must be a
    /// pure function of the policy's semantic content: cross-run
    /// re-verification reuses symbolic encodings only while the layout
    /// is unchanged, and a cosmetic edit (e.g. a route-map rename,
    /// which reorders a name-based scan) must not move anything.
    pub fn scan_policy(&mut self, policy: &Policy) {
        let mut comms: std::collections::BTreeSet<Community> = std::collections::BTreeSet::new();
        let mut regexes: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for m in policy.import.values().chain(policy.export.values()) {
            for_each_mention(
                m,
                &mut |c| {
                    comms.insert(c);
                },
                &mut |re| {
                    regexes.insert(re.to_string());
                },
            );
        }
        for routes in policy.originate.values() {
            for r in routes {
                comms.extend(r.communities.iter().copied());
            }
        }
        for c in comms {
            self.add_community(c);
        }
        for p in regexes {
            self.add_regex(&p);
        }
    }

    /// Scan one route map (attributes register in encounter order; use
    /// [`Universe::scan_policy`] for the canonical whole-policy layout).
    pub fn scan_route_map(&mut self, m: &RouteMap) {
        let mut comms = Vec::new();
        let mut regexes = Vec::new();
        for_each_mention(m, &mut |c| comms.push(c), &mut |re| {
            regexes.push(re.to_string())
        });
        for c in comms {
            self.add_community(c);
        }
        for p in regexes {
            self.add_regex(&p);
        }
    }

    /// Register a community; returns its bit index.
    pub fn add_community(&mut self, c: Community) -> usize {
        if let Some(&i) = self.comm_index.get(&c) {
            return i;
        }
        let i = self.communities.len();
        self.communities.push(c);
        self.comm_index.insert(c, i);
        i
    }

    /// Register an AS-path regex; returns its id.
    pub fn add_regex(&mut self, pattern: &str) -> RegexId {
        if let Some(&id) = self.regex_index.get(pattern) {
            return id;
        }
        let id = RegexId(self.regexes.len() as u32);
        self.regexes.push(pattern.to_string());
        self.regex_index.insert(pattern.to_string(), id);
        id
    }

    /// Register a ghost attribute name; returns its index.
    pub fn add_ghost(&mut self, name: &str) -> usize {
        if let Some(i) = self.ghosts.iter().position(|g| g == name) {
            return i;
        }
        self.ghosts.push(name.to_string());
        self.ghosts.len() - 1
    }

    /// Bit index of a community, if registered.
    pub fn community_index(&self, c: Community) -> Option<usize> {
        self.comm_index.get(&c).copied()
    }

    /// Id of a regex, if registered.
    pub fn regex_id(&self, pattern: &str) -> Option<RegexId> {
        self.regex_index.get(pattern).copied()
    }

    /// Index of a ghost attribute, if registered.
    pub fn ghost_index(&self, name: &str) -> Option<usize> {
        self.ghosts.iter().position(|g| g == name)
    }

    /// The registered communities, in registration order.
    pub fn communities(&self) -> &[Community] {
        &self.communities
    }

    /// The registered regex patterns.
    pub fn regexes(&self) -> &[String] {
        &self.regexes
    }

    /// The registered ghost names.
    pub fn ghosts(&self) -> &[String] {
        &self.ghosts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::routemap::{RouteMapEntry, SetAction};
    use bgp_model::topology::EdgeId;

    fn c(s: &str) -> Community {
        s.parse().unwrap()
    }

    #[test]
    fn collects_from_policy() {
        let mut pol = Policy::new();
        let mut m = RouteMap::new("A");
        m.push(RouteMapEntry::permit(10).setting(SetAction::Community {
            comms: vec![c("1:1"), c("2:2")],
            additive: true,
        }));
        m.push(RouteMapEntry::deny(20).matching(MatchCond::Community {
            comms: vec![c("3:3")],
            match_all: false,
        }));
        pol.set_import(EdgeId(0), m);
        let re = bgp_model::AsPathRegex::compile("_65001_").unwrap();
        let mut m2 = RouteMap::new("B");
        m2.push(RouteMapEntry::deny(10).matching(MatchCond::AsPath(vec![(true, re)])));
        pol.set_export(EdgeId(1), m2);

        let u = Universe::from_policy(&pol);
        assert_eq!(u.communities().len(), 3);
        assert!(u.community_index(c("1:1")).is_some());
        assert!(u.community_index(c("3:3")).is_some());
        assert!(u.community_index(c("9:9")).is_none());
        assert_eq!(u.regexes().len(), 1);
        assert!(u.regex_id("_65001_").is_some());
    }

    #[test]
    fn interning_is_idempotent() {
        let mut u = Universe::new();
        let a = u.add_community(c("1:1"));
        let b = u.add_community(c("1:1"));
        assert_eq!(a, b);
        let r1 = u.add_regex("_1_");
        let r2 = u.add_regex("_1_");
        assert_eq!(r1, r2);
        let g1 = u.add_ghost("G");
        let g2 = u.add_ghost("G");
        assert_eq!(g1, g2);
        assert_eq!(u.ghosts(), &["G".to_string()]);
    }

    #[test]
    fn deterministic_order() {
        // Policies built in different insertion orders yield the same
        // universe (important for reproducible check encodings).
        let mk = |order: &[&str]| {
            let mut pol = Policy::new();
            for (i, name) in order.iter().enumerate() {
                let mut m = RouteMap::new(*name);
                let comm = if *name == "A" { c("1:1") } else { c("2:2") };
                m.push(RouteMapEntry::permit(10).setting(SetAction::Community {
                    comms: vec![comm],
                    additive: true,
                }));
                pol.set_import(EdgeId(i as u32), m);
            }
            Universe::from_policy(&pol).communities().to_vec()
        };
        assert_eq!(mk(&["A", "B"]), mk(&["B", "A"]));
    }
}
