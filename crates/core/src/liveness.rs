//! Liveness verification (§5).
//!
//! A liveness property `(ℓ, P)` states that a route satisfying `P` will
//! *eventually* reach `ℓ`. The user provides a topological path
//! `ℓ_1, ..., ℓ_n = ℓ` (alternating routers and edges) and a constraint
//! `C_i` per path location describing the "good" routes there. Lightyear
//! generates:
//!
//! * **propagation checks** along the path: good routes are not rejected
//!   and stay good across each import/export step;
//! * **no-interference checks**: at every router on the path, any
//!   acceptable route sharing a prefix with the good routes is itself good
//!   (so a preferred route from elsewhere cannot break the property).
//!   These are safety properties, proven with their own invariants via the
//!   §4 machinery;
//! * the **final implication** `C_n ⟹ P`.
//!
//! The theorem (§5.3) then guarantees: if an announcement satisfying `C_1`
//! arrives at `ℓ_1` and no link on the path fails, a route satisfying `P`
//! eventually appears at `ℓ` — failures elsewhere in the network are
//! tolerated.

use crate::check::{Check, CheckKind, Report};
use crate::engine::{CheckBody, ResolvedCheck, Verifier};
use crate::invariants::{Location, NetworkInvariants};
use crate::pred::RoutePred;
use crate::safety::SafetyProperty;
use std::fmt;
use std::time::Instant;

/// A liveness verification problem.
#[derive(Clone, Debug)]
pub struct LivenessSpec {
    /// The property location (must equal the last path location).
    pub location: Location,
    /// The predicate a route reaching the location must satisfy.
    pub pred: RoutePred,
    /// The witness path `ℓ_1 ... ℓ_n` (alternating router/edge locations,
    /// consistent with the topology).
    pub path: Vec<Location>,
    /// One constraint per path location (`C_1 ... C_n`). `C_1` is the
    /// assumption on the announcement entering the path.
    pub constraints: Vec<RoutePred>,
    /// The prefix scope: a predicate over prefixes equal to
    /// "Prefix(r) ∈ Prefix(C_i)" (§5.2). Used in no-interference checks.
    pub prefix_scope: RoutePred,
    /// Invariants used to prove the no-interference safety properties.
    pub interference_invariants: NetworkInvariants,
    /// Optional display name.
    pub name: Option<String>,
}

/// Errors in a liveness specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid liveness spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

impl LivenessSpec {
    /// Validate path shape against a topology: locations alternate
    /// node/edge, each edge connects its neighbors, and the path ends at
    /// the property location.
    pub fn validate(&self, topo: &bgp_model::Topology) -> Result<(), SpecError> {
        if self.path.is_empty() {
            return Err(SpecError("path is empty".into()));
        }
        if self.path.len() != self.constraints.len() {
            return Err(SpecError(format!(
                "{} path locations but {} constraints",
                self.path.len(),
                self.constraints.len()
            )));
        }
        if *self.path.last().unwrap() != self.location {
            return Err(SpecError("path must end at the property location".into()));
        }
        for w in self.path.windows(2) {
            match (w[0], w[1]) {
                (Location::Node(r), Location::Edge(e)) => {
                    if topo.edge(e).src != r {
                        return Err(SpecError(format!(
                            "edge {} does not leave router {}",
                            topo.edge_name(e),
                            topo.node(r).name
                        )));
                    }
                }
                (Location::Edge(e), Location::Node(r)) => {
                    if topo.edge(e).dst != r {
                        return Err(SpecError(format!(
                            "edge {} does not enter router {}",
                            topo.edge_name(e),
                            topo.node(r).name
                        )));
                    }
                }
                _ => {
                    return Err(SpecError("path must alternate routers and edges".into()));
                }
            }
        }
        Ok(())
    }
}

impl<'a> Verifier<'a> {
    /// Verify a liveness property. Returns the combined report over
    /// propagation checks, no-interference sub-verifications and the
    /// final implication.
    ///
    /// The propagation checks and the final implication are lowered to
    /// resolved check bodies and dispatched through the engine's normal
    /// execution pipeline, so they benefit from incremental group
    /// solving and — in [`crate::engine::RunMode::Parallel`] — from the
    /// orchestrator's dedup/cache/work-stealing machinery like every
    /// safety check.
    pub fn verify_liveness(&self, spec: &LivenessSpec) -> Result<Report, SpecError> {
        spec.validate(self.topology())?;
        let t0 = Instant::now();
        let mut id = 0usize;

        // Universe: policy + ghosts + every predicate involved.
        let mut extra: Vec<&RoutePred> = vec![&spec.pred, &spec.prefix_scope];
        extra.extend(spec.constraints.iter());
        let universe = self.liveness_universe(&extra, &spec.interference_invariants);

        // Propagation checks along the path: good routes must be accepted
        // and stay good, i.e. transfer checks with `require_accept`.
        let mut prop_checks = Vec::new();
        for i in 0..spec.path.len() - 1 {
            let (edge, is_import) = match (spec.path[i], spec.path[i + 1]) {
                (Location::Node(_), Location::Edge(e)) => (e, false), // export step
                (Location::Edge(e), Location::Node(_)) => (e, true),  // import step
                _ => unreachable!("validated"),
            };
            prop_checks.push(ResolvedCheck {
                check: Check {
                    id,
                    kind: CheckKind::Propagation,
                    location: spec.path[i + 1],
                    edge: Some(edge),
                    map_name: if is_import {
                        self.policy().import_map(edge).map(|m| m.name.clone())
                    } else {
                        self.policy().export_map(edge).map(|m| m.name.clone())
                    },
                    description: format!(
                        "good routes propagate across {} ({})",
                        self.topology().edge_name(edge),
                        if is_import { "import" } else { "export" }
                    ),
                },
                body: CheckBody::Transfer {
                    edge,
                    is_import,
                    assume: spec.constraints[i].clone(),
                    ensure: spec.constraints[i + 1].clone(),
                    require_accept: true,
                },
            });
            id += 1;
        }
        let mut report = self.run_resolved(&universe, &prop_checks);

        // No-interference: safety property at each router on the path.
        for (i, loc) in spec.path.iter().enumerate() {
            let Location::Node(r) = *loc else { continue };
            let prop = SafetyProperty::new(
                Location::Node(r),
                spec.prefix_scope
                    .clone()
                    .implies(spec.constraints[i].clone()),
            )
            .named(format!(
                "no-interference at {}",
                self.topology().node(r).name
            ));
            let sub = self.verify_safety(&prop, &spec.interference_invariants);
            report.exec.merge(&sub.exec);
            for mut o in sub.outcomes {
                o.check.id = id;
                id += 1;
                o.check.description = format!(
                    "[no-interference at {}] {}",
                    self.topology().node(r).name,
                    o.check.description
                );
                if o.check.kind == CheckKind::Subsumption {
                    o.check.kind = CheckKind::NoInterference;
                }
                report.outcomes.push(o);
            }
        }

        // Final implication: C_n => P.
        let final_check = ResolvedCheck {
            check: Check {
                id,
                kind: CheckKind::Subsumption,
                location: spec.location,
                edge: None,
                map_name: None,
                description: "final path constraint implies the liveness property".into(),
            },
            body: CheckBody::Implication {
                assume: spec.constraints.last().unwrap().clone(),
                ensure: spec.pred.clone(),
            },
        };
        let fin = self.run_resolved(&universe, std::slice::from_ref(&final_check));
        report.exec.merge(&fin.exec);
        report.outcomes.extend(fin.outcomes);

        report.sort_by_id();
        report.total_time = t0.elapsed();
        Ok(report)
    }

    /// The assume-side conjuncts of every check
    /// [`Verifier::verify_liveness`] generates for `spec`, rendered for
    /// display and indexed by check id — the namespace the indices of a
    /// liveness report's [`crate::check::CheckOutcome::core`] point
    /// into (the liveness counterpart of
    /// [`Verifier::check_conjuncts_all`], and what the CLI's `--json`
    /// liveness `cores` output renders `load_bearing` from).
    ///
    /// Mirrors the generation order exactly: propagation checks along
    /// the path (assume = `C_i`), then each on-path router's
    /// no-interference sub-suite, then the final implication (assume =
    /// `C_n`). Returns `None` entries for checks with no symbolic
    /// assume side (concrete originate checks of the sub-suites).
    pub fn liveness_check_conjuncts(&self, spec: &LivenessSpec) -> Vec<Option<Vec<String>>> {
        let render = |p: &RoutePred| -> Option<Vec<String>> {
            Some(p.conjuncts().iter().map(|c| c.to_string()).collect())
        };
        let mut out = Vec::new();
        for i in 0..spec.path.len().saturating_sub(1) {
            out.push(render(&spec.constraints[i]));
        }
        for (i, loc) in spec.path.iter().enumerate() {
            let Location::Node(r) = *loc else { continue };
            let prop = SafetyProperty::new(
                Location::Node(r),
                spec.prefix_scope
                    .clone()
                    .implies(spec.constraints[i].clone()),
            );
            out.extend(
                self.check_conjuncts_all(
                    std::slice::from_ref(&prop),
                    &spec.interference_invariants,
                ),
            );
        }
        if let Some(last) = spec.constraints.last() {
            out.push(render(last));
        }
        out
    }

    fn liveness_universe(
        &self,
        extra: &[&RoutePred],
        interference_inv: &NetworkInvariants,
    ) -> crate::universe::Universe {
        let mut u = crate::universe::Universe::from_policy(self.policy());
        for g in self.ghost_names() {
            u.add_ghost(&g);
        }
        for p in extra {
            p.register(&mut u);
        }
        interference_inv.register(&mut u);
        u
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Verifier;
    use bgp_model::routemap::{MatchCond, RouteMap, RouteMapEntry, SetAction};
    use bgp_model::{Community, Policy, PrefixRange, Topology};

    fn c(s: &str) -> Community {
        s.parse().unwrap()
    }

    /// Figure-1 network (same as engine tests).
    fn figure1() -> (Topology, Policy) {
        let mut t = Topology::new();
        let r1 = t.add_router("R1", 65000);
        let r2 = t.add_router("R2", 65000);
        let r3 = t.add_router("R3", 65000);
        let isp1 = t.add_external("ISP1", 100);
        let isp2 = t.add_external("ISP2", 200);
        let cust = t.add_external("Customer", 300);
        t.add_session(r1, r2);
        t.add_session(r1, r3);
        t.add_session(r2, r3);
        t.add_session(isp1, r1);
        t.add_session(isp2, r2);
        t.add_session(cust, r3);

        let mut pol = Policy::new();
        let mut m = RouteMap::new("FROM-ISP1");
        m.push(RouteMapEntry::permit(10).setting(SetAction::Community {
            comms: vec![c("100:1")],
            additive: true,
        }));
        pol.set_import(t.edge_between(isp1, r1).unwrap(), m);
        // R3 strips communities on customer routes (needed so good routes
        // lack 100:1).
        let mut m = RouteMap::new("FROM-CUST");
        m.push(RouteMapEntry::permit(10).setting(SetAction::ClearCommunities));
        pol.set_import(t.edge_between(cust, r3).unwrap(), m);
        // R2 strips communities on routes from ISP2 (so interfering routes
        // from ISP2 cannot carry 100:1 either).
        let mut m = RouteMap::new("FROM-ISP2");
        m.push(RouteMapEntry::permit(10).setting(SetAction::ClearCommunities));
        pol.set_import(t.edge_between(isp2, r2).unwrap(), m);
        let mut m = RouteMap::new("TO-ISP2");
        m.push(RouteMapEntry::deny(10).matching(MatchCond::Community {
            comms: vec![c("100:1")],
            match_all: false,
        }));
        m.push(RouteMapEntry::permit(20));
        pol.set_export(t.edge_between(r2, isp2).unwrap(), m);
        (t, pol)
    }

    fn cust_prefix() -> RoutePred {
        RoutePred::prefix_in(vec![PrefixRange::orlonger(
            "203.0.113.0/24".parse().unwrap(),
        )])
    }

    fn table3_spec(t: &Topology) -> LivenessSpec {
        let r2 = t.node_by_name("R2").unwrap();
        let r3 = t.node_by_name("R3").unwrap();
        let cust = t.node_by_name("Customer").unwrap();
        let isp2 = t.node_by_name("ISP2").unwrap();
        let cust_r3 = t.edge_between(cust, r3).unwrap();
        let r3_r2 = t.edge_between(r3, r2).unwrap();
        let r2_isp2 = t.edge_between(r2, isp2).unwrap();

        let has_cust = cust_prefix();
        let good = has_cust
            .clone()
            .and(RoutePred::has_community(c("100:1")).not());

        // Interference invariants: routes with customer prefixes inside
        // the network never carry 100:1. ISP1's import tags 100:1 but the
        // key invariant holds because... it does NOT hold for routes from
        // ISP1 with customer prefixes unless R1 filters them; for this
        // test, restrict interference invariants to the locations involved
        // by using a default that matches the network behaviour: routes
        // with a customer prefix carry 100:1 only if they came from ISP1.
        // The standard trick (as in Table 3) is the invariant
        // "HasCustPrefix(r) => !100:1 in Comm(r)" which requires R1 to
        // drop customer prefixes from ISP1. Add that filter here.
        let interference = NetworkInvariants::with_default(
            has_cust
                .clone()
                .implies(RoutePred::has_community(c("100:1")).not()),
        );

        LivenessSpec {
            location: Location::Edge(r2_isp2),
            pred: has_cust.clone(),
            path: vec![
                Location::Edge(cust_r3),
                Location::Node(r3),
                Location::Edge(r3_r2),
                Location::Node(r2),
                Location::Edge(r2_isp2),
            ],
            constraints: vec![
                has_cust.clone(), // assumption at Customer -> R3
                good.clone(),     // at R3
                good.clone(),     // on R3 -> R2
                good,             // at R2
                has_cust,         // on R2 -> ISP2
            ],
            prefix_scope: cust_prefix(),
            interference_invariants: interference,
            name: Some("customer-liveness".into()),
        }
    }

    /// Add the R1 filter that drops customer prefixes from ISP1, needed
    /// for the no-interference invariant to hold.
    fn add_r1_cust_filter(t: &Topology, pol: &mut Policy) {
        let isp1 = t.node_by_name("ISP1").unwrap();
        let r1 = t.node_by_name("R1").unwrap();
        let e = t.edge_between(isp1, r1).unwrap();
        let mut m = RouteMap::new("FROM-ISP1");
        m.push(RouteMapEntry::deny(5).matching(MatchCond::PrefixList(vec![(
            true,
            PrefixRange::orlonger("203.0.113.0/24".parse().unwrap()),
        )])));
        m.push(RouteMapEntry::permit(10).setting(SetAction::Community {
            comms: vec![c("100:1")],
            additive: true,
        }));
        pol.set_import(e, m);
    }

    #[test]
    fn table3_liveness_verifies() {
        let (t, mut pol) = figure1();
        add_r1_cust_filter(&t, &mut pol);
        let spec = table3_spec(&t);
        let v = Verifier::new(&t, &pol);
        let report = v.verify_liveness(&spec).unwrap();
        assert!(report.all_passed(), "{}", report.format_failures(&t));
        // 4 propagation checks + no-interference sub-reports + final.
        let props = report
            .outcomes
            .iter()
            .filter(|o| o.check.kind == CheckKind::Propagation)
            .count();
        assert_eq!(props, 4);
    }

    #[test]
    fn missing_strip_breaks_propagation() {
        let (t, mut pol) = figure1();
        add_r1_cust_filter(&t, &mut pol);
        // Remove R3's community strip: customer routes may carry 100:1
        // (the subtlety §2.2 calls out).
        let cust = t.node_by_name("Customer").unwrap();
        let r3 = t.node_by_name("R3").unwrap();
        pol.import.remove(&t.edge_between(cust, r3).unwrap());

        let spec = table3_spec(&t);
        let v = Verifier::new(&t, &pol);
        let report = v.verify_liveness(&spec).unwrap();
        assert!(!report.all_passed());
        let fail = report
            .failures()
            .iter()
            .find(|o| o.check.kind == CheckKind::Propagation)
            .cloned()
            .expect("a propagation check must fail");
        // The failing step is the customer import at R3.
        assert_eq!(
            fail.check.edge,
            Some(t.edge_between(cust, r3).unwrap()),
            "{}",
            report.format_failures(&t)
        );
    }

    #[test]
    fn invalid_paths_rejected() {
        let (t, pol) = figure1();
        let mut spec = table3_spec(&t);
        spec.path.pop();
        spec.constraints.pop();
        let v = Verifier::new(&t, &pol);
        assert!(v.verify_liveness(&spec).is_err()); // no longer ends at ℓ

        let mut spec2 = table3_spec(&t);
        spec2.constraints.pop();
        assert!(v.verify_liveness(&spec2).is_err()); // length mismatch

        let mut spec3 = table3_spec(&t);
        spec3.path.swap(1, 3); // breaks alternation consistency
        assert!(v.verify_liveness(&spec3).is_err());
    }

    #[test]
    fn liveness_reports_carry_cores_aligned_with_conjuncts() {
        let (t, mut pol) = figure1();
        add_r1_cust_filter(&t, &mut pol);
        let spec = table3_spec(&t);
        let v = Verifier::new(&t, &pol);
        let report = v.verify_liveness(&spec).unwrap();
        assert!(report.all_passed());
        // Incremental group solving is the default, so session-solved
        // passing checks must surface conjunct-level unsat cores.
        let cores = report.cores();
        assert!(!cores.is_empty(), "liveness passes must report cores");
        // The conjunct namespace aligns with the report's id space, and
        // every core index points into its check's conjunct list.
        let conjs = v.liveness_check_conjuncts(&spec);
        assert_eq!(conjs.len(), report.num_checks());
        for (check, core) in &cores {
            let names = conjs[check.id]
                .as_ref()
                .expect("a check with a core has a symbolic assume side");
            for &i in *core {
                assert!(
                    i < names.len(),
                    "core index {i} out of range for check #{} ({} conjuncts)",
                    check.id,
                    names.len()
                );
            }
        }
        // Propagation checks assume the path constraints.
        assert_eq!(
            conjs[0].as_ref().unwrap().len(),
            spec.constraints[0].conjuncts().len()
        );
    }

    #[test]
    fn final_implication_failure() {
        let (t, mut pol) = figure1();
        add_r1_cust_filter(&t, &mut pol);
        let mut spec = table3_spec(&t);
        // Strengthen the property beyond what C_n guarantees.
        spec.pred = spec
            .pred
            .and(RoutePred::local_pref(crate::pred::Cmp::Eq, 7));
        let v = Verifier::new(&t, &pol);
        let report = v.verify_liveness(&spec).unwrap();
        assert!(report
            .failures()
            .iter()
            .any(|o| o.check.kind == CheckKind::Subsumption));
    }
}
