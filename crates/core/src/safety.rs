//! Safety properties (§4).
//!
//! A safety property `(ℓ, P)` states that every route that can reach
//! location `ℓ` — selected at a router, or forwarded/received on an edge —
//! satisfies `P`, for all possible external announcements and arbitrary
//! node/link failures (§4.5). Check generation and execution live in
//! [`crate::engine`]; by default the generated checks are solved in
//! encoding-base groups on persistent assumption-based SMT sessions
//! (one transfer encoding per edge, one implication session per batch),
//! which is what makes verifying many properties against one invariant
//! assignment (`Verifier::verify_safety_multi`) cheap: the §4.3 lemma
//! already shares the Import/Export/Originate checks across properties,
//! and the per-property subsumption checks then share one solver.
//!
//! The sharing compounds across *independent* property suites too:
//! `Verifier::verify_safety_batch` runs several `(properties,
//! invariants)` problems as one batch, the property-agnostic
//! encoding-base key putting same-edge checks from different suites on
//! one persistent session — each edge is encoded once for the whole
//! spec. Passing checks additionally report the unsat core of invariant
//! conjuncts their proof needed (`CheckOutcome::core`).

use crate::invariants::Location;
use crate::pred::RoutePred;
use bgp_model::topology::Topology;
use std::fmt;

/// A network safety property `(ℓ, P)`.
#[derive(Clone, Debug)]
pub struct SafetyProperty {
    /// The location the property constrains.
    pub location: Location,
    /// The predicate every route reaching the location must satisfy.
    pub pred: RoutePred,
    /// Optional human-readable name used in reports.
    pub name: Option<String>,
}

impl SafetyProperty {
    /// A property at a location.
    pub fn new(location: Location, pred: RoutePred) -> Self {
        SafetyProperty {
            location,
            pred,
            name: None,
        }
    }

    /// Attach a display name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Render with topology names.
    pub fn display(&self, topo: &Topology) -> String {
        format!(
            "{}: routes at {} satisfy {}",
            self.name.as_deref().unwrap_or("property"),
            self.location.display(topo),
            self.pred
        )
    }
}

impl fmt::Display for SafetyProperty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: routes at {:?} satisfy {}",
            self.name.as_deref().unwrap_or("property"),
            self.location,
            self.pred
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::topology::NodeId;

    #[test]
    fn display_includes_name() {
        let p = SafetyProperty::new(Location::Node(NodeId(0)), RoutePred::True).named("no-bogons");
        assert!(p.to_string().contains("no-bogons"));
    }
}
