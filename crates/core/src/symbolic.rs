//! Symbolic routes: one SMT term per route attribute.
//!
//! A [`SymRoute`] carries terms for the concrete BGP attributes of §3.1
//! (prefix, local-pref, MED, next-hop), one boolean per universe community
//! plus an "other communities" summary bit, one boolean match-atom per
//! AS-path regex, and one boolean per ghost attribute.
//!
//! AS paths are abstracted by their regex match atoms (design decision D2):
//! filters that do not prepend preserve the atoms exactly (the path is
//! unchanged); `set as-path prepend` refreshes them to unconstrained
//! booleans, a sound over-approximation.

use crate::universe::Universe;
use bgp_model::prefix::Ipv4Prefix;
use bgp_model::route::{Community, Route};
use serde::{Deserialize, Serialize};
use smt::{Model, TermId, TermPool};
use std::collections::BTreeMap;

/// A route whose attributes are SMT terms.
#[derive(Clone, Debug)]
pub struct SymRoute {
    /// 32-bit prefix network address.
    pub prefix_addr: TermId,
    /// Prefix length (bv8, constrained <= 32 via [`SymRoute::well_formed`]).
    pub prefix_len: TermId,
    /// Local preference (bv32).
    pub local_pref: TermId,
    /// MED (bv32).
    pub med: TermId,
    /// Next hop (bv32).
    pub next_hop: TermId,
    /// Origin attribute (bv2: 0=igp, 1=egp, 2=incomplete; constrained
    /// <= 2 by [`SymRoute::well_formed`]).
    pub origin: TermId,
    /// One boolean per universe community (same order as the universe).
    pub comm_bits: Vec<TermId>,
    /// True when the route carries any community outside the universe.
    pub comm_other: TermId,
    /// AS-path regex match atoms, keyed by regex id (index).
    pub aspath_atoms: Vec<TermId>,
    /// Ghost attribute values (same order as the universe's ghosts).
    pub ghost_bits: Vec<TermId>,
}

impl SymRoute {
    /// A fresh, fully unconstrained symbolic route. `tag` disambiguates
    /// variable names when several routes live in one pool.
    pub fn fresh(pool: &mut TermPool, universe: &Universe, tag: &str) -> SymRoute {
        let comm_bits = universe
            .communities()
            .iter()
            .map(|c| pool.bool_var(&format!("{tag}.comm[{c}]")))
            .collect();
        let aspath_atoms = universe
            .regexes()
            .iter()
            .enumerate()
            .map(|(i, _)| pool.bool_var(&format!("{tag}.aspath[{i}]")))
            .collect();
        let ghost_bits = universe
            .ghosts()
            .iter()
            .map(|g| pool.bool_var(&format!("{tag}.ghost[{g}]")))
            .collect();
        SymRoute {
            prefix_addr: pool.bv_var(&format!("{tag}.prefix.addr"), 32),
            prefix_len: pool.bv_var(&format!("{tag}.prefix.len"), 8),
            local_pref: pool.bv_var(&format!("{tag}.local_pref"), 32),
            med: pool.bv_var(&format!("{tag}.med"), 32),
            next_hop: pool.bv_var(&format!("{tag}.next_hop"), 32),
            origin: pool.bv_var(&format!("{tag}.origin"), 2),
            comm_bits,
            comm_other: pool.bool_var(&format!("{tag}.comm_other")),
            aspath_atoms,
            ghost_bits,
        }
    }

    /// Well-formedness: prefix length <= 32 and origin code <= 2.
    /// Assumed in every check so counterexamples are realizable routes.
    pub fn well_formed(&self, pool: &mut TermPool) -> TermId {
        let c32 = pool.bv_const(32, 8);
        let len_ok = pool.bv_ule(self.prefix_len, c32);
        let c2 = pool.bv_const(2, 2);
        let origin_ok = pool.bv_ule(self.origin, c2);
        pool.and2(len_ok, origin_ok)
    }

    /// The boolean term for carrying community `c` (must be in-universe).
    pub fn has_community(&self, universe: &Universe, c: Community) -> TermId {
        let i = universe
            .community_index(c)
            .unwrap_or_else(|| panic!("community {c} not in universe"));
        self.comm_bits[i]
    }

    /// Extract a concrete route (and ghost values) from a model.
    ///
    /// The AS path is synthesized best-effort from the regex atoms: atoms
    /// that are true are reported in
    /// [`ConcreteRoute::aspath_matches`], and the path itself is left
    /// empty (the abstraction does not determine it).
    ///
    /// Attributes the solver never saw (don't-care in the model) take
    /// their defaults on the route itself, but are *omitted* from the
    /// regex-atom and ghost maps so counterexample printing only reports
    /// values the model actually witnessed.
    pub fn concretize(&self, pool: &TermPool, universe: &Universe, model: &Model) -> ConcreteRoute {
        let addr = model.eval_bv(pool, self.prefix_addr).unwrap_or(0) as u32;
        let len = (model.eval_bv(pool, self.prefix_len).unwrap_or(0) as u8).min(32);
        let mut route = Route::new(Ipv4Prefix::new(addr, len));
        route.local_pref = model.eval_bv(pool, self.local_pref).unwrap_or(0) as u32;
        route.med = model.eval_bv(pool, self.med).unwrap_or(0) as u32;
        route.next_hop = model.eval_bv(pool, self.next_hop).unwrap_or(0) as u32;
        route.origin = bgp_model::route::Origin::from_code(
            model.eval_bv(pool, self.origin).unwrap_or(2) as u8,
        );
        for (i, c) in universe.communities().iter().enumerate() {
            if model.eval_bool(pool, self.comm_bits[i]).unwrap_or(false) {
                route.communities.insert(*c);
            }
        }
        let comm_other = model.eval_bool(pool, self.comm_other).unwrap_or(false);
        let mut aspath_matches = BTreeMap::new();
        for (i, pat) in universe.regexes().iter().enumerate() {
            if model.is_dont_care(self.aspath_atoms[i]) {
                continue;
            }
            let v = model.eval_bool(pool, self.aspath_atoms[i]).unwrap_or(false);
            aspath_matches.insert(pat.clone(), v);
        }
        let mut ghosts = BTreeMap::new();
        for (i, g) in universe.ghosts().iter().enumerate() {
            if model.is_dont_care(self.ghost_bits[i]) {
                continue;
            }
            let v = model.eval_bool(pool, self.ghost_bits[i]).unwrap_or(false);
            ghosts.insert(g.clone(), v);
        }
        ConcreteRoute {
            route,
            comm_other,
            aspath_matches,
            ghosts,
        }
    }

    /// Constrain this symbolic route to equal a counterexample extracted
    /// by [`SymRoute::concretize`]. Unlike [`SymRoute::equals_concrete`],
    /// the AS-path atoms and the other-communities bit are taken from the
    /// counterexample itself (the abstraction does not determine a
    /// concrete path), and attributes the counterexample omitted as
    /// unwitnessed are left unconstrained. Used to re-validate failure
    /// results loaded from the disk cache.
    pub fn equals_counterexample(
        &self,
        pool: &mut TermPool,
        universe: &Universe,
        cex: &ConcreteRoute,
    ) -> TermId {
        let mut parts = Vec::new();
        let addr = pool.bv_const(cex.route.prefix.addr as u64, 32);
        parts.push(pool.bv_eq(self.prefix_addr, addr));
        let len = pool.bv_const(cex.route.prefix.len as u64, 8);
        parts.push(pool.bv_eq(self.prefix_len, len));
        let lp = pool.bv_const(cex.route.local_pref as u64, 32);
        parts.push(pool.bv_eq(self.local_pref, lp));
        let med = pool.bv_const(cex.route.med as u64, 32);
        parts.push(pool.bv_eq(self.med, med));
        let nh = pool.bv_const(cex.route.next_hop as u64, 32);
        parts.push(pool.bv_eq(self.next_hop, nh));
        let og = pool.bv_const(cex.route.origin.code() as u64, 2);
        parts.push(pool.bv_eq(self.origin, og));
        for (i, c) in universe.communities().iter().enumerate() {
            let bit = self.comm_bits[i];
            let want = cex.route.communities.contains(c);
            parts.push(if want { bit } else { pool.not(bit) });
        }
        parts.push(if cex.comm_other {
            self.comm_other
        } else {
            pool.not(self.comm_other)
        });
        for (i, pat) in universe.regexes().iter().enumerate() {
            if let Some(&want) = cex.aspath_matches.get(pat) {
                let atom = self.aspath_atoms[i];
                parts.push(if want { atom } else { pool.not(atom) });
            }
        }
        for (i, g) in universe.ghosts().iter().enumerate() {
            if let Some(&want) = cex.ghosts.get(g) {
                let bit = self.ghost_bits[i];
                parts.push(if want { bit } else { pool.not(bit) });
            }
        }
        pool.and(&parts)
    }

    /// Constrain this symbolic route to equal a concrete route (ghosts and
    /// regex atoms included). Used in tests for symbolic/concrete
    /// agreement.
    pub fn equals_concrete(
        &self,
        pool: &mut TermPool,
        universe: &Universe,
        concrete: &Route,
        ghosts: &BTreeMap<String, bool>,
    ) -> TermId {
        let mut parts = Vec::new();
        let addr = pool.bv_const(concrete.prefix.addr as u64, 32);
        parts.push(pool.bv_eq(self.prefix_addr, addr));
        let len = pool.bv_const(concrete.prefix.len as u64, 8);
        parts.push(pool.bv_eq(self.prefix_len, len));
        let lp = pool.bv_const(concrete.local_pref as u64, 32);
        parts.push(pool.bv_eq(self.local_pref, lp));
        let med = pool.bv_const(concrete.med as u64, 32);
        parts.push(pool.bv_eq(self.med, med));
        let nh = pool.bv_const(concrete.next_hop as u64, 32);
        parts.push(pool.bv_eq(self.next_hop, nh));
        let og = pool.bv_const(concrete.origin.code() as u64, 2);
        parts.push(pool.bv_eq(self.origin, og));
        let mut other = false;
        for c in &concrete.communities {
            if universe.community_index(*c).is_none() {
                other = true;
            }
        }
        for (i, c) in universe.communities().iter().enumerate() {
            let bit = self.comm_bits[i];
            let want = concrete.communities.contains(c);
            parts.push(if want { bit } else { pool.not(bit) });
        }
        parts.push(if other {
            self.comm_other
        } else {
            pool.not(self.comm_other)
        });
        for (i, pat) in universe.regexes().iter().enumerate() {
            let re = bgp_model::AsPathRegex::compile(pat).expect("regex validated earlier");
            let want = re.matches(&concrete.as_path);
            let atom = self.aspath_atoms[i];
            parts.push(if want { atom } else { pool.not(atom) });
        }
        for (i, g) in universe.ghosts().iter().enumerate() {
            let want = ghosts.get(g).copied().unwrap_or(false);
            let bit = self.ghost_bits[i];
            parts.push(if want { bit } else { pool.not(bit) });
        }
        pool.and(&parts)
    }
}

/// A concretized route extracted from a counterexample model.
/// Serializable so failing check results can spill to the disk cache
/// (and be re-validated on load; see `engine`).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConcreteRoute {
    /// The concrete BGP attributes.
    pub route: Route,
    /// Whether the route carries communities outside the universe.
    pub comm_other: bool,
    /// AS-path regex match atoms (pattern -> matched).
    pub aspath_matches: BTreeMap<String, bool>,
    /// Ghost attribute values.
    pub ghosts: BTreeMap<String, bool>,
}

impl std::fmt::Display for ConcreteRoute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.route)?;
        if self.comm_other {
            write!(f, " +other-comms")?;
        }
        for (pat, v) in &self.aspath_matches {
            if *v {
                write!(f, " aspath~{pat}")?;
            }
        }
        for (g, v) in &self.ghosts {
            write!(f, " {g}={v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt::{solve, SatResult};

    fn c(s: &str) -> Community {
        s.parse().unwrap()
    }

    fn universe() -> Universe {
        let mut u = Universe::new();
        u.add_community(c("100:1"));
        u.add_community(c("200:2"));
        u.add_regex("_65001_");
        u.add_ghost("FromISP1");
        u
    }

    #[test]
    fn fresh_route_has_right_shape() {
        let u = universe();
        let mut pool = TermPool::new();
        let r = SymRoute::fresh(&mut pool, &u, "r");
        assert_eq!(r.comm_bits.len(), 2);
        assert_eq!(r.aspath_atoms.len(), 1);
        assert_eq!(r.ghost_bits.len(), 1);
    }

    #[test]
    fn concretize_roundtrip() {
        let u = universe();
        let mut pool = TermPool::new();
        let r = SymRoute::fresh(&mut pool, &u, "r");
        let concrete = Route::new("10.0.0.0/8".parse().unwrap())
            .with_local_pref(150)
            .with_med(9)
            .with_next_hop(7)
            .with_community(c("100:1"))
            .with_as_path(vec![65001]);
        let mut ghosts = BTreeMap::new();
        ghosts.insert("FromISP1".to_string(), true);
        let eq = r.equals_concrete(&mut pool, &u, &concrete, &ghosts);
        let wf = r.well_formed(&mut pool);
        match solve(&pool, &[eq, wf]) {
            SatResult::Sat(m) => {
                let got = r.concretize(&pool, &u, &m);
                assert_eq!(got.route.prefix, concrete.prefix);
                assert_eq!(got.route.local_pref, 150);
                assert_eq!(got.route.med, 9);
                assert_eq!(got.route.next_hop, 7);
                assert!(got.route.has_community(c("100:1")));
                assert!(!got.route.has_community(c("200:2")));
                assert!(!got.comm_other);
                assert!(got.aspath_matches["_65001_"]);
                assert!(got.ghosts["FromISP1"]);
            }
            SatResult::Unsat => panic!("pinning must be satisfiable"),
        }
    }

    #[test]
    fn out_of_universe_community_sets_other_bit() {
        let u = universe();
        let mut pool = TermPool::new();
        let r = SymRoute::fresh(&mut pool, &u, "r");
        let concrete = Route::new("10.0.0.0/8".parse().unwrap()).with_community(c("9:9")); // not in universe
        let eq = r.equals_concrete(&mut pool, &u, &concrete, &BTreeMap::new());
        match solve(&pool, &[eq]) {
            SatResult::Sat(m) => {
                let got = r.concretize(&pool, &u, &m);
                assert!(got.comm_other);
                assert!(got.route.communities.is_empty());
            }
            SatResult::Unsat => panic!(),
        }
    }

    #[test]
    fn well_formed_bounds_length() {
        let u = universe();
        let mut pool = TermPool::new();
        let r = SymRoute::fresh(&mut pool, &u, "r");
        let wf = r.well_formed(&mut pool);
        let c40 = pool.bv_const(40, 8);
        let too_long = pool.bv_eq(r.prefix_len, c40);
        assert!(!solve(&pool, &[wf, too_long]).is_sat());
    }
}
