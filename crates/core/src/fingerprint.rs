//! Structural fingerprints of resolved checks (the orchestrator key).
//!
//! A fingerprint identifies the *mathematical content* of a check —
//! what formula the solver will see — and is invariant under
//! router/edge renaming: router names, node/edge ids, check ids and
//! route-map *names* are never hashed. WAN-scale networks instantiate
//! the same route-map template on hundreds of peerings under the same
//! invariant template, so those checks collapse to a single fingerprint
//! and a single solver call (`orchestrator::run_deduped`).
//!
//! What each check kind contributes (rules in the `orchestrator` crate
//! docs: tags, length prefixes, sorted unordered collections, format
//! version, universe digest):
//!
//! * **Transfer** (import/export): direction, liveness `require_accept`
//!   bit, the route-map *contents* (entries, not the name), every ghost
//!   attribute's name and its update on this specific edge+direction,
//!   the assume/ensure predicates, and the universe digest.
//! * **Originate**: the multiset of originated routes (sorted canonical
//!   forms), each ghost's name and origination default, the ensure
//!   predicate, and the universe digest.
//! * **Implication**: the assume/ensure predicates and the universe
//!   digest.
//!
//! Predicates, route-map entries and routes are canonicalized through
//! their serde form: the shim's serializer emits sorted map/set entries,
//! so equal values produce equal JSON text. The attribute universe is
//! hashed in sorted order, making fingerprints stable across runs that
//! build the universe in different insertion orders.

use crate::engine::CheckBody;
use crate::ghost::{GhostAttr, GhostUpdate};
use crate::pred::RoutePred;
use crate::universe::Universe;
use bgp_model::policy::Policy;
use bgp_model::routemap::RouteMap;
use orchestrator::{Fingerprint, FpHasher};
use serde::Serialize;

/// Bump when any canonical encoding below changes; spilled caches keyed
/// under the old version then simply miss instead of corrupting runs.
const FP_VERSION: u32 = 1;

fn write_serde(h: &mut FpHasher, tag: &str, x: &impl Serialize) {
    h.write_tag(tag);
    h.write_str(&bgp_model::canonical_json(x));
}

/// Digest of the attribute universe (sorted, order-insensitive).
pub fn universe_digest(u: &Universe) -> Fingerprint {
    let mut h = FpHasher::new();
    h.write_tag("universe");
    h.write_u32(FP_VERSION);

    let mut comms = u.communities().to_vec();
    comms.sort();
    h.write_u64(comms.len() as u64);
    for c in comms {
        h.write_u32(c.0);
    }

    let mut regexes = u.regexes().to_vec();
    regexes.sort();
    h.write_u64(regexes.len() as u64);
    for r in regexes {
        h.write_str(&r);
    }

    let mut ghosts = u.ghosts().to_vec();
    ghosts.sort();
    h.write_u64(ghosts.len() as u64);
    for g in ghosts {
        h.write_str(&g);
    }
    h.finish()
}

fn write_pred(h: &mut FpHasher, tag: &str, p: &RoutePred) {
    write_serde(h, tag, p);
}

/// Route-map contents without the (renaming-sensitive) map name.
fn write_route_map(h: &mut FpHasher, map: Option<&RouteMap>) {
    match map {
        None => h.write_tag("no-map"),
        Some(m) => {
            h.write_tag("map");
            write_serde(h, "entries", &m.entries);
        }
    }
}

fn write_ghost_update(h: &mut FpHasher, u: GhostUpdate) {
    h.write_u8(match u {
        GhostUpdate::SetTrue => 1,
        GhostUpdate::SetFalse => 2,
        GhostUpdate::Unchanged => 0,
    });
}

/// Ghosts sorted by name with `per_ghost` contributing the part of each
/// that the check's formula depends on.
fn write_ghosts(
    h: &mut FpHasher,
    ghosts: &[GhostAttr],
    per_ghost: impl Fn(&mut FpHasher, &GhostAttr),
) {
    let mut sorted: Vec<&GhostAttr> = ghosts.iter().collect();
    sorted.sort_by(|a, b| a.name.cmp(&b.name));
    h.write_u64(sorted.len() as u64);
    for g in sorted {
        h.write_str(&g.name);
        per_ghost(h, g);
    }
}

/// The fingerprint of one edge's **transfer relation** only — the
/// route-map contents, the ghost updates on that edge+direction and the
/// universe digest, *without* any assume/ensure predicate. This is the
/// part of a transfer check's encoding a persistent re-verify session
/// keeps across runs: when it is unchanged, the session's existing
/// symbolic transfer can answer a re-dirtied check without re-encoding;
/// when it differs, the session re-encodes the new relation and the old
/// one is left retracted.
pub(crate) fn transfer_fingerprint(
    universe_fp: Fingerprint,
    policy: &Policy,
    ghosts: &[GhostAttr],
    edge: bgp_model::topology::EdgeId,
    is_import: bool,
) -> Fingerprint {
    let mut h = FpHasher::new();
    h.write_tag("transfer-base");
    h.write_u32(FP_VERSION);
    h.write_u64((universe_fp.0 >> 64) as u64);
    h.write_u64(universe_fp.0 as u64);
    h.write_bool(is_import);
    let map = if is_import {
        policy.import_map(edge)
    } else {
        policy.export_map(edge)
    };
    write_route_map(&mut h, map);
    write_ghosts(&mut h, ghosts, |h, g| {
        let u = if is_import {
            g.import_update(edge)
        } else {
            g.export_update(edge)
        };
        write_ghost_update(h, u);
    });
    h.finish()
}

/// The fingerprint of everything in a check's formula **except** its
/// assume predicate — the universe digest, the transfer relation (or
/// implication tag) and the ensure side. Two checks with equal rest
/// fingerprints pose the same `¬goal` query over the same symbolic
/// route and transfer; only their assumed invariants differ. This is
/// the key of the re-verify engine's conjunct-core cache: a check that
/// previously passed with core `C` still passes whenever its rest is
/// unchanged and every conjunct of `C` still occurs in the new assume —
/// strengthening the positive-position assume can only shrink the model
/// set of `assume ∧ ¬goal`.
pub(crate) fn rest_fingerprint(
    universe_fp: Fingerprint,
    policy: &Policy,
    ghosts: &[GhostAttr],
    body: &CheckBody,
) -> Option<Fingerprint> {
    let mut h = FpHasher::new();
    h.write_tag("check-rest");
    h.write_u32(FP_VERSION);
    h.write_u64((universe_fp.0 >> 64) as u64);
    h.write_u64(universe_fp.0 as u64);
    match body {
        CheckBody::Transfer {
            edge,
            is_import,
            ensure,
            require_accept,
            ..
        } => {
            h.write_tag("transfer");
            h.write_bool(*is_import);
            h.write_bool(*require_accept);
            let map = if *is_import {
                policy.import_map(*edge)
            } else {
                policy.export_map(*edge)
            };
            write_route_map(&mut h, map);
            write_ghosts(&mut h, ghosts, |h, g| {
                let u = if *is_import {
                    g.import_update(*edge)
                } else {
                    g.export_update(*edge)
                };
                write_ghost_update(h, u);
            });
            write_pred(&mut h, "ensure", ensure);
        }
        CheckBody::Implication { ensure, .. } => {
            h.write_tag("implication");
            write_pred(&mut h, "ensure", ensure);
        }
        // Concrete finite evaluation: no symbolic assume side, no core.
        CheckBody::Originate { .. } => return None,
    }
    Some(h.finish())
}

/// Canonical fingerprint of one assume conjunct. Only ever compared
/// between rounds with identical universe layouts (the re-verify engine
/// resets its core cache on any layout change) and under equal rest
/// fingerprints, which embed the universe digest.
pub(crate) fn conjunct_fingerprint(pred: &RoutePred) -> u128 {
    let mut h = FpHasher::new();
    h.write_tag("conjunct");
    h.write_u32(FP_VERSION);
    h.write_str(&bgp_model::canonical_json(pred));
    h.finish().0
}

/// The fingerprint of one resolved check.
pub(crate) fn check_fingerprint(
    universe_fp: Fingerprint,
    policy: &Policy,
    ghosts: &[GhostAttr],
    body: &CheckBody,
) -> Fingerprint {
    let mut h = FpHasher::new();
    h.write_tag("check");
    h.write_u32(FP_VERSION);
    h.write_u64((universe_fp.0 >> 64) as u64);
    h.write_u64(universe_fp.0 as u64);
    match body {
        CheckBody::Transfer {
            edge,
            is_import,
            assume,
            ensure,
            require_accept,
        } => {
            h.write_tag("transfer");
            h.write_bool(*is_import);
            h.write_bool(*require_accept);
            let map = if *is_import {
                policy.import_map(*edge)
            } else {
                policy.export_map(*edge)
            };
            write_route_map(&mut h, map);
            write_ghosts(&mut h, ghosts, |h, g| {
                let u = if *is_import {
                    g.import_update(*edge)
                } else {
                    g.export_update(*edge)
                };
                write_ghost_update(h, u);
            });
            write_pred(&mut h, "assume", assume);
            write_pred(&mut h, "ensure", ensure);
        }
        CheckBody::Originate { edge, ensure } => {
            h.write_tag("originate");
            let mut routes: Vec<String> = policy
                .originated(*edge)
                .iter()
                .map(bgp_model::canonical_json)
                .collect();
            routes.sort();
            h.write_u64(routes.len() as u64);
            for r in routes {
                h.write_str(&r);
            }
            write_ghosts(&mut h, ghosts, |h, g| h.write_bool(g.originate_value));
            write_pred(&mut h, "ensure", ensure);
        }
        CheckBody::Implication { assume, ensure } => {
            h.write_tag("implication");
            write_pred(&mut h, "assume", assume);
            write_pred(&mut h, "ensure", ensure);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::routemap::{RouteMapEntry, SetAction};
    use bgp_model::topology::EdgeId;
    use bgp_model::{Community, Route};

    fn tag_map(name: &str) -> RouteMap {
        let mut m = RouteMap::new(name);
        m.push(RouteMapEntry::permit(10).setting(SetAction::Community {
            comms: vec![Community::new(100, 1)],
            additive: true,
        }));
        m
    }

    fn transfer_body(edge: EdgeId) -> CheckBody {
        CheckBody::Transfer {
            edge,
            is_import: true,
            assume: RoutePred::True,
            ensure: RoutePred::has_community(Community::new(100, 1)),
            require_accept: false,
        }
    }

    #[test]
    fn renamed_identical_templates_share_a_fingerprint() {
        // Same map contents under different names on different edges.
        let mut pol = Policy::new();
        pol.set_import(EdgeId(0), tag_map("FROM-PEER0"));
        pol.set_import(EdgeId(7), tag_map("FROM-PEER7"));
        let u = Universe::from_policy(&pol);
        let ufp = universe_digest(&u);
        let a = check_fingerprint(ufp, &pol, &[], &transfer_body(EdgeId(0)));
        let b = check_fingerprint(ufp, &pol, &[], &transfer_body(EdgeId(7)));
        assert_eq!(a, b, "identical templates must collapse");
    }

    #[test]
    fn different_contents_differ() {
        let mut pol = Policy::new();
        pol.set_import(EdgeId(0), tag_map("A"));
        let mut other = RouteMap::new("A");
        other.push(RouteMapEntry::deny(10));
        pol.set_import(EdgeId(1), other);
        let u = Universe::from_policy(&pol);
        let ufp = universe_digest(&u);
        let a = check_fingerprint(ufp, &pol, &[], &transfer_body(EdgeId(0)));
        let b = check_fingerprint(ufp, &pol, &[], &transfer_body(EdgeId(1)));
        assert_ne!(a, b);
    }

    #[test]
    fn ghost_updates_on_the_edge_matter() {
        let mut pol = Policy::new();
        pol.set_import(EdgeId(0), tag_map("A"));
        pol.set_import(EdgeId(1), tag_map("B"));
        let u = Universe::from_policy(&pol);
        let ufp = universe_digest(&u);
        let set_true =
            crate::ghost::GhostAttr::new("G").with_import(EdgeId(0), GhostUpdate::SetTrue);
        let a = check_fingerprint(
            ufp,
            &pol,
            std::slice::from_ref(&set_true),
            &transfer_body(EdgeId(0)),
        );
        let b = check_fingerprint(ufp, &pol, &[set_true], &transfer_body(EdgeId(1)));
        assert_ne!(a, b, "differing ghost updates must split the fingerprint");
    }

    #[test]
    fn universe_digest_is_order_insensitive() {
        let mut u1 = Universe::new();
        u1.add_community(Community::new(1, 1));
        u1.add_community(Community::new(2, 2));
        u1.add_ghost("A");
        u1.add_ghost("B");
        let mut u2 = Universe::new();
        u2.add_ghost("B");
        u2.add_ghost("A");
        u2.add_community(Community::new(2, 2));
        u2.add_community(Community::new(1, 1));
        assert_eq!(universe_digest(&u1), universe_digest(&u2));
        u2.add_regex("_65000_");
        assert_ne!(universe_digest(&u1), universe_digest(&u2));
    }

    #[test]
    fn originate_hashes_routes_and_defaults() {
        let mut pol = Policy::new();
        pol.add_origination(EdgeId(0), Route::new("198.51.100.0/24".parse().unwrap()));
        let u = Universe::from_policy(&pol);
        let ufp = universe_digest(&u);
        let body = CheckBody::Originate {
            edge: EdgeId(0),
            ensure: RoutePred::True,
        };
        let a = check_fingerprint(ufp, &pol, &[], &body);
        // Same edge, additional origination changes the set.
        pol.add_origination(EdgeId(0), Route::new("203.0.113.0/24".parse().unwrap()));
        let b = check_fingerprint(ufp, &pol, &[], &body);
        assert_ne!(a, b);
    }
}
