//! Per-location network invariants (§4.1).
//!
//! An invariant assignment maps every location — router or directed edge —
//! to a route predicate. The paper requires exactly one invariant per
//! location and forces `True` on edges out of external routers ("we make
//! no assumption about routes coming from external neighbors"); this
//! module enforces the latter and provides a default-plus-overrides
//! representation, since in structured networks most locations share the
//! same "key invariant" (the three-part pattern of §2.1).

use crate::pred::RoutePred;
use bgp_model::topology::{EdgeId, NodeId, Topology};
use std::collections::HashMap;
use std::fmt;

/// A verification location: a router or a directed edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Location {
    /// A configured router.
    Node(NodeId),
    /// A directed edge (peering session direction).
    Edge(EdgeId),
}

impl Location {
    /// Render with topology names (`R1` or `R1 -> ISP2`).
    pub fn display(&self, topo: &Topology) -> String {
        match self {
            Location::Node(n) => topo.node(*n).name.clone(),
            Location::Edge(e) => topo.edge_name(*e),
        }
    }
}

/// The invariant assignment `I`.
#[derive(Clone, Debug)]
pub struct NetworkInvariants {
    default: RoutePred,
    overrides: HashMap<Location, RoutePred>,
}

impl NetworkInvariants {
    /// All locations get `True` (no constraint) unless overridden.
    pub fn new() -> Self {
        NetworkInvariants {
            default: RoutePred::True,
            overrides: HashMap::new(),
        }
    }

    /// All locations get `default` unless overridden. This is the usual
    /// entry point: `default` is the key inductive invariant, and the
    /// handful of special locations (the property edge, external-facing
    /// edges) are overridden with [`NetworkInvariants::set`].
    pub fn with_default(default: RoutePred) -> Self {
        NetworkInvariants {
            default,
            overrides: HashMap::new(),
        }
    }

    /// Override the invariant at one location.
    pub fn set(&mut self, loc: Location, pred: RoutePred) -> &mut Self {
        self.overrides.insert(loc, pred);
        self
    }

    /// Builder-style [`NetworkInvariants::set`].
    pub fn with(mut self, loc: Location, pred: RoutePred) -> Self {
        self.set(loc, pred);
        self
    }

    /// The invariant at a location, applying the paper's rule that edges
    /// out of external routers are unconstrained (`True`) regardless of
    /// overrides.
    pub fn at(&self, topo: &Topology, loc: Location) -> RoutePred {
        if let Location::Edge(e) = loc {
            if topo.node(topo.edge(e).src).external {
                return RoutePred::True;
            }
        }
        self.overrides
            .get(&loc)
            .cloned()
            .unwrap_or_else(|| self.default.clone())
    }

    /// The raw override at a location, if any (ignores the external rule).
    pub fn override_at(&self, loc: Location) -> Option<&RoutePred> {
        self.overrides.get(&loc)
    }

    /// The per-location overrides (unordered).
    pub(crate) fn overrides_iter(&self) -> impl Iterator<Item = (&Location, &RoutePred)> {
        self.overrides.iter()
    }

    /// The default invariant.
    pub fn default_pred(&self) -> &RoutePred {
        &self.default
    }

    /// Build an assignment from a per-router function, following the
    /// common "edges have the same invariant as the sending router" rule
    /// (Table 4b of the paper): node `n` gets `f(n)`; an edge gets its
    /// source router's predicate (edges from externals are `True`
    /// automatically).
    pub fn from_node_fn(topo: &Topology, f: impl Fn(NodeId) -> RoutePred) -> Self {
        let mut inv = NetworkInvariants::new();
        for n in topo.router_ids() {
            inv.set(Location::Node(n), f(n));
        }
        for e in topo.edge_ids() {
            let src = topo.edge(e).src;
            if !topo.node(src).external {
                inv.set(Location::Edge(e), f(src));
            }
        }
        inv
    }

    /// Register everything the invariants mention into a universe.
    pub fn register(&self, universe: &mut crate::universe::Universe) {
        self.default.register(universe);
        for p in self.overrides.values() {
            p.register(universe);
        }
    }
}

impl Default for NetworkInvariants {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for NetworkInvariants {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "default: {}", self.default)?;
        let mut keys: Vec<_> = self.overrides.keys().copied().collect();
        keys.sort();
        for k in keys {
            writeln!(f, "{k:?}: {}", self.overrides[&k])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::Community;

    fn topo() -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let r = t.add_router("R", 65000);
        let x = t.add_external("X", 1);
        t.add_session(r, x);
        (t, r, x)
    }

    #[test]
    fn default_and_overrides() {
        let (t, r, _x) = topo();
        let key = RoutePred::has_community(Community::new(1, 1));
        let inv =
            NetworkInvariants::with_default(key.clone()).with(Location::Node(r), RoutePred::True);
        assert_eq!(inv.at(&t, Location::Node(r)), RoutePred::True);
        // Edge R -> X uses the default.
        let rx = t.edge_between(r, t.node_by_name("X").unwrap()).unwrap();
        assert_eq!(inv.at(&t, Location::Edge(rx)), key);
    }

    #[test]
    fn external_edges_forced_true() {
        let (t, r, x) = topo();
        let key = RoutePred::has_community(Community::new(1, 1));
        let xr = t.edge_between(x, r).unwrap();
        // Even with an explicit override, the external in-edge is True.
        let inv = NetworkInvariants::with_default(key.clone()).with(Location::Edge(xr), key);
        assert_eq!(inv.at(&t, Location::Edge(xr)), RoutePred::True);
    }

    #[test]
    fn location_display() {
        let (t, r, x) = topo();
        assert_eq!(Location::Node(r).display(&t), "R");
        let rx = t.edge_between(r, x).unwrap();
        assert_eq!(Location::Edge(rx).display(&t), "R -> X");
    }
}
