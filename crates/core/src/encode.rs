//! Symbolic transfer functions: route maps as SMT relations.
//!
//! [`encode_route_map`] turns a route map into a (reject-condition, output
//! route) pair over a symbolic input route, mirroring the concrete
//! interpreter [`bgp_model::interp::apply_route_map`] exactly — the
//! agreement between the two is property-tested in this crate's test
//! suite, which is the core soundness argument for the generated checks.
//!
//! [`encode_import`] / [`encode_export`] wrap the route-map transfer with
//! the per-edge ghost-attribute updates of §4.4.
//!
//! Encoders take the pool by `&mut` and never assume it is empty: the
//! engine calls them both on throwaway pools (fresh per-check solving)
//! and on a persistent [`smt::IncrementalSession`] pool, where one
//! transfer encoding is shared by every check in an encoding-base group
//! and the pool keeps growing between assumption solves. Everything here
//! must therefore stay deterministic given the same inputs — fresh
//! variables are namespaced through [`Encoder::new`]'s tag — so grouped
//! and per-check runs produce identical formulas.

use crate::ghost::{GhostAttr, GhostUpdate};
use crate::symbolic::SymRoute;
use crate::universe::Universe;
use bgp_model::prefix::Ipv4Prefix;
use bgp_model::routemap::{Action, MatchCond, RouteMap, SetAction};
use bgp_model::topology::EdgeId;
use smt::{TermId, TermPool};

/// The symbolic result of pushing a route through a filter.
#[derive(Clone, Debug)]
pub struct Transfer {
    /// True when the filter rejects the input route.
    pub reject: TermId,
    /// The output route (meaningful when `!reject`).
    pub out: SymRoute,
}

/// Encoding context: owns fresh-variable numbering for prepend refreshes.
pub struct Encoder<'a> {
    /// The term pool formulas are built in.
    pub pool: &'a mut TermPool,
    /// The attribute universe.
    pub universe: &'a Universe,
    tag: String,
    fresh: u32,
}

impl<'a> Encoder<'a> {
    /// Create an encoder; `tag` namespaces fresh variables.
    pub fn new(pool: &'a mut TermPool, universe: &'a Universe, tag: impl Into<String>) -> Self {
        Encoder {
            pool,
            universe,
            tag: tag.into(),
            fresh: 0,
        }
    }

    fn fresh_bool(&mut self, what: &str) -> TermId {
        let n = self.fresh;
        self.fresh += 1;
        self.pool
            .bool_var(&format!("{}.fresh{}[{}]", self.tag, n, what))
    }

    /// Merge two symbolic routes under a condition (`cond ? a : b`).
    pub fn merge(&mut self, cond: TermId, a: &SymRoute, b: &SymRoute) -> SymRoute {
        let p = &mut *self.pool;
        SymRoute {
            prefix_addr: p.ite(cond, a.prefix_addr, b.prefix_addr),
            prefix_len: p.ite(cond, a.prefix_len, b.prefix_len),
            local_pref: p.ite(cond, a.local_pref, b.local_pref),
            med: p.ite(cond, a.med, b.med),
            next_hop: p.ite(cond, a.next_hop, b.next_hop),
            origin: p.ite(cond, a.origin, b.origin),
            comm_bits: a
                .comm_bits
                .iter()
                .zip(&b.comm_bits)
                .map(|(&x, &y)| p.ite(cond, x, y))
                .collect(),
            comm_other: p.ite(cond, a.comm_other, b.comm_other),
            aspath_atoms: a
                .aspath_atoms
                .iter()
                .zip(&b.aspath_atoms)
                .map(|(&x, &y)| p.ite(cond, x, y))
                .collect(),
            ghost_bits: a
                .ghost_bits
                .iter()
                .zip(&b.ghost_bits)
                .map(|(&x, &y)| p.ite(cond, x, y))
                .collect(),
        }
    }

    /// Encode one match condition against a route state.
    pub fn encode_match(&mut self, cond: &MatchCond, route: &SymRoute) -> TermId {
        match cond {
            MatchCond::PrefixList(entries) => {
                // First match wins, implicit deny: fold right-to-left.
                let mut acc = self.pool.fls();
                for (permit, range) in entries.iter().rev() {
                    let hit = self.encode_range(range, route);
                    let verdict = self.pool.bool_const(*permit);
                    acc = self.pool.ite(hit, verdict, acc);
                }
                acc
            }
            MatchCond::Community { comms, match_all } => {
                let bits: Vec<TermId> = comms
                    .iter()
                    .map(|c| route.has_community(self.universe, *c))
                    .collect();
                if *match_all {
                    self.pool.and(&bits)
                } else {
                    self.pool.or(&bits)
                }
            }
            MatchCond::CommunityList { entries, exact } => {
                let mut acc = self.pool.fls();
                for (permit, comms) in entries.iter().rev() {
                    let hit = if *exact {
                        self.encode_exact_comms(comms, route)
                    } else {
                        let bits: Vec<TermId> = comms
                            .iter()
                            .map(|c| route.has_community(self.universe, *c))
                            .collect();
                        self.pool.and(&bits)
                    };
                    let verdict = self.pool.bool_const(*permit);
                    acc = self.pool.ite(hit, verdict, acc);
                }
                acc
            }
            MatchCond::AsPath(entries) => {
                let mut acc = self.pool.fls();
                for (permit, re) in entries.iter().rev() {
                    let id = self
                        .universe
                        .regex_id(re.pattern())
                        .unwrap_or_else(|| panic!("regex {:?} not in universe", re.pattern()));
                    let hit = route.aspath_atoms[id.0 as usize];
                    let verdict = self.pool.bool_const(*permit);
                    acc = self.pool.ite(hit, verdict, acc);
                }
                acc
            }
            MatchCond::Med(v) => {
                let k = self.pool.bv_const(*v as u64, 32);
                self.pool.bv_eq(route.med, k)
            }
            MatchCond::LocalPref(v) => {
                let k = self.pool.bv_const(*v as u64, 32);
                self.pool.bv_eq(route.local_pref, k)
            }
            MatchCond::Always => self.pool.tru(),
        }
    }

    fn encode_exact_comms(&mut self, comms: &[bgp_model::Community], route: &SymRoute) -> TermId {
        // Route's community set equals `comms` exactly: every listed bit
        // set, every other universe bit clear, no out-of-universe comms.
        let mut parts = Vec::new();
        for (i, c) in self.universe.communities().iter().enumerate() {
            let bit = route.comm_bits[i];
            if comms.contains(c) {
                parts.push(bit);
            } else {
                parts.push(self.pool.not(bit));
            }
        }
        let no_other = self.pool.not(route.comm_other);
        parts.push(no_other);
        self.pool.and(&parts)
    }

    fn encode_range(&mut self, r: &bgp_model::PrefixRange, route: &SymRoute) -> TermId {
        let p = &mut *self.pool;
        let mask = p.bv_const(Ipv4Prefix::mask(r.pattern.len) as u64, 32);
        let masked = p.bv_and(route.prefix_addr, mask);
        let pattern = p.bv_const(r.pattern.addr as u64, 32);
        let net_ok = p.bv_eq(masked, pattern);
        let lo = p.bv_const(r.min_len as u64, 8);
        let hi = p.bv_const(r.max_len as u64, 8);
        let ge = p.bv_uge(route.prefix_len, lo);
        let le = p.bv_ule(route.prefix_len, hi);
        p.and(&[net_ok, ge, le])
    }

    /// Apply one set action to a route state.
    pub fn encode_set(&mut self, set: &SetAction, route: &SymRoute) -> SymRoute {
        let mut out = route.clone();
        match set {
            SetAction::LocalPref(v) => {
                out.local_pref = self.pool.bv_const(*v as u64, 32);
            }
            SetAction::Med(v) => {
                out.med = self.pool.bv_const(*v as u64, 32);
            }
            SetAction::Community { comms, additive } => {
                for (i, c) in self.universe.communities().iter().enumerate() {
                    let listed = comms.contains(c);
                    out.comm_bits[i] = if listed {
                        self.pool.tru()
                    } else if *additive {
                        out.comm_bits[i]
                    } else {
                        self.pool.fls()
                    };
                }
                if !additive {
                    out.comm_other = self.pool.fls();
                }
            }
            SetAction::DeleteCommunities(comms) => {
                for c in comms {
                    if let Some(i) = self.universe.community_index(*c) {
                        out.comm_bits[i] = self.pool.fls();
                    }
                }
            }
            SetAction::ClearCommunities => {
                for b in &mut out.comm_bits {
                    *b = self.pool.fls();
                }
                out.comm_other = self.pool.fls();
            }
            SetAction::PrependAsPath(_) => {
                // The path changes, so every regex atom is refreshed to an
                // unconstrained boolean (sound over-approximation, D2).
                out.aspath_atoms = (0..out.aspath_atoms.len())
                    .map(|i| self.fresh_bool(&format!("aspath{i}")))
                    .collect();
            }
            SetAction::NextHop(nh) => {
                out.next_hop = self.pool.bv_const(*nh as u64, 32);
            }
            SetAction::Origin(o) => {
                out.origin = self.pool.bv_const(o.code() as u64, 2);
            }
        }
        out
    }

    /// Encode a full route map over an input route.
    pub fn encode_route_map(&mut self, map: &RouteMap, input: &SymRoute) -> Transfer {
        self.encode_from(map, 0, input, false)
    }

    fn encode_from(
        &mut self,
        map: &RouteMap,
        idx: usize,
        route: &SymRoute,
        permitted: bool,
    ) -> Transfer {
        if idx >= map.entries.len() {
            // Off the end: implicit deny unless an earlier entry permitted
            // and continued.
            let reject = self.pool.bool_const(!permitted);
            return Transfer {
                reject,
                out: route.clone(),
            };
        }
        let entry = &map.entries[idx];
        let matches: Vec<TermId> = entry
            .matches
            .iter()
            .map(|m| self.encode_match(m, route))
            .collect();
        let hit = self.pool.and(&matches);

        // Not-taken branch: fall through to the next entry.
        let miss_t = self.encode_from(map, idx + 1, route, permitted);

        // Taken branch.
        let hit_t = match entry.action {
            Action::Deny => Transfer {
                reject: self.pool.tru(),
                out: route.clone(),
            },
            Action::Permit => {
                let mut transformed = route.clone();
                for s in &entry.sets {
                    transformed = self.encode_set(s, &transformed);
                }
                match &entry.continue_to {
                    None => Transfer {
                        reject: self.pool.fls(),
                        out: transformed,
                    },
                    Some(target) => {
                        let next_idx = match target {
                            None => idx + 1,
                            Some(seq) => match map.index_of_seq_at_least(*seq) {
                                Some(i) if i > idx => i,
                                // Backwards/missing continue target ends
                                // evaluation with an accept.
                                _ => map.entries.len(),
                            },
                        };
                        if next_idx >= map.entries.len() {
                            Transfer {
                                reject: self.pool.fls(),
                                out: transformed,
                            }
                        } else {
                            self.encode_from(map, next_idx, &transformed, true)
                        }
                    }
                }
            }
        };

        let reject = self.pool.ite(hit, hit_t.reject, miss_t.reject);
        let out = self.merge(hit, &hit_t.out, &miss_t.out);
        Transfer { reject, out }
    }

    /// Apply the ghost-attribute updates of a filter to an output route.
    pub fn apply_ghosts(
        &mut self,
        ghosts: &[GhostAttr],
        edge: EdgeId,
        is_import: bool,
        route: &SymRoute,
    ) -> SymRoute {
        let mut out = route.clone();
        for g in ghosts {
            let Some(gi) = self.universe.ghost_index(&g.name) else {
                continue;
            };
            let update = if is_import {
                g.import_update(edge)
            } else {
                g.export_update(edge)
            };
            out.ghost_bits[gi] = match update {
                GhostUpdate::SetTrue => self.pool.tru(),
                GhostUpdate::SetFalse => self.pool.fls(),
                GhostUpdate::Unchanged => out.ghost_bits[gi],
            };
        }
        out
    }
}

/// Encode `Import(edge, r)`: the configured import map (identity when
/// absent) followed by ghost updates.
pub fn encode_import(
    pool: &mut TermPool,
    universe: &Universe,
    map: Option<&RouteMap>,
    ghosts: &[GhostAttr],
    edge: EdgeId,
    input: &SymRoute,
) -> Transfer {
    let mut enc = Encoder::new(pool, universe, format!("imp{}", edge.0));
    let t = match map {
        Some(m) => enc.encode_route_map(m, input),
        None => Transfer {
            reject: enc.pool.fls(),
            out: input.clone(),
        },
    };
    let out = enc.apply_ghosts(ghosts, edge, true, &t.out);
    Transfer {
        reject: t.reject,
        out,
    }
}

/// Encode `Export(edge, r)`: the configured export map (identity when
/// absent) followed by ghost updates.
pub fn encode_export(
    pool: &mut TermPool,
    universe: &Universe,
    map: Option<&RouteMap>,
    ghosts: &[GhostAttr],
    edge: EdgeId,
    input: &SymRoute,
) -> Transfer {
    let mut enc = Encoder::new(pool, universe, format!("exp{}", edge.0));
    let t = match map {
        Some(m) => enc.encode_route_map(m, input),
        None => Transfer {
            reject: enc.pool.fls(),
            out: input.clone(),
        },
    };
    let out = enc.apply_ghosts(ghosts, edge, false, &t.out);
    Transfer {
        reject: t.reject,
        out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::routemap::RouteMapEntry;
    use bgp_model::{Community, PrefixRange, Route};
    use smt::{solve, SatResult};
    use std::collections::BTreeMap;

    fn c(s: &str) -> Community {
        s.parse().unwrap()
    }

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    /// Assert the symbolic transfer agrees with the concrete interpreter
    /// on the given route.
    fn agree(map: &RouteMap, route: &Route) {
        let mut u = Universe::new();
        u.scan_route_map(map);
        for cm in &route.communities {
            u.add_community(*cm);
        }
        let mut pool = TermPool::new();
        let sym = SymRoute::fresh(&mut pool, &u, "in");
        let pin = sym.equals_concrete(&mut pool, &u, route, &BTreeMap::new());
        let mut enc = Encoder::new(&mut pool, &u, "t");
        let tr = enc.encode_route_map(map, &sym);

        let expected = bgp_model::apply_route_map(map, route);
        match &expected {
            None => {
                // Must be rejected: pin && !reject unsat.
                let no_rej = pool.not(tr.reject);
                assert!(
                    !solve(&pool, &[pin, no_rej]).is_sat(),
                    "concrete rejects {route} but symbolic may accept\n{map}"
                );
            }
            Some(out) => {
                // Must be accepted: pin && reject unsat.
                assert!(
                    !solve(&pool, &[pin, tr.reject]).is_sat(),
                    "concrete accepts {route} but symbolic may reject\n{map}"
                );
                // Output attributes must match (ignore as-path; D2).
                match solve(&pool, &[pin]) {
                    SatResult::Sat(m) => {
                        let got = tr.out.concretize(&pool, &u, &m);
                        assert_eq!(got.route.prefix, out.prefix, "prefix\n{map}");
                        assert_eq!(got.route.local_pref, out.local_pref, "lp\n{map}");
                        assert_eq!(got.route.med, out.med, "med\n{map}");
                        assert_eq!(got.route.next_hop, out.next_hop, "nh\n{map}");
                        assert_eq!(got.route.origin, out.origin, "origin\n{map}");
                        // Compare in-universe communities only.
                        for (i, cm) in u.communities().iter().enumerate() {
                            let sym_has = m.eval_bool(&pool, tr.out.comm_bits[i]).unwrap_or(false);
                            assert_eq!(sym_has, out.has_community(*cm), "community {cm}\n{map}");
                        }
                    }
                    SatResult::Unsat => panic!("pin must be sat"),
                }
            }
        }
    }

    #[test]
    fn empty_map_rejects_everything() {
        let map = RouteMap::new("EMPTY");
        agree(&map, &Route::new(p("10.0.0.0/8")));
    }

    #[test]
    fn permit_all_is_identity() {
        let map = RouteMap::permit_all("ALL");
        agree(&map, &Route::new(p("10.0.0.0/8")).with_local_pref(77));
    }

    #[test]
    fn sets_apply() {
        let mut map = RouteMap::new("S");
        map.push(
            RouteMapEntry::permit(10)
                .setting(SetAction::LocalPref(200))
                .setting(SetAction::Med(5))
                .setting(SetAction::NextHop(42))
                .setting(SetAction::Community {
                    comms: vec![c("9:9")],
                    additive: true,
                }),
        );
        agree(&map, &Route::new(p("10.0.0.0/8")).with_community(c("1:1")));
    }

    #[test]
    fn community_replace_clears_other() {
        let mut map = RouteMap::new("S");
        map.push(RouteMapEntry::permit(10).setting(SetAction::Community {
            comms: vec![c("9:9")],
            additive: false,
        }));
        agree(&map, &Route::new(p("10.0.0.0/8")).with_community(c("1:1")));
    }

    #[test]
    fn prefix_list_match() {
        let mut map = RouteMap::new("M");
        map.push(
            RouteMapEntry::permit(10).matching(MatchCond::PrefixList(vec![
                (false, PrefixRange::exact(p("10.1.0.0/16"))),
                (true, PrefixRange::orlonger(p("10.0.0.0/8"))),
            ])),
        );
        for r in ["10.1.0.0/16", "10.2.0.0/16", "10.0.0.0/8", "11.0.0.0/8"] {
            agree(&map, &Route::new(p(r)));
        }
    }

    #[test]
    fn community_list_first_match_wins() {
        let mut map = RouteMap::new("M");
        map.push(
            RouteMapEntry::permit(10).matching(MatchCond::CommunityList {
                entries: vec![(false, vec![c("1:1"), c("2:2")]), (true, vec![c("1:1")])],
                exact: false,
            }),
        );
        agree(&map, &Route::new(p("1.0.0.0/8")).with_community(c("1:1")));
        agree(
            &map,
            &Route::new(p("1.0.0.0/8"))
                .with_community(c("1:1"))
                .with_community(c("2:2")),
        );
        agree(&map, &Route::new(p("1.0.0.0/8")));
    }

    #[test]
    fn exact_match_community_list() {
        let mut map = RouteMap::new("M");
        map.push(
            RouteMapEntry::permit(10).matching(MatchCond::CommunityList {
                entries: vec![(true, vec![c("1:1")])],
                exact: true,
            }),
        );
        agree(&map, &Route::new(p("1.0.0.0/8")).with_community(c("1:1")));
        agree(
            &map,
            &Route::new(p("1.0.0.0/8"))
                .with_community(c("1:1"))
                .with_community(c("3:3")), // extra in-universe comm
        );
        agree(&map, &Route::new(p("1.0.0.0/8")));
    }

    #[test]
    fn continue_threading() {
        let mut map = RouteMap::new("M");
        map.push(
            RouteMapEntry::permit(10)
                .setting(SetAction::Med(50))
                .continuing(None),
        );
        map.push(
            RouteMapEntry::permit(20)
                .matching(MatchCond::Med(50))
                .setting(SetAction::LocalPref(999)),
        );
        agree(&map, &Route::new(p("1.0.0.0/8")).with_med(7));
    }

    #[test]
    fn deny_after_continue() {
        let mut map = RouteMap::new("M");
        map.push(RouteMapEntry::permit(10).continuing(None));
        map.push(RouteMapEntry::deny(20));
        agree(&map, &Route::new(p("1.0.0.0/8")));
    }

    #[test]
    fn med_lp_matches() {
        let mut map = RouteMap::new("M");
        map.push(
            RouteMapEntry::permit(10)
                .matching(MatchCond::Med(5))
                .matching(MatchCond::LocalPref(100)),
        );
        agree(&map, &Route::new(p("1.0.0.0/8")).with_med(5));
        agree(&map, &Route::new(p("1.0.0.0/8")).with_med(6));
        agree(
            &map,
            &Route::new(p("1.0.0.0/8")).with_med(5).with_local_pref(99),
        );
    }

    #[test]
    fn set_origin_agrees() {
        use bgp_model::route::Origin;
        let mut map = RouteMap::new("O");
        map.push(RouteMapEntry::permit(10).setting(SetAction::Origin(Origin::Egp)));
        agree(&map, &Route::new(p("10.0.0.0/8")));
        agree(&map, &Route::new(p("10.0.0.0/8")).with_origin(Origin::Igp));
    }

    #[test]
    fn ghost_updates_wrap_transfer() {
        let mut u = Universe::new();
        u.add_ghost("G");
        let mut pool = TermPool::new();
        let sym = SymRoute::fresh(&mut pool, &u, "in");
        let g = GhostAttr::new("G").with_import(EdgeId(5), GhostUpdate::SetTrue);
        let t = encode_import(
            &mut pool,
            &u,
            None,
            std::slice::from_ref(&g),
            EdgeId(5),
            &sym,
        );
        // Output ghost bit must be true regardless of input.
        let not_set = pool.not(t.out.ghost_bits[0]);
        assert!(!solve(&pool, &[not_set]).is_sat());

        // On a different edge the bit is unchanged.
        let t2 = encode_import(&mut pool, &u, None, &[g], EdgeId(6), &sym);
        let differs = pool.iff(t2.out.ghost_bits[0], sym.ghost_bits[0]);
        let differs = pool.not(differs);
        assert!(!solve(&pool, &[differs]).is_sat());
    }
}
