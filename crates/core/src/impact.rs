//! Change-impact analysis: the router→checks adjacency index.
//!
//! Lightyear's checks are local (§4.2): every Import/Export/Originate
//! check depends on exactly one edge's filter, so a configuration change
//! on router `R` can only affect checks on edges incident to `R` — the
//! router's own filters plus each neighbor's sessions with it. The
//! [`CheckIndex`] materializes that adjacency for one round's generated
//! check set, giving re-verification its *dirty candidate* set in
//! O(degree) instead of O(network).
//!
//! Candidates are an over-approximation by design: the definitive dirty
//! test is fingerprint equality (rename-invariant, see
//! [`crate::fingerprint`]), which weeds out cosmetic edits — a route-map
//! rename or a semantics-preserving rewrite leaves every fingerprint
//! unchanged and therefore an empty dirty set even though the edited
//! router is a candidate. The index is also what scopes **delta-aware
//! cache invalidation**: only the changed neighborhood's superseded
//! fingerprints are dropped from the carried result cache, never the
//! whole table.

use crate::engine::{CheckBody, ResolvedCheck};
use bgp_model::topology::{NodeId, Topology};
use std::collections::{BTreeSet, HashMap};

/// Adjacency from routers to the checks a change there can dirty.
#[derive(Clone, Debug, Default)]
pub struct CheckIndex {
    /// Node → indices of checks on an incident edge.
    by_node: HashMap<NodeId, Vec<usize>>,
    /// Location-free checks (subsumption/implication): tied to the spec,
    /// not to any edge, but conservatively part of every candidate set.
    global: Vec<usize>,
    /// Total checks indexed.
    total: usize,
}

impl CheckIndex {
    /// Build the index over one round's generated checks.
    pub(crate) fn build(topo: &Topology, checks: &[ResolvedCheck]) -> CheckIndex {
        let mut by_node: HashMap<NodeId, Vec<usize>> = HashMap::new();
        let mut global = Vec::new();
        for (i, c) in checks.iter().enumerate() {
            match c.body {
                CheckBody::Transfer { edge, .. } | CheckBody::Originate { edge, .. } => {
                    let e = topo.edge(edge);
                    by_node.entry(e.src).or_default().push(i);
                    if e.dst != e.src {
                        by_node.entry(e.dst).or_default().push(i);
                    }
                }
                CheckBody::Implication { .. } => global.push(i),
            }
        }
        CheckIndex {
            by_node,
            global,
            total: checks.len(),
        }
    }

    /// Number of checks indexed.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Indices of the checks a change to `changed` routers can possibly
    /// affect: every check on an edge incident to a changed node (the
    /// edited router's filters and its neighbors' sessions with it) plus
    /// the location-free implication checks. A sound over-approximation;
    /// fingerprints decide which candidates are actually dirty.
    pub fn dirty_candidates(&self, changed: &[NodeId]) -> BTreeSet<usize> {
        let mut out: BTreeSet<usize> = self.global.iter().copied().collect();
        for n in changed {
            if let Some(v) = self.by_node.get(n) {
                out.extend(v.iter().copied());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{Check, CheckKind};
    use crate::invariants::Location;
    use crate::pred::RoutePred;
    use bgp_model::topology::EdgeId;

    fn transfer(id: usize, edge: EdgeId) -> ResolvedCheck {
        ResolvedCheck {
            check: Check {
                id,
                kind: CheckKind::Import,
                location: Location::Edge(edge),
                edge: Some(edge),
                map_name: None,
                description: String::new(),
            },
            body: CheckBody::Transfer {
                edge,
                is_import: true,
                assume: RoutePred::True,
                ensure: RoutePred::True,
                require_accept: false,
            },
        }
    }

    #[test]
    fn candidates_cover_the_neighborhood_only() {
        // Line topology: A - B - C (plus an external X on A).
        let mut t = Topology::new();
        let a = t.add_router("A", 1);
        let b = t.add_router("B", 1);
        let c = t.add_router("C", 1);
        let x = t.add_external("X", 2);
        t.add_session(a, b);
        t.add_session(b, c);
        t.add_session(x, a);

        let checks: Vec<ResolvedCheck> = t
            .edge_ids()
            .enumerate()
            .map(|(i, e)| transfer(i, e))
            .chain(std::iter::once(ResolvedCheck {
                check: Check {
                    id: t.edge_ids().count(),
                    kind: CheckKind::Subsumption,
                    location: Location::Node(c),
                    edge: None,
                    map_name: None,
                    description: String::new(),
                },
                body: CheckBody::Implication {
                    assume: RoutePred::True,
                    ensure: RoutePred::True,
                },
            }))
            .collect();
        let index = CheckIndex::build(&t, &checks);
        assert_eq!(index.total(), checks.len());

        // A change on C touches only B↔C edges plus the global check.
        let cand = index.dirty_candidates(&[c]);
        for &i in &cand {
            match &checks[i].body {
                CheckBody::Transfer { edge, .. } => {
                    let e = t.edge(*edge);
                    assert!(e.src == c || e.dst == c, "check {i} not incident to C");
                }
                CheckBody::Implication { .. } => {}
                CheckBody::Originate { .. } => unreachable!(),
            }
        }
        // A↔X and A↔B checks are not candidates for a C-only change.
        let edge_ax = t.edge_between(x, a).unwrap();
        let ax_idx = checks
            .iter()
            .position(|ck| matches!(ck.body, CheckBody::Transfer { edge, .. } if edge == edge_ax))
            .unwrap();
        assert!(!cand.contains(&ax_idx));
        // The candidate set is a strict subset of the full check set.
        assert!(cand.len() < checks.len());
    }
}
